//! (ε, δ) sample-size planning (Ineq 14 / 27).
//!
//! The number of iterations the paper's guarantee requires depends on the
//! concentration constant `µ(r)` (Ineq 11). Three ways to obtain it:
//!
//! - **exactly**, from the dependency profile (`n` SPD passes — only
//!   sensible when the plan is reused across many runs or in experiments);
//! - from the **Theorem 2 bound** `1 + 1/K` when `r` is a balanced vertex
//!   separator (a cheap `O(n + m)` component scan — the paper's "in several
//!   cases µ(r) is a constant" scenario);
//! - **supplied** by the caller from domain knowledge.

use crate::optimal::theorem2_report;
use crate::CoreError;
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_mcmc::bounds;
use mhbc_spd::{dependency_profile_par, dependency_profile_view_par, SpdView};

/// How to obtain `µ(r)` for planning.
#[derive(Debug, Clone, Copy)]
pub enum MuSource {
    /// Compute the exact value from the dependency profile (`n` SPD passes,
    /// parallelised over the given number of threads; 0 = all cores).
    Exact { threads: usize },
    /// Use Theorem 2's bound `1 + 1/K` (requires `r` to be a separator).
    TheoremTwo,
    /// Use a caller-supplied value (must be ≥ 1).
    Provided(f64),
}

/// A concrete sampling plan.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    /// The `µ(r)` value used.
    pub mu: f64,
    /// Iterations guaranteeing `P[|B̂C(r) − BC(r)| > ε] ≤ δ` (Ineq 14).
    pub iterations: u64,
    /// The requested additive error.
    pub epsilon: f64,
    /// The requested failure probability.
    pub delta: f64,
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Sampler-level validation failed.
    Core(CoreError),
    /// `r` has zero betweenness: µ(r) is undefined and no sampling is
    /// needed (the estimate is exactly 0).
    ZeroBetweenness,
    /// Theorem 2 requires `r` to be a vertex separator.
    NotASeparator,
    /// A provided µ was < 1 or non-finite.
    InvalidMu(f64),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Core(e) => write!(f, "{e}"),
            PlanError::ZeroBetweenness => {
                write!(f, "probe has zero betweenness; nothing to sample")
            }
            PlanError::NotASeparator => {
                write!(f, "Theorem 2 bound needs the probe to be a vertex separator")
            }
            PlanError::InvalidMu(mu) => write!(f, "invalid mu {mu} (must be finite and >= 1)"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Produces the iteration budget for estimating `BC(r)` within `epsilon`
/// with probability `1 − delta` (Theorem 1 / Ineq 14).
pub fn plan_single(
    g: &CsrGraph,
    r: Vertex,
    epsilon: f64,
    delta: f64,
    mu_source: MuSource,
) -> Result<Plan, PlanError> {
    plan_single_view(SpdView::direct(g), r, epsilon, delta, mu_source)
}

/// [`plan_single`] evaluating through a view: with a reduction active, the
/// exact `µ(r)` computation pays one SPD pass over the *reduced* CSR per
/// distinct dependency row instead of one full-graph pass per vertex — the
/// same saving the plan itself promises for the sampling run. `µ(r)` is
/// invariant under the reduction (densities are mapped exactly).
pub fn plan_single_view(
    view: SpdView<'_>,
    r: Vertex,
    epsilon: f64,
    delta: f64,
    mu_source: MuSource,
) -> Result<Plan, PlanError> {
    let n = view.num_vertices();
    if r as usize >= n {
        return Err(PlanError::Core(CoreError::ProbeOutOfRange { probe: r, num_vertices: n }));
    }
    if !view.is_retained(r) {
        return Err(PlanError::Core(CoreError::PrunedProbe { probe: r }));
    }
    let mu = match mu_source {
        MuSource::Exact { threads } => match view.reduced() {
            None => dependency_profile_par(view.graph(), r, threads)
                .mu()
                .ok_or(PlanError::ZeroBetweenness)?,
            Some(_) => dependency_profile_view_par(view, r, threads)
                .mu()
                .ok_or(PlanError::ZeroBetweenness)?,
        },
        MuSource::TheoremTwo => {
            theorem2_report(view.graph(), r, 0.0).mu_bound.ok_or(PlanError::NotASeparator)?
        }
        MuSource::Provided(mu) => mu,
    };
    if !(mu.is_finite() && mu >= 1.0) {
        return Err(PlanError::InvalidMu(mu));
    }
    Ok(Plan { mu, iterations: bounds::required_samples(mu, epsilon, delta), epsilon, delta })
}

/// The planner's bound refitted from what a chain actually observed — the
/// "plan vs. actual" line the adaptive engine reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Refit {
    /// The plug-in concentration constant `µ̂(r)` (clamped to ≥ 1, its
    /// analytic lower bound).
    pub mu: f64,
    /// Ineq 14 re-evaluated at `µ̂(r)`: the budget the planner *would* have
    /// issued had it known the observed profile.
    pub iterations: u64,
    /// The observed integrated autocorrelation time `τ̂` (context: the
    /// CLT-style `TargetStderr` stop already accounts for it through the
    /// batch-means variance).
    pub tau: f64,
}

/// Refits the Ineq 14 budget from a finished run's observations
/// ([`crate::AdaptiveReport`]).
///
/// # The refit math
///
/// The a-priori plan is `T ≥ µ(r)²/(2ε²)·ln(2/δ)` (Ineq 14), where the
/// concentration constant is
///
/// ```text
/// µ(r) = n · max_v δ_{v•}(r) / Σ_v δ_{v•}(r)        (Ineq 11)
/// ```
///
/// — computable exactly only from the full dependency profile (`n` SPD
/// passes). But the sampler's *proposal stream* is uniform i.i.d. over
/// `V(G)` (independence MH), so over `T` proposals,
///
/// ```text
/// mean_t δ(proposal_t)  →  Σ_v δ_v / n      (uniform mean)
/// max_t  δ(proposal_t)  →  max_v δ_v        (once the support is swept)
/// ```
///
/// and the plug-in `µ̂ = max_t δ(proposal_t) / mean_t δ(proposal_t)`
/// converges to `µ(r)` from below (the max is reached late, the mean is
/// unbiased throughout) — a **free** by-product of the run: the proposals'
/// densities were all evaluated anyway. Re-running Ineq 14 at `µ̂` gives
/// the budget the planner would have issued with hindsight; comparing it
/// to the actual adaptive stopping point (which uses the observed
/// *variance*, not the worst-case bound, and so is usually smaller still)
/// quantifies how much the a-priori bound overshoots (experiment F3c).
///
/// `τ̂` is reported alongside: Ineq 14's constant absorbs the chain's
/// mixing through the minorisation `λ = 1/µ(r)`, while the CLT view prices
/// it as `Var · τ̂ / T` — when `τ̂ ≪ µ̂²` the bound is loose and adaptive
/// stopping wins by roughly that ratio.
///
/// Returns `None` when the run observed no positive proposal density
/// (zero-betweenness probe: `µ(r)` is undefined and no sampling is needed).
pub fn refit_plan(epsilon: f64, delta: f64, report: &crate::AdaptiveReport) -> Option<Refit> {
    let mu_hat = report.observed_mu?;
    if !(mu_hat.is_finite() && mu_hat > 0.0) {
        return None;
    }
    let mu = mu_hat.max(1.0);
    Some(Refit { mu, iterations: bounds::required_samples(mu, epsilon, delta), tau: report.tau })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn exact_plan_on_balanced_separator_is_size_independent() {
        // Theorem 2 regime: iteration budgets barely move as n grows.
        let budgets: Vec<u64> = [6usize, 12, 24]
            .iter()
            .map(|&k| {
                let g = generators::barbell(k, 1);
                plan_single(&g, k as u32, 0.05, 0.05, MuSource::Exact { threads: 1 })
                    .unwrap()
                    .iterations
            })
            .collect();
        let (min, max) = (budgets.iter().min().unwrap(), budgets.iter().max().unwrap());
        assert!(
            *max as f64 / *min as f64 <= 1.6,
            "budgets should be near-constant, got {budgets:?}"
        );
    }

    #[test]
    fn theorem2_plan_dominates_exact_plan() {
        let g = generators::barbell(10, 1);
        let exact = plan_single(&g, 10, 0.05, 0.05, MuSource::Exact { threads: 1 }).unwrap();
        let bound = plan_single(&g, 10, 0.05, 0.05, MuSource::TheoremTwo).unwrap();
        assert!(bound.mu >= exact.mu);
        assert!(bound.iterations >= exact.iterations);
    }

    #[test]
    fn provided_mu_is_used_verbatim() {
        let g = generators::barbell(5, 1);
        let p = plan_single(&g, 5, 0.1, 0.1, MuSource::Provided(3.0)).unwrap();
        assert_eq!(p.mu, 3.0);
        assert_eq!(p.iterations, mhbc_mcmc::bounds::required_samples(3.0, 0.1, 0.1));
    }

    #[test]
    fn error_paths() {
        let g = generators::star(8);
        // A leaf has zero betweenness.
        assert_eq!(
            plan_single(&g, 3, 0.1, 0.1, MuSource::Exact { threads: 1 }).unwrap_err(),
            PlanError::ZeroBetweenness
        );
        // The centre of a complete graph is not a separator.
        let k = generators::complete(5);
        assert_eq!(
            plan_single(&k, 0, 0.1, 0.1, MuSource::TheoremTwo).unwrap_err(),
            PlanError::NotASeparator
        );
        assert_eq!(
            plan_single(&g, 0, 0.1, 0.1, MuSource::Provided(0.2)).unwrap_err(),
            PlanError::InvalidMu(0.2)
        );
        assert!(matches!(
            plan_single(&g, 99, 0.1, 0.1, MuSource::Provided(2.0)).unwrap_err(),
            PlanError::Core(CoreError::ProbeOutOfRange { .. })
        ));
    }

    #[test]
    fn refit_recovers_mu_from_a_long_run() {
        use crate::engine::EngineConfig;
        use crate::{SingleSpaceConfig, SingleSpaceSampler};
        // Long fixed run on a small graph: the proposal stream sweeps the
        // whole support, so the plug-in mu approaches the exact one.
        let g = generators::barbell(6, 1);
        let r = 6;
        let exact = plan_single(&g, r, 0.05, 0.05, MuSource::Exact { threads: 1 }).unwrap();
        let (_, report) = SingleSpaceSampler::new(&g, r, SingleSpaceConfig::new(20_000, 3))
            .unwrap()
            .into_engine(EngineConfig::fixed())
            .run();
        let refit = refit_plan(0.05, 0.05, &report).expect("positive-BC probe refits");
        assert!(
            (refit.mu - exact.mu).abs() / exact.mu < 0.02,
            "refit mu {} vs exact {}",
            refit.mu,
            exact.mu
        );
        // Same epsilon/delta, near-equal mu: near-equal budgets.
        let ratio = refit.iterations as f64 / exact.iterations as f64;
        assert!((0.9..1.1).contains(&ratio), "budget ratio {ratio}");
        assert!(refit.tau.is_finite() && refit.tau >= 1.0);
    }

    #[test]
    fn refit_is_none_for_zero_betweenness_probes() {
        use crate::engine::EngineConfig;
        use crate::{SingleSpaceConfig, SingleSpaceSampler};
        let g = generators::star(10);
        let (_, report) = SingleSpaceSampler::new(&g, 3, SingleSpaceConfig::new(500, 1))
            .unwrap()
            .into_engine(EngineConfig::fixed())
            .run();
        assert!(refit_plan(0.05, 0.05, &report).is_none());
    }

    #[test]
    fn plan_through_reduction_matches_direct_plan() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(7, 4);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let r = 6; // the path's clique attachment: retained, positive BC
        let direct = plan_single(&g, r, 0.05, 0.05, MuSource::Exact { threads: 1 }).unwrap();
        let through = plan_single_view(
            SpdView::preprocessed(&g, &red),
            r,
            0.05,
            0.05,
            MuSource::Exact { threads: 1 },
        )
        .unwrap();
        assert!((direct.mu - through.mu).abs() < 1e-9, "{} vs {}", direct.mu, through.mu);
        assert_eq!(direct.iterations, through.iterations);
        // A pruned probe plans as a dedicated error.
        assert!(matches!(
            plan_single_view(
                SpdView::preprocessed(&g, &red),
                9,
                0.05,
                0.05,
                MuSource::Provided(2.0)
            ),
            Err(PlanError::Core(CoreError::PrunedProbe { probe: 9 }))
        ));
    }

    #[test]
    fn planned_budget_actually_achieves_epsilon() {
        // End-to-end (eps, delta) check on a small graph: run the planned
        // budget repeatedly; the failure fraction must respect delta (with
        // slack for the bound's conservativeness — it overshoots).
        let g = generators::barbell(6, 1);
        let r = 6;
        let plan = plan_single(&g, r, 0.08, 0.2, MuSource::Exact { threads: 1 }).unwrap();
        let exact = mhbc_spd::exact_betweenness_of(&g, r);
        let runs = 20;
        let mut failures = 0;
        for seed in 0..runs {
            let est = crate::SingleSpaceSampler::new(
                &g,
                r,
                crate::SingleSpaceConfig::new(plan.iterations, seed),
            )
            .unwrap()
            .run();
            if (est.bc - exact).abs() > plan.epsilon {
                failures += 1;
            }
        }
        assert!(failures <= 2, "failures {failures}/{runs} exceed the planned delta with margin");
    }
}
