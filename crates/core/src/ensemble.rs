//! Parallel multi-chain ensembles.
//!
//! Independence MH chains over the same target are embarrassingly parallel,
//! and — because the stationary law concentrates on the same
//! high-dependency sources — they share most of their density evaluations.
//! This module runs `k` chains across threads over one
//! [`SharedProbeOracle`], pools their
//! Eq 7 and corrected estimates, and reports the Gelman–Rubin `R̂`
//! statistic across chains, the standard multi-chain convergence check that
//! complements the paper's single-chain guarantee.
//!
//! Since the engine refactor the ensemble executes in **segments**: every
//! chain advances `segment` iterations per round (in parallel, each from
//! its bit-exact [`mhbc_mcmc::ChainSnapshot`]), the pooled observation
//! series feeds the streaming diagnostics, and a
//! [`mhbc_mcmc::StoppingRule`] can end the run at any boundary — where the
//! whole ensemble state (all chains, accumulators, diagnostics, shared
//! cache) can also be checkpointed. Per-chain step sequences are unchanged
//! by segmentation, so fixed-budget results are bit-identical to the
//! historical run-to-completion ensemble.
//!
//! With a parallel [`PrefetchConfig`], each chain additionally gets its own
//! squad of speculative prefetch workers (chains × pipeline): every chain's
//! proposal stream is replayed by `threads - 1` workers that warm the
//! shared cache ahead of it, exactly as in [`crate::pipeline`]. The pooled
//! estimates are bit-identical whatever the prefetch setting — chain
//! results depend only on seeds and densities, never on cache timing.

use crate::checkpoint::CheckpointKind;
use crate::engine::{
    open_checkpoint, AdaptiveReport, CheckpointDriver, EngineConfig, EngineDriver, EstimationEngine,
};
use crate::oracle::{OracleStats, SharedProbeOracle};
use crate::pipeline::{
    derive_streams, prefetch_lane, CheckpointSink, Lane, Pacing, PacingGuard, PrefetchConfig,
};
use crate::single::{restore_oracle, save_oracle};
use crate::CoreError;
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_mcmc::diagnostics::RunningMoments;
use mhbc_mcmc::{fn_target, ChainSnapshot, ChainStats, MetropolisHastings, UniformProposal};
use mhbc_spd::{SpdView, SpdWorkspacePool};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use std::sync::atomic::Ordering;

/// Configuration for [`run_ensemble`].
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Number of independent chains (one thread each).
    pub chains: usize,
    /// Iterations per chain (the per-chain budget under adaptive rules).
    pub iterations: u64,
    /// Base seed; chain `c` is seeded with `seed + c`.
    pub seed: u64,
    /// Per-chain speculative prefetch: a parallel setting spawns
    /// `threads - 1` extra workers *per chain*, so the total thread count
    /// is `chains × threads`.
    pub prefetch: PrefetchConfig,
}

impl EnsembleConfig {
    /// `chains` sequential chains (no prefetch workers).
    pub fn new(chains: usize, iterations: u64, seed: u64) -> Self {
        EnsembleConfig { chains, iterations, seed, prefetch: PrefetchConfig::sequential() }
    }

    /// Attaches a per-chain prefetch pipeline.
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }
}

/// One chain's resumable state between segments: the bit-exact chain
/// snapshot plus its running estimator partials.
#[derive(Debug, Clone)]
struct ChainCell {
    snap: ChainSnapshot<Vertex>,
    sum_delta: f64,
    counted: u64,
    proposals_support: u64,
    inv_delta_sum: f64,
    support_counted: u64,
    /// Welford moments of the per-step dependency series (for R̂).
    moments: RunningMoments,
}

/// Result of a parallel ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleEstimate {
    /// Pooled Eq 7 estimate (average over all chains' counted samples).
    pub bc: f64,
    /// Pooled support-corrected estimate (see `SingleSpaceEstimate`).
    pub bc_corrected: f64,
    /// Per-chain Eq 7 estimates (for dispersion inspection).
    pub per_chain: Vec<f64>,
    /// Gelman–Rubin potential scale reduction factor across chains
    /// (≈ 1 indicates the chains agree; NaN with < 2 chains or degenerate
    /// variance).
    pub r_hat: f64,
    /// Acceptance rate pooled over chains.
    pub acceptance_rate: f64,
    /// Iterations each chain actually ran (≤ the configured budget under
    /// adaptive stopping).
    pub iterations_per_chain: u64,
    /// Distinct sources evaluated across the *shared* cache (the whole
    /// point: `k` chains cost barely more than one). Deterministic for a
    /// given config — concurrent duplicate computations don't inflate it.
    pub spd_passes: u64,
    /// Shared-cache statistics.
    pub oracle_stats: OracleStats,
}

/// [`EngineDriver`] for the segmented ensemble: each `run_segment` advances
/// every chain `iters` steps in parallel (restoring each from its snapshot
/// — no density re-evaluation), then re-snapshots. Iteration counts are
/// **per chain**: the engine budget bounds each chain's length, and the
/// monitored series interleaves chain segments in chain order
/// (deterministic, so adaptive stops are too).
pub struct EnsembleDriver<'g> {
    view: SpdView<'g>,
    r: Vertex,
    n: usize,
    chains: usize,
    seed: u64,
    prefetch: PrefetchConfig,
    oracle: SharedProbeOracle<'g>,
    pool: SpdWorkspacePool<'g>,
    cells: Vec<ChainCell>,
    done_per_chain: u64,
    budget: u64,
}

impl<'g> EnsembleDriver<'g> {
    /// Builds the driver and evaluates every chain's initial state (in
    /// chain order — deterministic cache history).
    fn create(view: SpdView<'g>, r: Vertex, config: &EnsembleConfig) -> Result<Self, CoreError> {
        let n = view.num_vertices();
        if n < 3 {
            return Err(CoreError::GraphTooSmall { num_vertices: n });
        }
        if r as usize >= n {
            return Err(CoreError::ProbeOutOfRange { probe: r, num_vertices: n });
        }
        if !view.is_retained(r) {
            return Err(CoreError::PrunedProbe { probe: r });
        }
        assert!(config.chains >= 1, "need at least one chain");
        let oracle = SharedProbeOracle::for_view(view, &[r]);
        let pool = SpdWorkspacePool::for_view_workers(
            view,
            config.chains * config.prefetch.threads.max(1),
        );
        let cells = {
            let mut calc = pool.checkout();
            (0..config.chains)
                .map(|c| {
                    let (initial, prop_rng, acc_rng) =
                        derive_streams(config.seed.wrapping_add(c as u64), None, n);
                    let d0 = oracle.dep(initial, 0, &mut calc);
                    let mut moments = RunningMoments::new();
                    moments.push(d0);
                    let (mut inv, mut support) = (0.0, 0);
                    if d0 > 0.0 {
                        inv = 1.0 / d0;
                        support = 1;
                    }
                    ChainCell {
                        snap: ChainSnapshot {
                            state: initial,
                            density: d0,
                            stats: ChainStats::default(),
                            proposal_rng: prop_rng.state(),
                            accept_rng: acc_rng.state(),
                        },
                        sum_delta: d0,
                        counted: 1,
                        proposals_support: 0,
                        inv_delta_sum: inv,
                        support_counted: support,
                        moments,
                    }
                })
                .collect()
        };
        Ok(EnsembleDriver {
            view,
            r,
            n,
            chains: config.chains,
            seed: config.seed,
            prefetch: config.prefetch.clone(),
            oracle,
            pool,
            cells,
            done_per_chain: 0,
            budget: config.iterations,
        })
    }

    /// Wraps the driver in a segmented engine (budget = iterations per
    /// chain).
    fn into_engine(self, engine: EngineConfig) -> EstimationEngine<EnsembleDriver<'g>> {
        let budget = self.budget;
        EstimationEngine::new(self, budget, engine)
    }
}

impl EngineDriver for EnsembleDriver<'_> {
    type Output = EnsembleEstimate;

    fn prime(&mut self, out: &mut Vec<f64>) {
        if self.done_per_chain == 0 {
            out.extend(self.cells.iter().map(|c| c.snap.density));
        }
    }

    fn run_segment(&mut self, iters: u64, out: &mut Vec<f64>) {
        let workers_per_chain = self.prefetch.threads.saturating_sub(1) as u64;
        let depth = self.prefetch.depth.max(workers_per_chain);
        let pacings: Vec<Pacing> = (0..self.chains).map(|_| Pacing::committed_to(iters)).collect();
        let results: Mutex<Vec<(usize, ChainCell, Vec<f64>)>> =
            Mutex::new(Vec::with_capacity(self.chains));

        crossbeam::thread::scope(|scope| {
            for (c, cell_ref) in self.cells.iter().enumerate() {
                // The squads replay the chain's proposal stream from the
                // same snapshot position.
                let replay_state = cell_ref.snap.proposal_rng;
                let cell = cell_ref.clone();
                let (oracle, pool, results) = (&self.oracle, &self.pool, &results);
                let pacing = &pacings[c];
                let n = self.n;
                scope.spawn(move |_| {
                    let mut calc = pool.checkout();
                    let target = fn_target(|v: &Vertex| oracle.dep(*v, 0, &mut calc));
                    let mut chain: MetropolisHastings<_, _, SmallRng> = MetropolisHastings::restore(
                        target,
                        UniformProposal::new(n),
                        cell.snap.clone(),
                    );
                    let mut cell = cell;
                    let mut series = Vec::with_capacity(iters as usize);
                    // Released on drop — including panic — so this chain's
                    // prefetch squad can never spin forever.
                    let guard = PacingGuard(pacing);
                    for t in 1..=iters {
                        guard.0.progress.store(t, Ordering::Release);
                        let out = chain.step();
                        cell.sum_delta += out.density;
                        cell.counted += 1;
                        cell.moments.push(out.density);
                        if out.proposed_density > 0.0 {
                            cell.proposals_support += 1;
                        }
                        if out.density > 0.0 {
                            cell.inv_delta_sum += 1.0 / out.density;
                            cell.support_counted += 1;
                        }
                        series.push(out.density);
                    }
                    cell.snap = chain.snapshot();
                    results.lock().push((c, cell, series));
                });
                for lane in 0..workers_per_chain {
                    let wrng = SmallRng::from_state(replay_state);
                    let (oracle, pool) = (&self.oracle, &self.pool);
                    let n = self.n;
                    scope.spawn(move |_| {
                        let mut calc = pool.checkout();
                        prefetch_lane(
                            UniformProposal::new(n),
                            wrng,
                            1,
                            iters,
                            Lane { lane, lanes: workers_per_chain, depth, pacing },
                            |v: Vertex| {
                                oracle.warm(v, &mut calc);
                            },
                        );
                    });
                }
            }
        })
        .expect("ensemble threads joined");

        let mut per = results.into_inner();
        per.sort_by_key(|&(c, _, _)| c);
        for (c, cell, series) in per {
            self.cells[c] = cell;
            out.extend(series);
        }
        self.done_per_chain += iters;
    }

    fn iterations(&self) -> u64 {
        self.done_per_chain
    }

    fn scale(&self) -> f64 {
        self.n as f64 - 1.0
    }

    fn finish(self) -> EnsembleEstimate {
        let per = self.cells;
        let chains = self.chains;
        let iterations = self.done_per_chain;
        let norm = self.n as f64 - 1.0;
        let per_chain: Vec<f64> =
            per.iter().map(|c| c.sum_delta / (c.counted as f64 * norm)).collect();

        let total_counted: u64 = per.iter().map(|c| c.counted).sum();
        let bc = per.iter().map(|c| c.sum_delta).sum::<f64>() / (total_counted as f64 * norm);

        let total_proposals = chains as u64 * iterations;
        let support: u64 = per.iter().map(|c| c.proposals_support).sum();
        let inv_sum: f64 = per.iter().map(|c| c.inv_delta_sum).sum();
        let support_counted: u64 = per.iter().map(|c| c.support_counted).sum();
        let bc_corrected = if total_proposals == 0 || support_counted == 0 || inv_sum <= 0.0 {
            0.0
        } else {
            (support as f64 / total_proposals as f64) * support_counted as f64 / (norm * inv_sum)
        };

        // Gelman-Rubin across chains: W = mean within-chain variance,
        // B/n = variance of chain means; R^2 = ((m-1)/m W + B/m) / W with
        // m = samples per chain.
        let r_hat = if chains >= 2 {
            let m = (iterations + 1) as f64;
            let w = per.iter().map(|c| c.moments.variance()).sum::<f64>() / chains as f64;
            let mut mean_moments = RunningMoments::new();
            for c in &per {
                mean_moments.push(c.moments.mean());
            }
            let b_over_m = mean_moments.variance();
            if w > 0.0 {
                (((m - 1.0) / m) * w / w + b_over_m / w).sqrt()
            } else {
                f64::NAN
            }
        } else {
            f64::NAN
        };

        let accepted: u64 = per.iter().map(|c| c.snap.stats.accepted).sum();
        EnsembleEstimate {
            bc,
            bc_corrected,
            per_chain,
            r_hat,
            acceptance_rate: if total_proposals == 0 {
                0.0
            } else {
                accepted as f64 / total_proposals as f64
            },
            iterations_per_chain: iterations,
            spd_passes: self.oracle.cached_sources() as u64,
            oracle_stats: self.oracle.stats(),
        }
    }
}

impl CheckpointDriver for EnsembleDriver<'_> {
    fn kind(&self) -> CheckpointKind {
        CheckpointKind::Ensemble
    }

    fn view(&self) -> SpdView<'_> {
        self.view
    }

    fn save(&self, w: &mut crate::checkpoint::Writer) {
        w.u32(self.r);
        w.u64(self.chains as u64);
        w.u64(self.budget);
        w.u64(self.seed);
        w.u64(self.done_per_chain);
        for cell in &self.cells {
            crate::single::save_chain_snapshot(w, &cell.snap);
            w.f64(cell.sum_delta);
            w.u64(cell.counted);
            w.u64(cell.proposals_support);
            w.f64(cell.inv_delta_sum);
            w.u64(cell.support_counted);
            let (count, mean, m2) = cell.moments.to_raw();
            w.u64(count);
            w.u64(mean);
            w.u64(m2);
        }
        save_oracle(
            w,
            self.oracle.cached_sources() as u64,
            self.oracle.stats(),
            self.oracle.snapshot_rows(),
        );
    }
}

impl<'g> EnsembleDriver<'g> {
    /// Rebuilds a driver from a checkpoint payload (see
    /// `SingleDriver::restore_from`); the prefetch setting is a runtime
    /// knob supplied by the caller, not part of the checkpoint.
    pub(crate) fn restore_from(
        view: SpdView<'g>,
        r: &mut crate::checkpoint::Reader<'_>,
        prefetch: PrefetchConfig,
    ) -> Result<Self, CoreError> {
        let probe = r.u32()?;
        let chains = r.u64()? as usize;
        let budget = r.u64()?;
        let seed = r.u64()?;
        let done_per_chain = r.u64()?;
        let n = view.num_vertices();
        if probe as usize >= n || !view.is_retained(probe) || chains == 0 {
            return Err(crate::checkpoint::corrupt("invalid ensemble header"));
        }
        if chains > r.remaining() / (14 * 8) {
            return Err(crate::checkpoint::corrupt("chain table longer than the checkpoint"));
        }
        let cells: Vec<ChainCell> = (0..chains)
            .map(|_| -> Result<ChainCell, CoreError> {
                let snap = crate::single::restore_chain_snapshot(r)?;
                Ok(ChainCell {
                    snap,
                    sum_delta: r.f64()?,
                    counted: r.u64()?,
                    proposals_support: r.u64()?,
                    inv_delta_sum: r.f64()?,
                    support_counted: r.u64()?,
                    moments: RunningMoments::from_raw((r.u64()?, r.u64()?, r.u64()?)),
                })
            })
            .collect::<Result<_, _>>()?;
        let (_passes, stats, rows) = restore_oracle(r)?;
        let oracle = SharedProbeOracle::for_view(view, &[probe]);
        oracle.restore_cache(rows, stats);
        let pool = SpdWorkspacePool::for_view_workers(view, chains * prefetch.threads.max(1));
        Ok(EnsembleDriver {
            view,
            r: probe,
            n,
            chains,
            seed,
            prefetch,
            oracle,
            pool,
            cells,
            done_per_chain,
            budget,
        })
    }
}

/// Runs `chains` independent single-space chains of `iterations` steps each,
/// sharing one dependency cache, with optional per-chain prefetch squads
/// (see [`EnsembleConfig`]). Deterministic given the seed; the prefetch
/// setting changes timing only, never any estimate.
pub fn run_ensemble(
    g: &CsrGraph,
    r: Vertex,
    config: &EnsembleConfig,
) -> Result<EnsembleEstimate, CoreError> {
    run_ensemble_view(SpdView::direct(g), r, config)
}

/// [`run_ensemble`] evaluating densities through `view` (direct or
/// reduced); chains keep their original-id state space, so estimates are
/// bit-identical to the direct run whenever the view's densities are (see
/// [`crate::SingleSpaceSampler::for_view`]).
pub fn run_ensemble_view(
    view: SpdView<'_>,
    r: Vertex,
    config: &EnsembleConfig,
) -> Result<EnsembleEstimate, CoreError> {
    run_ensemble_view_adaptive(view, r, config, EngineConfig::fixed(), None).map(|(est, _)| est)
}

/// The adaptive/checkpointable ensemble entry point: segmented execution
/// under `engine_cfg`, with a checkpoint written to `sink` at every segment
/// boundary when one is given.
pub fn run_ensemble_view_adaptive(
    view: SpdView<'_>,
    r: Vertex,
    config: &EnsembleConfig,
    engine_cfg: EngineConfig,
    sink: Option<&mut CheckpointSink<'_>>,
) -> Result<(EnsembleEstimate, AdaptiveReport), CoreError> {
    let engine = EnsembleDriver::create(view, r, config)?.into_engine(engine_cfg);
    match sink {
        None => Ok(engine.run()),
        Some(f) => engine.run_with(|e| f(e.checkpoint())),
    }
}

/// Resumes a checkpointed ensemble run (see
/// [`crate::pipeline::resume_single_view`] for the identity guarantees);
/// `prefetch` re-attaches per-chain prefetch squads — a runtime knob that
/// never changes any estimate.
pub fn resume_ensemble<'g>(
    view: SpdView<'g>,
    bytes: &[u8],
    prefetch: PrefetchConfig,
) -> Result<EstimationEngine<EnsembleDriver<'g>>, CoreError> {
    let (state, mut r) = open_checkpoint(&view, bytes, CheckpointKind::Ensemble)?;
    let driver = EnsembleDriver::restore_from(view, &mut r, prefetch)?;
    Ok(EstimationEngine::with_state(
        driver,
        state.budget,
        state.config,
        state.monitor,
        state.segments,
    ))
}

/// Back-compatible entry point: `chains` sequential chains, no prefetch.
pub fn run_parallel_ensemble(
    g: &CsrGraph,
    r: Vertex,
    chains: usize,
    iterations: u64,
    seed: u64,
) -> Result<EnsembleEstimate, CoreError> {
    run_ensemble(g, r, &EnsembleConfig::new(chains, iterations, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::eq7_limit;
    use mhbc_graph::generators;

    #[test]
    fn pooled_estimate_converges() {
        let g = generators::barbell(8, 1);
        let limit = eq7_limit(&mhbc_spd::dependency_profile_par(&g, 8, 0));
        let est = run_parallel_ensemble(&g, 8, 4, 8_000, 3).expect("valid config");
        assert!((est.bc - limit).abs() < 0.02, "pooled {} vs limit {limit}", est.bc);
        assert_eq!(est.per_chain.len(), 4);
        assert_eq!(est.iterations_per_chain, 8_000);
        let exact = mhbc_spd::exact_betweenness_of(&g, 8);
        assert!((est.bc_corrected - exact).abs() < 0.03);
    }

    #[test]
    fn r_hat_near_one_for_converged_chains() {
        // lollipop(8, 4), probe 9: clique-side sources depend 2 on the
        // probe, far path vertices depend 9 — a genuinely non-constant
        // density series, so within-chain variance is positive and R-hat
        // is defined.
        let g = generators::lollipop(8, 4);
        let est = run_parallel_ensemble(&g, 9, 4, 20_000, 5).expect("valid config");
        assert!(
            est.r_hat.is_finite() && (est.r_hat - 1.0).abs() < 0.05,
            "R-hat {} should be near 1",
            est.r_hat
        );
    }

    #[test]
    fn shared_cache_bounds_total_passes() {
        let g = generators::barbell(6, 2);
        let est = run_parallel_ensemble(&g, 6, 6, 3_000, 7).expect("valid config");
        // 6 chains x 3000 iterations, but the state space has only 16
        // vertices: the shared cache caps the distinct SPD passes.
        assert!(
            est.spd_passes <= g.num_vertices() as u64,
            "passes {} should be <= n",
            est.spd_passes
        );
        assert!(est.oracle_stats.hit_rate() > 0.99);
    }

    #[test]
    fn prefetch_squads_do_not_change_any_estimate() {
        let g = generators::lollipop(6, 3);
        let base = EnsembleConfig::new(3, 2_000, 11);
        let seq = run_ensemble(&g, 7, &base).expect("valid config");
        let pre = run_ensemble(&g, 7, &base.clone().with_prefetch(PrefetchConfig::with_threads(3)))
            .expect("valid config");
        assert_eq!(seq.bc.to_bits(), pre.bc.to_bits());
        assert_eq!(seq.bc_corrected.to_bits(), pre.bc_corrected.to_bits());
        assert_eq!(seq.acceptance_rate.to_bits(), pre.acceptance_rate.to_bits());
        assert_eq!(seq.spd_passes, pre.spd_passes);
        for (a, b) in seq.per_chain.iter().zip(&pre.per_chain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(seq.r_hat.to_bits(), pre.r_hat.to_bits());
    }

    #[test]
    fn segment_length_never_changes_estimates() {
        // Segmentation interleaves diagnostics between iterations but never
        // perturbs any chain: estimates are invariant to the segment knob.
        let g = generators::lollipop(6, 3);
        let config = EnsembleConfig::new(3, 2_500, 13);
        let run_with_segment = |segment: u64| {
            run_ensemble_view_adaptive(
                SpdView::direct(&g),
                7,
                &config,
                EngineConfig::fixed().with_segment(segment),
                None,
            )
            .expect("valid config")
        };
        let (a, ra) = run_with_segment(64);
        let (b, rb) = run_with_segment(1024);
        assert_eq!(a.bc.to_bits(), b.bc.to_bits());
        assert_eq!(a.bc_corrected.to_bits(), b.bc_corrected.to_bits());
        assert_eq!(a.r_hat.to_bits(), b.r_hat.to_bits());
        assert_eq!(a.spd_passes, b.spd_passes);
        assert!(ra.segments > rb.segments);
    }

    #[test]
    fn adaptive_ensemble_stops_early_on_easy_targets() {
        use mhbc_mcmc::StoppingRule;
        let g = generators::lollipop(8, 4);
        let config = EnsembleConfig::new(2, 50_000, 3);
        let (est, report) = run_ensemble_view_adaptive(
            SpdView::direct(&g),
            9,
            &config,
            EngineConfig::adaptive(StoppingRule::TargetStderr { epsilon: 0.05, delta: 0.05 }),
            None,
        )
        .expect("valid config");
        assert!(
            report.iterations < 50_000,
            "loose target should stop early, ran {}",
            report.iterations
        );
        assert_eq!(report.reason, crate::engine::StopReason::TargetReached);
        assert_eq!(est.iterations_per_chain, report.iterations);
        // The pooled estimate is still sane.
        let limit = eq7_limit(&mhbc_spd::dependency_profile_par(&g, 9, 0));
        assert!((est.bc - limit).abs() < 0.2, "{} vs {limit}", est.bc);
    }

    #[test]
    fn ensemble_checkpoint_resume_is_bit_identical() {
        let g = generators::lollipop(6, 3);
        let config = EnsembleConfig::new(3, 2_000, 11);
        let view = SpdView::direct(&g);
        let uninterrupted = run_ensemble_view(view, 7, &config).expect("valid config");

        // Capture a checkpoint a few segments in, then resume it.
        let engine_cfg = EngineConfig::fixed().with_segment(256);
        let mut saved: Option<Vec<u8>> = None;
        let mut count = 0;
        let mut sink = |bytes: Vec<u8>| {
            count += 1;
            if count == 3 {
                saved = Some(bytes);
            }
            Ok(())
        };
        let _ = run_ensemble_view_adaptive(view, 7, &config, engine_cfg, Some(&mut sink))
            .expect("valid config");
        let bytes = saved.expect("checkpoint captured");

        for prefetch in [PrefetchConfig::sequential(), PrefetchConfig::with_threads(3)] {
            let engine = resume_ensemble(view, &bytes, prefetch).expect("resumable");
            assert_eq!(engine.iterations(), 3 * 256);
            let (resumed, _) = engine.run();
            assert_eq!(uninterrupted.bc.to_bits(), resumed.bc.to_bits());
            assert_eq!(uninterrupted.bc_corrected.to_bits(), resumed.bc_corrected.to_bits());
            assert_eq!(uninterrupted.r_hat.to_bits(), resumed.r_hat.to_bits());
            assert_eq!(uninterrupted.spd_passes, resumed.spd_passes);
            assert_eq!(uninterrupted.acceptance_rate.to_bits(), resumed.acceptance_rate.to_bits());
            for (a, b) in uninterrupted.per_chain.iter().zip(&resumed.per_chain) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn reduced_ensemble_is_deterministic_and_prefetch_invariant() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(6, 3);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        let base = EnsembleConfig::new(3, 1_500, 4);
        let seq = run_ensemble_view(view, 0, &base).expect("valid config");
        let pre = run_ensemble_view(
            view,
            0,
            &base.clone().with_prefetch(PrefetchConfig::with_threads(3)),
        )
        .expect("valid config");
        assert_eq!(seq.bc.to_bits(), pre.bc.to_bits());
        assert_eq!(seq.bc_corrected.to_bits(), pre.bc_corrected.to_bits());
        assert_eq!(seq.spd_passes, pre.spd_passes);
        // Pendant + twin structure caps distinct rows well below n.
        assert!(seq.spd_passes < g.num_vertices() as u64);
    }

    #[test]
    fn single_chain_has_nan_r_hat() {
        let g = generators::barbell(4, 1);
        let est = run_parallel_ensemble(&g, 4, 1, 200, 1).expect("valid config");
        assert!(est.r_hat.is_nan());
    }

    #[test]
    fn validation_errors() {
        let g = generators::path(10);
        assert!(matches!(
            run_parallel_ensemble(&g, 99, 2, 10, 0),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
        let tiny = generators::path(2);
        assert!(matches!(
            run_parallel_ensemble(&tiny, 0, 2, 10, 0),
            Err(CoreError::GraphTooSmall { .. })
        ));
    }
}
