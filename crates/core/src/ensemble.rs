//! Parallel multi-chain ensembles.
//!
//! Independence MH chains over the same target are embarrassingly parallel,
//! and — because the stationary law concentrates on the same
//! high-dependency sources — they share most of their density evaluations.
//! This module runs `k` chains across threads over one
//! [`SharedProbeOracle`], pools their
//! Eq 7 and corrected estimates, and reports the Gelman–Rubin `R̂`
//! statistic across chains, the standard multi-chain convergence check that
//! complements the paper's single-chain guarantee.

use crate::oracle::{OracleStats, SharedProbeOracle};
use crate::CoreError;
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_mcmc::diagnostics::RunningMoments;
use mhbc_mcmc::{fn_target, MetropolisHastings, UniformProposal};
use mhbc_spd::DependencyCalculator;
use parking_lot::Mutex;
use rand::{rngs::SmallRng, RngExt, SeedableRng};

/// Per-chain accumulators brought back from a worker thread.
#[derive(Debug, Clone)]
struct ChainResult {
    sum_delta: f64,
    counted: u64,
    proposals_support: u64,
    inv_delta_sum: f64,
    support_counted: u64,
    accepted: u64,
    /// Welford moments of the per-step dependency series (for R̂).
    mean: f64,
    variance: f64,
}

/// Result of a parallel ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleEstimate {
    /// Pooled Eq 7 estimate (average over all chains' counted samples).
    pub bc: f64,
    /// Pooled support-corrected estimate (see `SingleSpaceEstimate`).
    pub bc_corrected: f64,
    /// Per-chain Eq 7 estimates (for dispersion inspection).
    pub per_chain: Vec<f64>,
    /// Gelman–Rubin potential scale reduction factor across chains
    /// (≈ 1 indicates the chains agree; NaN with < 2 chains or degenerate
    /// variance).
    pub r_hat: f64,
    /// Acceptance rate pooled over chains.
    pub acceptance_rate: f64,
    /// Distinct SPD passes across the *shared* cache (the whole point:
    /// `k` chains cost barely more than one).
    pub spd_passes: u64,
    /// Shared-cache statistics.
    pub oracle_stats: OracleStats,
}

/// Runs `chains` independent single-space chains of `iterations` steps each
/// (threads = one per chain, scheduled by the OS), sharing one dependency
/// cache. Deterministic given `seed` (per-chain seeds are `seed + chain`;
/// note the *shared-cache* interleaving does not affect any estimate, only
/// timing).
pub fn run_parallel_ensemble(
    g: &CsrGraph,
    r: Vertex,
    chains: usize,
    iterations: u64,
    seed: u64,
) -> Result<EnsembleEstimate, CoreError> {
    let n = g.num_vertices();
    if n < 3 {
        return Err(CoreError::GraphTooSmall { num_vertices: n });
    }
    if r as usize >= n {
        return Err(CoreError::ProbeOutOfRange { probe: r, num_vertices: n });
    }
    assert!(chains >= 1, "need at least one chain");

    let oracle = SharedProbeOracle::new(g, &[r]);
    let results: Mutex<Vec<(usize, ChainResult)>> = Mutex::new(Vec::with_capacity(chains));

    crossbeam::thread::scope(|scope| {
        for c in 0..chains {
            let oracle = &oracle;
            let results = &results;
            scope.spawn(move |_| {
                let mut calc = DependencyCalculator::new(g);
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(c as u64));
                let initial = rng.random_range(0..n as Vertex);
                // The closure makes the shared oracle the chain's density.
                let target = fn_target(|v: &Vertex| oracle.dep(*v, 0, &mut calc));
                let mut chain =
                    MetropolisHastings::new(target, UniformProposal::new(n), initial, rng);

                let mut res = ChainResult {
                    sum_delta: chain.current_density(),
                    counted: 1,
                    proposals_support: 0,
                    inv_delta_sum: 0.0,
                    support_counted: 0,
                    accepted: 0,
                    mean: 0.0,
                    variance: 0.0,
                };
                let mut moments = RunningMoments::new();
                moments.push(chain.current_density());
                if chain.current_density() > 0.0 {
                    res.inv_delta_sum += 1.0 / chain.current_density();
                    res.support_counted += 1;
                }
                for _ in 0..iterations {
                    let out = chain.step();
                    res.sum_delta += out.density;
                    res.counted += 1;
                    moments.push(out.density);
                    if out.accepted {
                        res.accepted += 1;
                    }
                    if out.proposed_density > 0.0 {
                        res.proposals_support += 1;
                    }
                    if out.density > 0.0 {
                        res.inv_delta_sum += 1.0 / out.density;
                        res.support_counted += 1;
                    }
                }
                res.mean = moments.mean();
                res.variance = moments.variance();
                results.lock().push((c, res));
            });
        }
    })
    .expect("ensemble threads joined");

    let mut per = results.into_inner();
    per.sort_by_key(|&(c, _)| c);
    let per: Vec<ChainResult> = per.into_iter().map(|(_, r)| r).collect();

    let norm = n as f64 - 1.0;
    let per_chain: Vec<f64> = per.iter().map(|c| c.sum_delta / (c.counted as f64 * norm)).collect();

    let total_counted: u64 = per.iter().map(|c| c.counted).sum();
    let bc = per.iter().map(|c| c.sum_delta).sum::<f64>() / (total_counted as f64 * norm);

    let total_proposals = chains as u64 * iterations;
    let support: u64 = per.iter().map(|c| c.proposals_support).sum();
    let inv_sum: f64 = per.iter().map(|c| c.inv_delta_sum).sum();
    let support_counted: u64 = per.iter().map(|c| c.support_counted).sum();
    let bc_corrected = if total_proposals == 0 || support_counted == 0 || inv_sum <= 0.0 {
        0.0
    } else {
        (support as f64 / total_proposals as f64) * support_counted as f64 / (norm * inv_sum)
    };

    // Gelman-Rubin across chains: W = mean within-chain variance,
    // B/n = variance of chain means; R^2 = ((m-1)/m W + B/m) / W with
    // m = samples per chain.
    let r_hat = if chains >= 2 {
        let m = (iterations + 1) as f64;
        let w = per.iter().map(|c| c.variance).sum::<f64>() / chains as f64;
        let mut mean_moments = RunningMoments::new();
        for c in &per {
            mean_moments.push(c.mean);
        }
        let b_over_m = mean_moments.variance();
        if w > 0.0 {
            (((m - 1.0) / m) * w / w + b_over_m / w).sqrt()
        } else {
            f64::NAN
        }
    } else {
        f64::NAN
    };

    let accepted: u64 = per.iter().map(|c| c.accepted).sum();
    let stats = oracle.stats();
    Ok(EnsembleEstimate {
        bc,
        bc_corrected,
        per_chain,
        r_hat,
        acceptance_rate: if total_proposals == 0 {
            0.0
        } else {
            accepted as f64 / total_proposals as f64
        },
        spd_passes: stats.misses,
        oracle_stats: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::eq7_limit;
    use mhbc_graph::generators;

    #[test]
    fn pooled_estimate_converges() {
        let g = generators::barbell(8, 1);
        let limit = eq7_limit(&mhbc_spd::dependency_profile_par(&g, 8, 0));
        let est = run_parallel_ensemble(&g, 8, 4, 8_000, 3).expect("valid config");
        assert!((est.bc - limit).abs() < 0.02, "pooled {} vs limit {limit}", est.bc);
        assert_eq!(est.per_chain.len(), 4);
        let exact = mhbc_spd::exact_betweenness_of(&g, 8);
        assert!((est.bc_corrected - exact).abs() < 0.03);
    }

    #[test]
    fn r_hat_near_one_for_converged_chains() {
        // lollipop(8, 4), probe 9: clique-side sources depend 2 on the
        // probe, far path vertices depend 9 — a genuinely non-constant
        // density series, so within-chain variance is positive and R-hat
        // is defined.
        let g = generators::lollipop(8, 4);
        let est = run_parallel_ensemble(&g, 9, 4, 20_000, 5).expect("valid config");
        assert!(
            est.r_hat.is_finite() && (est.r_hat - 1.0).abs() < 0.05,
            "R-hat {} should be near 1",
            est.r_hat
        );
    }

    #[test]
    fn shared_cache_bounds_total_passes() {
        let g = generators::barbell(6, 2);
        let est = run_parallel_ensemble(&g, 6, 6, 3_000, 7).expect("valid config");
        // 6 chains x 3000 iterations, but the state space has only 16
        // vertices: the shared cache caps the SPD passes (small slack for
        // concurrent duplicate computations).
        assert!(
            est.spd_passes <= 2 * g.num_vertices() as u64,
            "passes {} should be ~n",
            est.spd_passes
        );
        assert!(est.oracle_stats.hit_rate() > 0.99);
    }

    #[test]
    fn single_chain_has_nan_r_hat() {
        let g = generators::barbell(4, 1);
        let est = run_parallel_ensemble(&g, 4, 1, 200, 1).expect("valid config");
        assert!(est.r_hat.is_nan());
    }

    #[test]
    fn validation_errors() {
        let g = generators::path(10);
        assert!(matches!(
            run_parallel_ensemble(&g, 99, 2, 10, 0),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
        let tiny = generators::path(2);
        assert!(matches!(
            run_parallel_ensemble(&tiny, 0, 2, 10, 0),
            Err(CoreError::GraphTooSmall { .. })
        ));
    }
}
