//! Parallel multi-chain ensembles.
//!
//! Independence MH chains over the same target are embarrassingly parallel,
//! and — because the stationary law concentrates on the same
//! high-dependency sources — they share most of their density evaluations.
//! This module runs `k` chains across threads over one
//! [`SharedProbeOracle`], pools their
//! Eq 7 and corrected estimates, and reports the Gelman–Rubin `R̂`
//! statistic across chains, the standard multi-chain convergence check that
//! complements the paper's single-chain guarantee.
//!
//! With a parallel [`PrefetchConfig`], each chain additionally gets its own
//! squad of speculative prefetch workers (chains × pipeline): every chain's
//! proposal stream is replayed by `threads - 1` workers that warm the
//! shared cache ahead of it, exactly as in [`crate::pipeline`]. The pooled
//! estimates are bit-identical whatever the prefetch setting — chain
//! results depend only on seeds and densities, never on cache timing.

use crate::oracle::{OracleStats, SharedProbeOracle};
use crate::pipeline::{derive_streams, prefetch_lane, Lane, PrefetchConfig, Progress};
use crate::CoreError;
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_mcmc::diagnostics::RunningMoments;
use mhbc_mcmc::{fn_target, MetropolisHastings, UniformProposal};
use mhbc_spd::{SpdView, SpdWorkspacePool};
use parking_lot::Mutex;
use std::sync::atomic::AtomicU64;

/// Configuration for [`run_ensemble`].
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Number of independent chains (one thread each).
    pub chains: usize,
    /// Iterations per chain.
    pub iterations: u64,
    /// Base seed; chain `c` is seeded with `seed + c`.
    pub seed: u64,
    /// Per-chain speculative prefetch: a parallel setting spawns
    /// `threads - 1` extra workers *per chain*, so the total thread count
    /// is `chains × threads`.
    pub prefetch: PrefetchConfig,
}

impl EnsembleConfig {
    /// `chains` sequential chains (no prefetch workers).
    pub fn new(chains: usize, iterations: u64, seed: u64) -> Self {
        EnsembleConfig { chains, iterations, seed, prefetch: PrefetchConfig::sequential() }
    }

    /// Attaches a per-chain prefetch pipeline.
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }
}

/// Per-chain accumulators brought back from a worker thread.
#[derive(Debug, Clone)]
struct ChainResult {
    sum_delta: f64,
    counted: u64,
    proposals_support: u64,
    inv_delta_sum: f64,
    support_counted: u64,
    accepted: u64,
    /// Welford moments of the per-step dependency series (for R̂).
    mean: f64,
    variance: f64,
}

/// Result of a parallel ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleEstimate {
    /// Pooled Eq 7 estimate (average over all chains' counted samples).
    pub bc: f64,
    /// Pooled support-corrected estimate (see `SingleSpaceEstimate`).
    pub bc_corrected: f64,
    /// Per-chain Eq 7 estimates (for dispersion inspection).
    pub per_chain: Vec<f64>,
    /// Gelman–Rubin potential scale reduction factor across chains
    /// (≈ 1 indicates the chains agree; NaN with < 2 chains or degenerate
    /// variance).
    pub r_hat: f64,
    /// Acceptance rate pooled over chains.
    pub acceptance_rate: f64,
    /// Distinct sources evaluated across the *shared* cache (the whole
    /// point: `k` chains cost barely more than one). Deterministic for a
    /// given config — concurrent duplicate computations don't inflate it.
    pub spd_passes: u64,
    /// Shared-cache statistics.
    pub oracle_stats: OracleStats,
}

/// One chain of the ensemble; identical numerics whatever the prefetch
/// setting (densities are a pure function of the source vertex).
fn run_chain<'g>(
    n: usize,
    oracle: &SharedProbeOracle<'g>,
    pool: &SpdWorkspacePool<'g>,
    seed: u64,
    iterations: u64,
    progress: &AtomicU64,
) -> ChainResult {
    let mut calc = pool.checkout();
    let (initial, prop_rng, acc_rng) = derive_streams(seed, None, n);
    // The closure makes the shared oracle the chain's density.
    let target = fn_target(|v: &Vertex| oracle.dep(*v, 0, &mut calc));
    let mut chain = MetropolisHastings::with_streams(
        target,
        UniformProposal::new(n),
        initial,
        prop_rng,
        acc_rng,
    );

    let mut res = ChainResult {
        sum_delta: chain.current_density(),
        counted: 1,
        proposals_support: 0,
        inv_delta_sum: 0.0,
        support_counted: 0,
        accepted: 0,
        mean: 0.0,
        variance: 0.0,
    };
    let mut moments = RunningMoments::new();
    moments.push(chain.current_density());
    if chain.current_density() > 0.0 {
        res.inv_delta_sum += 1.0 / chain.current_density();
        res.support_counted += 1;
    }
    // Released (set to MAX) on drop — including on panic — so this chain's
    // prefetch squad can never spin on a window that will not advance.
    let window = Progress(progress);
    for t in 1..=iterations {
        window.advance_to(t);
        let out = chain.step();
        res.sum_delta += out.density;
        res.counted += 1;
        moments.push(out.density);
        if out.accepted {
            res.accepted += 1;
        }
        if out.proposed_density > 0.0 {
            res.proposals_support += 1;
        }
        if out.density > 0.0 {
            res.inv_delta_sum += 1.0 / out.density;
            res.support_counted += 1;
        }
    }
    res.mean = moments.mean();
    res.variance = moments.variance();
    res
}

/// Runs `chains` independent single-space chains of `iterations` steps each,
/// sharing one dependency cache, with optional per-chain prefetch squads
/// (see [`EnsembleConfig`]). Deterministic given the seed; the prefetch
/// setting changes timing only, never any estimate.
pub fn run_ensemble(
    g: &CsrGraph,
    r: Vertex,
    config: &EnsembleConfig,
) -> Result<EnsembleEstimate, CoreError> {
    run_ensemble_view(SpdView::direct(g), r, config)
}

/// [`run_ensemble`] evaluating densities through `view` (direct or
/// reduced); chains keep their original-id state space, so estimates are
/// bit-identical to the direct run whenever the view's densities are (see
/// [`crate::SingleSpaceSampler::for_view`]).
pub fn run_ensemble_view(
    view: SpdView<'_>,
    r: Vertex,
    config: &EnsembleConfig,
) -> Result<EnsembleEstimate, CoreError> {
    let n = view.num_vertices();
    if n < 3 {
        return Err(CoreError::GraphTooSmall { num_vertices: n });
    }
    if r as usize >= n {
        return Err(CoreError::ProbeOutOfRange { probe: r, num_vertices: n });
    }
    if !view.is_retained(r) {
        return Err(CoreError::PrunedProbe { probe: r });
    }
    let chains = config.chains;
    assert!(chains >= 1, "need at least one chain");
    let workers_per_chain = config.prefetch.threads.saturating_sub(1) as u64;
    let depth = config.prefetch.depth.max(workers_per_chain);

    let oracle = SharedProbeOracle::for_view(view, &[r]);
    let pool = SpdWorkspacePool::for_view_workers(view, chains * config.prefetch.threads.max(1));
    let progress: Vec<AtomicU64> = (0..chains).map(|_| AtomicU64::new(0)).collect();
    let results: Mutex<Vec<(usize, ChainResult)>> = Mutex::new(Vec::with_capacity(chains));
    let iterations = config.iterations;

    crossbeam::thread::scope(|scope| {
        for c in 0..chains {
            let chain_seed = config.seed.wrapping_add(c as u64);
            let (oracle, pool, results) = (&oracle, &pool, &results);
            let chain_progress = &progress[c];
            scope.spawn(move |_| {
                let res = run_chain(n, oracle, pool, chain_seed, iterations, chain_progress);
                results.lock().push((c, res));
            });
            // The chain's prefetch squad replays its proposal stream.
            for lane in 0..workers_per_chain {
                let progress = chain_progress;
                scope.spawn(move |_| {
                    let mut calc = pool.checkout();
                    let (_, wrng, _) = derive_streams(chain_seed, None, n);
                    prefetch_lane(
                        UniformProposal::new(n),
                        wrng,
                        iterations,
                        Lane { lane, lanes: workers_per_chain, depth, progress },
                        |v: Vertex| {
                            oracle.warm(v, &mut calc);
                        },
                    );
                });
            }
        }
    })
    .expect("ensemble threads joined");

    let mut per = results.into_inner();
    per.sort_by_key(|&(c, _)| c);
    let per: Vec<ChainResult> = per.into_iter().map(|(_, r)| r).collect();

    let norm = n as f64 - 1.0;
    let per_chain: Vec<f64> = per.iter().map(|c| c.sum_delta / (c.counted as f64 * norm)).collect();

    let total_counted: u64 = per.iter().map(|c| c.counted).sum();
    let bc = per.iter().map(|c| c.sum_delta).sum::<f64>() / (total_counted as f64 * norm);

    let total_proposals = chains as u64 * iterations;
    let support: u64 = per.iter().map(|c| c.proposals_support).sum();
    let inv_sum: f64 = per.iter().map(|c| c.inv_delta_sum).sum();
    let support_counted: u64 = per.iter().map(|c| c.support_counted).sum();
    let bc_corrected = if total_proposals == 0 || support_counted == 0 || inv_sum <= 0.0 {
        0.0
    } else {
        (support as f64 / total_proposals as f64) * support_counted as f64 / (norm * inv_sum)
    };

    // Gelman-Rubin across chains: W = mean within-chain variance,
    // B/n = variance of chain means; R^2 = ((m-1)/m W + B/m) / W with
    // m = samples per chain.
    let r_hat = if chains >= 2 {
        let m = (iterations + 1) as f64;
        let w = per.iter().map(|c| c.variance).sum::<f64>() / chains as f64;
        let mut mean_moments = RunningMoments::new();
        for c in &per {
            mean_moments.push(c.mean);
        }
        let b_over_m = mean_moments.variance();
        if w > 0.0 {
            (((m - 1.0) / m) * w / w + b_over_m / w).sqrt()
        } else {
            f64::NAN
        }
    } else {
        f64::NAN
    };

    let accepted: u64 = per.iter().map(|c| c.accepted).sum();
    Ok(EnsembleEstimate {
        bc,
        bc_corrected,
        per_chain,
        r_hat,
        acceptance_rate: if total_proposals == 0 {
            0.0
        } else {
            accepted as f64 / total_proposals as f64
        },
        spd_passes: oracle.cached_sources() as u64,
        oracle_stats: oracle.stats(),
    })
}

/// Back-compatible entry point: `chains` sequential chains, no prefetch.
pub fn run_parallel_ensemble(
    g: &CsrGraph,
    r: Vertex,
    chains: usize,
    iterations: u64,
    seed: u64,
) -> Result<EnsembleEstimate, CoreError> {
    run_ensemble(g, r, &EnsembleConfig::new(chains, iterations, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::eq7_limit;
    use mhbc_graph::generators;

    #[test]
    fn pooled_estimate_converges() {
        let g = generators::barbell(8, 1);
        let limit = eq7_limit(&mhbc_spd::dependency_profile_par(&g, 8, 0));
        let est = run_parallel_ensemble(&g, 8, 4, 8_000, 3).expect("valid config");
        assert!((est.bc - limit).abs() < 0.02, "pooled {} vs limit {limit}", est.bc);
        assert_eq!(est.per_chain.len(), 4);
        let exact = mhbc_spd::exact_betweenness_of(&g, 8);
        assert!((est.bc_corrected - exact).abs() < 0.03);
    }

    #[test]
    fn r_hat_near_one_for_converged_chains() {
        // lollipop(8, 4), probe 9: clique-side sources depend 2 on the
        // probe, far path vertices depend 9 — a genuinely non-constant
        // density series, so within-chain variance is positive and R-hat
        // is defined.
        let g = generators::lollipop(8, 4);
        let est = run_parallel_ensemble(&g, 9, 4, 20_000, 5).expect("valid config");
        assert!(
            est.r_hat.is_finite() && (est.r_hat - 1.0).abs() < 0.05,
            "R-hat {} should be near 1",
            est.r_hat
        );
    }

    #[test]
    fn shared_cache_bounds_total_passes() {
        let g = generators::barbell(6, 2);
        let est = run_parallel_ensemble(&g, 6, 6, 3_000, 7).expect("valid config");
        // 6 chains x 3000 iterations, but the state space has only 16
        // vertices: the shared cache caps the distinct SPD passes.
        assert!(
            est.spd_passes <= g.num_vertices() as u64,
            "passes {} should be <= n",
            est.spd_passes
        );
        assert!(est.oracle_stats.hit_rate() > 0.99);
    }

    #[test]
    fn prefetch_squads_do_not_change_any_estimate() {
        let g = generators::lollipop(6, 3);
        let base = EnsembleConfig::new(3, 2_000, 11);
        let seq = run_ensemble(&g, 7, &base).expect("valid config");
        let pre = run_ensemble(&g, 7, &base.clone().with_prefetch(PrefetchConfig::with_threads(3)))
            .expect("valid config");
        assert_eq!(seq.bc.to_bits(), pre.bc.to_bits());
        assert_eq!(seq.bc_corrected.to_bits(), pre.bc_corrected.to_bits());
        assert_eq!(seq.acceptance_rate.to_bits(), pre.acceptance_rate.to_bits());
        assert_eq!(seq.spd_passes, pre.spd_passes);
        for (a, b) in seq.per_chain.iter().zip(&pre.per_chain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(seq.r_hat.to_bits(), pre.r_hat.to_bits());
    }

    #[test]
    fn reduced_ensemble_is_deterministic_and_prefetch_invariant() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(6, 3);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        let base = EnsembleConfig::new(3, 1_500, 4);
        let seq = run_ensemble_view(view, 0, &base).expect("valid config");
        let pre = run_ensemble_view(
            view,
            0,
            &base.clone().with_prefetch(PrefetchConfig::with_threads(3)),
        )
        .expect("valid config");
        assert_eq!(seq.bc.to_bits(), pre.bc.to_bits());
        assert_eq!(seq.bc_corrected.to_bits(), pre.bc_corrected.to_bits());
        assert_eq!(seq.spd_passes, pre.spd_passes);
        // Pendant + twin structure caps distinct rows well below n.
        assert!(seq.spd_passes < g.num_vertices() as u64);
    }

    #[test]
    fn single_chain_has_nan_r_hat() {
        let g = generators::barbell(4, 1);
        let est = run_parallel_ensemble(&g, 4, 1, 200, 1).expect("valid config");
        assert!(est.r_hat.is_nan());
    }

    #[test]
    fn validation_errors() {
        let g = generators::path(10);
        assert!(matches!(
            run_parallel_ensemble(&g, 99, 2, 10, 0),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
        let tiny = generators::path(2);
        assert!(matches!(
            run_parallel_ensemble(&tiny, 0, 2, 10, 0),
            Err(CoreError::GraphTooSmall { .. })
        ));
    }
}
