//! Versioned binary checkpoints for the estimation engine.
//!
//! A checkpoint captures the **complete** state of a running
//! [`crate::engine::EstimationEngine`] at a segment boundary — chain RNG
//! streams, estimator accumulators, the streaming diagnostics monitor, the
//! segment counter, and the memoised dependency rows — such that resuming
//! is *bit-identical* to never having stopped: same estimates, same
//! acceptance history, same `spd_passes`, same future stopping decisions,
//! at every thread count and kernel mode.
//!
//! ## File format (version 1)
//!
//! ```text
//! magic    8 bytes  "MHBCCKPT"
//! version  u32      1
//! kind     u8       1 = single, 2 = joint, 3 = ensemble
//! view     u8 preprocess level (off/prune/full), u8 kernel (advisory),
//!          u64 n, u64 m, u8 weighted, u64 FNV-1a edge hash
//! payload  kind-specific (see the engine drivers' `save`/`restore`)
//! checksum u64      FNV-1a over everything above
//! ```
//!
//! All multi-byte integers are little-endian; floats are stored as raw IEEE
//! bits so restored accumulators continue bit-exactly. The header pins the
//! run to an equivalent evaluation view: the **graph** must match exactly
//! (the edge hash covers endpoints and weights) and the **preprocess
//! level** must match (cached rows are keyed by the reduction's row keys).
//! The **kernel mode is advisory** — every mode produces bit-identical
//! dependency rows (the PR 4 guarantee), so a checkpoint written under
//! `--kernel topdown` may resume under `hybrid` without changing a single
//! output bit; the saved mode is only echoed for reproducibility.

use crate::CoreError;
use mhbc_graph::reduce::ReduceLevel;
use mhbc_graph::CsrGraph;
use mhbc_spd::{KernelMode, SpdView};

/// Format magic.
pub const MAGIC: &[u8; 8] = b"MHBCCKPT";
/// Current format version.
pub const VERSION: u32 = 1;

/// What kind of run a checkpoint holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// A single-space run (`estimate`).
    Single,
    /// A joint-space run (`rank`).
    Joint,
    /// A multi-chain ensemble run.
    Ensemble,
}

impl CheckpointKind {
    pub(crate) fn tag(self) -> u8 {
        match self {
            CheckpointKind::Single => 1,
            CheckpointKind::Joint => 2,
            CheckpointKind::Ensemble => 3,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Result<Self, CoreError> {
        match tag {
            1 => Ok(CheckpointKind::Single),
            2 => Ok(CheckpointKind::Joint),
            3 => Ok(CheckpointKind::Ensemble),
            other => Err(corrupt(format!("unknown checkpoint kind {other}"))),
        }
    }
}

/// Decoded checkpoint header: enough to rebuild the evaluation view before
/// touching the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointInfo {
    /// Which engine kind wrote the file.
    pub kind: CheckpointKind,
    /// The preprocess level the run evaluated through (must match at
    /// resume: cached rows are keyed in the reduction's key space).
    pub preprocess: ReduceLevel,
    /// The kernel mode at save time (advisory; any mode resumes
    /// bit-identically).
    pub kernel: KernelMode,
    /// Vertex count of the (LCC-reduced) graph.
    pub num_vertices: u64,
    /// Edge count.
    pub num_edges: u64,
    /// Whether the graph is weighted.
    pub weighted: bool,
    /// FNV-1a hash over the edge list (endpoints and weight bits).
    pub graph_hash: u64,
}

pub(crate) fn corrupt(reason: impl Into<String>) -> CoreError {
    CoreError::Checkpoint { reason: reason.into() }
}

/// FNV-1a over the graph's edge list — cheap (`O(m)`), order-sensitive, and
/// covering weights, so "same file, same LCC" collisions are the only way
/// two different graphs pass the header check.
pub fn graph_hash(g: &CsrGraph) -> u64 {
    let mut h = Fnv::new();
    h.u64(g.num_vertices() as u64);
    for (u, v, w) in g.edges() {
        h.u64(u as u64);
        h.u64(v as u64);
        h.u64(w.to_bits());
    }
    h.finish()
}

/// Incremental FNV-1a (64-bit).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn level_tag(level: Option<ReduceLevel>) -> u8 {
    match level {
        None => 0,
        Some(ReduceLevel::Off) => 0,
        Some(ReduceLevel::Prune) => 1,
        Some(ReduceLevel::Full) => 2,
    }
}

fn level_from_tag(tag: u8) -> Result<ReduceLevel, CoreError> {
    match tag {
        0 => Ok(ReduceLevel::Off),
        1 => Ok(ReduceLevel::Prune),
        2 => Ok(ReduceLevel::Full),
        other => Err(corrupt(format!("unknown preprocess level {other}"))),
    }
}

fn kernel_tag(kernel: KernelMode) -> u8 {
    match kernel {
        KernelMode::Auto => 0,
        KernelMode::TopDown => 1,
        KernelMode::Hybrid => 2,
    }
}

fn kernel_from_tag(tag: u8) -> Result<KernelMode, CoreError> {
    match tag {
        0 => Ok(KernelMode::Auto),
        1 => Ok(KernelMode::TopDown),
        2 => Ok(KernelMode::Hybrid),
        other => Err(corrupt(format!("unknown kernel mode {other}"))),
    }
}

/// Little-endian byte sink for checkpoint payloads (public so the engine's
/// driver trait can name it; construction and reads stay crate-internal).
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::with_capacity(4096) }
    }

    pub(crate) fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    pub(crate) fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    pub(crate) fn f64s(&mut self, xs: &[f64]) {
        self.u64(xs.len() as u64);
        for &x in xs {
            self.f64(x);
        }
    }

    pub(crate) fn bytes(&mut self, bs: &[u8]) {
        self.buf.extend_from_slice(bs);
    }

    /// Appends the FNV checksum and returns the finished file bytes.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        let mut h = Fnv::new();
        h.bytes(&self.buf);
        let sum = h.finish();
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Little-endian byte source with corruption-as-error reads (public for
/// the same reason as [`Writer`]).
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| corrupt("truncated checkpoint"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn f64s(&mut self) -> Result<Vec<f64>, CoreError> {
        let n = self.u64()? as usize;
        if n > self.remaining() / 8 {
            return Err(corrupt("float vector longer than the checkpoint"));
        }
        (0..n).map(|_| self.f64()).collect()
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Writes the common header (magic, version, kind, view identity) into `w`.
pub(crate) fn write_header(w: &mut Writer, kind: CheckpointKind, view: &SpdView<'_>) {
    w.bytes(MAGIC);
    w.u32(VERSION);
    w.u8(kind.tag());
    w.u8(level_tag(view.reduced().map(|r| r.level())));
    w.u8(kernel_tag(view.kernel()));
    let g = view.graph();
    w.u64(g.num_vertices() as u64);
    w.u64(g.num_edges() as u64);
    w.u8(g.is_weighted() as u8);
    w.u64(graph_hash(g));
}

/// Verifies the trailing checksum and decodes the header, returning the
/// info block and a reader positioned at the payload.
pub(crate) fn read_header<'a>(bytes: &'a [u8]) -> Result<(CheckpointInfo, Reader<'a>), CoreError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(corrupt("file too short to be a checkpoint"));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    let mut h = Fnv::new();
    h.bytes(body);
    if h.finish() != stored {
        return Err(corrupt("checksum mismatch (file corrupted or truncated)"));
    }
    let mut r = Reader::new(body);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(corrupt("not a mhbc checkpoint (bad magic)"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported checkpoint version {version} (expected {VERSION})"
        )));
    }
    let kind = CheckpointKind::from_tag(r.u8()?)?;
    let preprocess = level_from_tag(r.u8()?)?;
    let kernel = kernel_from_tag(r.u8()?)?;
    let info = CheckpointInfo {
        kind,
        preprocess,
        kernel,
        num_vertices: r.u64()?,
        num_edges: r.u64()?,
        weighted: r.u8()? != 0,
        graph_hash: r.u64()?,
    };
    Ok((info, r))
}

/// Decodes and validates just the header of a checkpoint file — what a CLI
/// needs to rebuild the evaluation view (load the graph, apply the saved
/// preprocess level) before resuming the payload.
pub fn peek(bytes: &[u8]) -> Result<CheckpointInfo, CoreError> {
    read_header(bytes).map(|(info, _)| info)
}

/// Validates that `view` matches a checkpoint's header: same graph (size
/// and edge hash) and same preprocess level. The kernel mode is *not*
/// checked (all modes are bit-identical).
pub(crate) fn validate_view(info: &CheckpointInfo, view: &SpdView<'_>) -> Result<(), CoreError> {
    let g = view.graph();
    if g.num_vertices() as u64 != info.num_vertices
        || g.num_edges() as u64 != info.num_edges
        || g.is_weighted() != info.weighted
        || graph_hash(g) != info.graph_hash
    {
        return Err(corrupt(format!(
            "graph mismatch: checkpoint was written for {} vertices / {} edges (hash {:016x}), \
             resuming against {} vertices / {} edges (hash {:016x})",
            info.num_vertices,
            info.num_edges,
            info.graph_hash,
            g.num_vertices(),
            g.num_edges(),
            graph_hash(g)
        )));
    }
    let level = view.reduced().map(|r| r.level()).unwrap_or(ReduceLevel::Off);
    if level_tag(Some(level)) != level_tag(Some(info.preprocess)) {
        return Err(corrupt(format!(
            "preprocess mismatch: checkpoint used `{}`, resume view uses `{}` (cached rows are \
             keyed in the reduction's key space — rebuild the view at the saved level)",
            info.preprocess.as_str(),
            level.as_str()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn header_roundtrip_and_checksum() {
        let g = generators::barbell(5, 2);
        let view = SpdView::direct(&g).with_kernel(KernelMode::Hybrid);
        let mut w = Writer::new();
        write_header(&mut w, CheckpointKind::Single, &view);
        w.u64(0xDEAD_BEEF);
        let bytes = w.finish();

        let info = peek(&bytes).expect("valid header");
        assert_eq!(info.kind, CheckpointKind::Single);
        assert_eq!(info.preprocess, ReduceLevel::Off);
        assert_eq!(info.kernel, KernelMode::Hybrid);
        assert_eq!(info.num_vertices, g.num_vertices() as u64);
        assert!(!info.weighted);
        validate_view(&info, &view).expect("same view validates");
        // Any kernel mode validates (rows are mode-invariant).
        validate_view(&info, &SpdView::direct(&g)).expect("other kernel validates");

        let (_, mut r) = read_header(&bytes).expect("valid");
        assert_eq!(r.u64().expect("payload"), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let g = generators::barbell(4, 1);
        let mut w = Writer::new();
        write_header(&mut w, CheckpointKind::Joint, &SpdView::direct(&g));
        let mut bytes = w.finish();
        // Flip one payload byte: checksum must fail.
        bytes[12] ^= 0xFF;
        assert!(matches!(peek(&bytes), Err(CoreError::Checkpoint { .. })));
        // Truncation must fail.
        assert!(peek(&bytes[..10]).is_err());
        assert!(peek(b"not a checkpoint at all").is_err());
    }

    #[test]
    fn mismatched_graphs_are_rejected() {
        let a = generators::barbell(5, 2);
        let b = generators::barbell(5, 3);
        let mut w = Writer::new();
        write_header(&mut w, CheckpointKind::Single, &SpdView::direct(&a));
        let bytes = w.finish();
        let info = peek(&bytes).expect("valid");
        let err = validate_view(&info, &SpdView::direct(&b)).expect_err("different graph");
        assert!(err.to_string().contains("graph mismatch"), "{err}");
    }

    #[test]
    fn mismatched_preprocess_is_rejected() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(6, 3);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let mut w = Writer::new();
        write_header(&mut w, CheckpointKind::Single, &SpdView::preprocessed(&g, &red));
        let bytes = w.finish();
        let info = peek(&bytes).expect("valid");
        assert_eq!(info.preprocess, ReduceLevel::Full);
        let err = validate_view(&info, &SpdView::direct(&g)).expect_err("level mismatch");
        assert!(err.to_string().contains("preprocess mismatch"), "{err}");
    }

    #[test]
    fn same_graph_same_hash_different_graph_different_hash() {
        let a = generators::grid(4, 5, false);
        let b = generators::grid(4, 5, false);
        assert_eq!(graph_hash(&a), graph_hash(&b));
        let c = generators::grid(5, 4, false);
        assert_ne!(graph_hash(&a), graph_hash(&c));
        // Weights are covered.
        let w = a.map_weights(|_, _| 2.0).unwrap();
        assert_ne!(graph_hash(&a), graph_hash(&w));
    }
}
