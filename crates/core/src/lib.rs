//! # mhbc-core
//!
//! The paper's contribution: Metropolis–Hastings samplers for betweenness
//! centrality (Chehreghani, Abdessalem, Bifet — EDBT 2019 /
//! arXiv:1704.07351).
//!
//! Two samplers are provided:
//!
//! - [`SingleSpaceSampler`] (§4.2) estimates `BC(r)` for a single probe
//!   vertex `r`. It runs an independence Metropolis–Hastings chain on
//!   `V(G)` with uniform proposals and acceptance ratio
//!   `min{1, δ_{v'•}(r) / δ_{v•}(r)}` (Eq 6), whose stationary distribution
//!   is the *optimal* source-sampling distribution `P_r[v] ∝ δ_{v•}(r)`
//!   of Chehreghani \[13\] (Eq 5). The estimate is the chain average of
//!   `f(v) = δ_{v•}(r) / (|V| − 1)` (Eq 7).
//! - [`JointSpaceSampler`] (§4.3) estimates *relative* betweenness scores
//!   `BC_{r_j}(r_i)` (Eq 23) and betweenness ratios `BC(r_i)/BC(r_j)`
//!   (Eq 22) for every pair in a probe set `R ⊂ V(G)`, by running a chain
//!   on the joint space `R × V(G)` (acceptance Eq 17, stationary Eq 18).
//!
//! Supporting modules:
//!
//! - [`oracle`] — memoised dependency-score evaluation (the chain revisits
//!   states; re-evaluating `δ_{v•}(r)` would waste SPD passes), with
//!   second-chance eviction for capacity-limited caches;
//! - [`pipeline`] — speculative density prefetching: worker threads replay
//!   the independence chain's proposal stream and evaluate upcoming
//!   densities ahead of the chain thread, with bit-identical results to the
//!   sequential samplers;
//! - [`optimal`] — exact ground-truth quantities: the optimal distribution,
//!   `µ(r)`, exact relative scores, and the Theorem 2 separator checker;
//! - [`planner`] — the (ε, δ) sample-size planner built on Ineq 14/27.
//!
//! Both samplers work unchanged on weighted graphs (the kernel switches to
//! Dijkstra SPDs, §2.1).
//!
//! ## Preprocessing (graph reduction)
//!
//! Every sampler and pipeline entry point has a `*_view` / `for_view`
//! variant taking an [`mhbc_spd::SpdView`]: the graph together with an
//! optional [`mhbc_graph::reduce::ReducedGraph`] (degree-1 pruning, twin
//! collapsing, BFS relabelling). The chain's state space, proposal stream,
//! and stationary distribution are **unchanged** — densities are mapped
//! exactly through the reduction (see [`SingleSpaceSampler::for_view`] for
//! the argument) — while each density evaluation costs one SPD pass over
//! the smaller, cache-friendlier reduced CSR, shared across structurally
//! equivalent sources via [`mhbc_spd::SpdView::row_key`] coalescing.
//!
//! The view also carries the SPD [`mhbc_spd::KernelMode`]
//! ([`mhbc_spd::SpdView::with_kernel`]): everything built from it —
//! oracles, workspace pools, the prefetch pipeline, the ensembles —
//! inherits the forward-pass strategy, and because every mode is
//! bit-identical the choice can never change a sampler's output.
//!
//! ## Paper § → module map
//!
//! | Paper §/result | Topic | Where |
//! |---|---|---|
//! | §2 | graph model (undirected, connected, positive weights) | [`mhbc_graph`] |
//! | §2.1, Eq 4 | SPDs, dependency scores, exact Brandes | [`mhbc_spd`] |
//! | §2.2 | generic Metropolis–Hastings framework | [`mhbc_mcmc`] |
//! | §3.2 | prior samplers the evaluation compares against | `mhbc_baselines` |
//! | §4.2, Eq 5–7 | single-space sampler for one probe | [`SingleSpaceSampler`] |
//! | §4.3, Eq 17–23 | joint-space sampler for probe sets | [`JointSpaceSampler`] |
//! | Theorem 1 | `µ(r)` and the Eq 7 error bound | [`mhbc_spd::DependencyProfile::mu`], [`optimal::eq7_limit`] |
//! | Theorem 2 | separator graphs have flat profiles | [`optimal::theorem2_report`], `mhbc_graph::generators::hub_separator` |
//! | Theorem 3 | exact betweenness-ratio identity | [`optimal::stationary_relative_from_profiles`], [`JointSpaceEstimate::ratio`] |
//! | Ineq 9, 14, 27 | non-asymptotic tails and sample-size planning | [`mhbc_mcmc::bounds`], [`planner`] |
//! | §5 | evaluation harness and datasets | `mhbc-bench` (`experiments` binary) |
//!
//! ## Reproduction soundness note
//!
//! Theorem 1's claim that Eq 7 approximates `BC(r)` does not hold in
//! general: the chain average converges to the stationary mean
//! [`optimal::eq7_limit`], which upper-bounds `BC(r)` and matches it only
//! for near-flat dependency profiles (the Theorem 2 regime the paper
//! emphasises). The ratio identity of Theorem 3 *is* exact. Both samplers
//! reproduce the paper's estimators faithfully; [`SingleSpaceEstimate`]
//! additionally reports an unbiased `bc_corrected`. See `optimal`'s module
//! docs and experiment F9.
//!
//! ```
//! use mhbc_core::{SingleSpaceConfig, SingleSpaceSampler};
//! use mhbc_graph::generators;
//!
//! // Bridge vertex of a barbell graph: the canonical high-BC probe.
//! let g = generators::barbell(8, 1);
//! let r = 8;
//! let est = SingleSpaceSampler::new(&g, r, SingleSpaceConfig::new(6000, 7))
//!     .unwrap()
//!     .run();
//! let exact = mhbc_spd::exact_betweenness_of(&g, r);
//! assert!((est.bc_corrected - exact).abs() < 0.05);
//! ```

pub mod checkpoint;
pub mod engine;
pub mod ensemble;
mod error;
pub mod extended;
mod joint;
pub mod optimal;
pub mod oracle;
pub mod pipeline;
pub mod planner;
pub mod schedule;
mod single;

pub use engine::{
    resume_joint, resume_single, AdaptiveReport, EngineConfig, EstimationEngine, StopReason,
};
pub use ensemble::{
    run_ensemble, run_ensemble_view, run_parallel_ensemble, EnsembleConfig, EnsembleEstimate,
};
pub use error::CoreError;
pub use extended::{extended_relative_sampled, ExtendedEstimate};
pub use joint::{
    JointDriver, JointSpaceConfig, JointSpaceEstimate, JointSpaceSampler, JointStepInfo,
};
pub use mhbc_mcmc::StoppingRule;
pub use pipeline::{run_joint, run_joint_view, run_single, run_single_view, PrefetchConfig};
pub use single::{
    SingleDriver, SingleSpaceConfig, SingleSpaceEstimate, SingleSpaceSampler, SingleStepInfo,
};
