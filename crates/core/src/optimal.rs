//! Exact ground-truth quantities: the optimal distribution (Eq 5), `µ(r)`,
//! exact relative betweenness (Eq 23, plus the footnote-2 extension), the
//! Theorem 2 balanced-separator analysis — **and the true limits of the
//! paper's estimators**.
//!
//! ## Soundness note (reproduction finding)
//!
//! The paper's Theorem 1 applies the MCMC Hoeffding bound of \[23\] with
//! `θ = (1/|V|) Σ_v f(v) = BC(r)` — a *uniform* average — but the chain's
//! stationary law is `P_r[v] ∝ δ_{v•}(r)` (Eq 5), so the time average of
//! Eq 7 converges to the *stationary* mean
//! `E_{P_r}[f] = Σ_v δ_{v•}(r)² / ((|V|−1) Σ_v δ_{v•}(r))`,
//! which by Cauchy–Schwarz **exceeds** `BC(r)` whenever the dependency
//! profile is non-constant. [`eq7_limit`] computes this true limit; the
//! bias `eq7_limit − BC(r)` is small exactly in the paper's Theorem 2
//! regime (near-flat profiles) and is quantified by experiment F9. The same
//! applies to the joint sampler's per-probe averages
//! ([`stationary_relative_from_profiles`] is their true limit), while the
//! *ratio* identity of Theorem 3 (Eq 22) is exact — detailed balance makes
//! the normalisations cancel. `SingleSpaceEstimate::bc_corrected` provides
//! an unbiased alternative (see `single.rs`).

use mhbc_graph::{algo, CsrGraph, Vertex};
use mhbc_spd::{dependency_profile_par, naive, DependencyProfile};

/// The true limit of the paper's Eq 7 estimator: the stationary mean
/// `E_{P_r}[f] = Σ_v δ_{v•}(r)² / ((n−1) Σ_v δ_{v•}(r))` (see the module
/// soundness note). Returns 0 when `BC(r) = 0` (the chain only ever sees
/// zero dependencies).
pub fn eq7_limit(profile: &DependencyProfile) -> f64 {
    let total = profile.total();
    if total <= 0.0 {
        return 0.0;
    }
    let n = profile.profile.len();
    let sq: f64 = profile.profile.iter().map(|d| d * d).sum();
    sq / ((n as f64 - 1.0) * total)
}

/// The true limit of the joint sampler's `M(j)`-average (Theorem 4's
/// estimator): the `P_{rj}`-weighted relative score
/// `Σ_v (δ_{v•}(rj)/Σδ(rj)) · min{1, δ_{v•}(ri)/δ_{v•}(rj)}`.
///
/// (Eq 23 as *defined* is the uniform average computed by
/// [`relative_from_profiles`]; the sampler converges to this weighted
/// variant instead — see the module soundness note.)
pub fn stationary_relative_from_profiles(pi: &DependencyProfile, pj: &DependencyProfile) -> f64 {
    let total_j = pj.total();
    if total_j <= 0.0 {
        return f64::NAN;
    }
    pi.profile
        .iter()
        .zip(&pj.profile)
        .map(|(&a, &b)| (b / total_j) * min_dependency_ratio(a, b))
        .sum()
}

/// Stationary-weighted relative matrix: `out[i][j]` is the true limit of
/// the joint sampler's estimate of `BC_{r_j}(r_i)`.
pub fn stationary_relative_matrix(
    g: &CsrGraph,
    probes: &[Vertex],
    threads: usize,
) -> Vec<Vec<f64>> {
    let profiles: Vec<DependencyProfile> =
        probes.iter().map(|&r| dependency_profile_par(g, r, threads)).collect();
    let k = probes.len();
    let mut out = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in 0..k {
            out[i][j] = stationary_relative_from_profiles(&profiles[i], &profiles[j]);
        }
    }
    out
}

/// `min{1, num/den}` with the zero conventions used throughout (DESIGN.md):
/// a zero denominator yields 1 (covers both `0/0` — "equal influence" — and
/// `positive/0`, where the un-clamped ratio is `+∞`). This keeps the
/// diagonal `BC_r(r) = 1` exact and makes Eq 21 hold identically.
#[inline]
pub fn min_dependency_ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        (num / den).min(1.0)
    } else {
        1.0
    }
}

/// Exact relative betweenness `BC_{rj}(ri)` (Eq 23):
/// `(1/|V|) Σ_v min{1, δ_{v•}(ri) / δ_{v•}(rj)}`.
///
/// Costs `2n` SPD passes (two dependency profiles, parallelised).
pub fn exact_relative_betweenness(g: &CsrGraph, ri: Vertex, rj: Vertex, threads: usize) -> f64 {
    let pi = dependency_profile_par(g, ri, threads);
    let pj = dependency_profile_par(g, rj, threads);
    relative_from_profiles(&pi, &pj)
}

/// Eq 23 evaluated from precomputed profiles (shared by the matrix helper).
pub fn relative_from_profiles(pi: &DependencyProfile, pj: &DependencyProfile) -> f64 {
    let n = pi.profile.len();
    assert_eq!(n, pj.profile.len(), "profiles from different graphs");
    let sum: f64 =
        pi.profile.iter().zip(&pj.profile).map(|(&a, &b)| min_dependency_ratio(a, b)).sum();
    sum / n as f64
}

/// Exact relative-betweenness matrix for a probe set: `out[i][j] =
/// BC_{r_j}(r_i)`. Costs `|R| · n` SPD passes.
pub fn exact_relative_matrix(g: &CsrGraph, probes: &[Vertex], threads: usize) -> Vec<Vec<f64>> {
    let profiles: Vec<DependencyProfile> =
        probes.iter().map(|&r| dependency_profile_par(g, r, threads)).collect();
    let k = probes.len();
    let mut out = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in 0..k {
            out[i][j] = relative_from_profiles(&profiles[i], &profiles[j]);
        }
    }
    out
}

/// The *extended* relative betweenness of the paper's footnote 2:
/// `(1/(n(n-1))) Σ_v Σ_{t≠v} min{1, δ_vt(ri) / δ_vt(rj)}`, where
/// `δ_vt(x) = σ_vt(x)/σ_vt` are pair dependencies.
///
/// Implemented from all-pairs counts (`O(n²)` memory, `O(n²)` time after
/// `n` BFS passes) — an exact reference for the extension, intended for
/// evaluation-scale graphs. Unweighted graphs only.
pub fn extended_relative_betweenness(g: &CsrGraph, ri: Vertex, rj: Vertex) -> f64 {
    assert!(!g.is_weighted(), "extended relative scores implemented for unweighted graphs");
    let n = g.num_vertices();
    let (dist, sigma) = naive::all_pairs_unweighted(g);
    let pair_dep = |v: usize, t: usize, x: Vertex| -> f64 {
        let x = x as usize;
        if x == v || x == t || dist[v][t] == u32::MAX {
            return 0.0;
        }
        if dist[v][x] != u32::MAX && dist[x][t] != u32::MAX && dist[v][x] + dist[x][t] == dist[v][t]
        {
            sigma[v][x] * sigma[x][t] / sigma[v][t]
        } else {
            0.0
        }
    };
    let mut sum = 0.0;
    for v in 0..n {
        for t in 0..n {
            if t == v {
                continue;
            }
            sum += min_dependency_ratio(pair_dep(v, t, ri), pair_dep(v, t, rj));
        }
    }
    sum / (n * (n - 1)) as f64
}

/// Theorem 2 analysis of a probe vertex `r`.
#[derive(Debug, Clone)]
pub struct Theorem2Report {
    /// Sizes of the components of `G \ r`, descending.
    pub component_sizes: Vec<usize>,
    /// Whether `r` is a vertex separator (`G \ r` has ≥ 2 components).
    pub is_separator: bool,
    /// Whether ≥ 2 components hold at least `balance_threshold · (n-1)`
    /// vertices (the paper's "balanced" condition, Θ(n) made concrete).
    pub is_balanced: bool,
    /// The constant `K = min_i V_i / max_i V_i` of the proof (with
    /// `V_i = (n-1) − |C_i|`); `None` when `r` is not a separator.
    pub k_constant: Option<f64>,
    /// Theorem 2's bound `µ(r) ≤ 1 + 1/K`; `None` when not a separator.
    pub mu_bound: Option<f64>,
}

/// Evaluates the Theorem 2 hypothesis for `r` using `balance_threshold` as
/// the concrete Θ(n) fraction (e.g. 0.1).
pub fn theorem2_report(g: &CsrGraph, r: Vertex, balance_threshold: f64) -> Theorem2Report {
    assert!((0.0..=1.0).contains(&balance_threshold));
    let sizes = algo::components_after_removal(g, r);
    let n_rest = g.num_vertices().saturating_sub(1);
    let is_separator = sizes.len() >= 2;
    let is_balanced =
        sizes.iter().filter(|&&s| (s as f64) >= balance_threshold * n_rest as f64).count() >= 2;
    let (k_constant, mu_bound) = if is_separator {
        // V_i = total vertices outside component i.
        let vs: Vec<f64> = sizes.iter().map(|&c| (n_rest - c) as f64).collect();
        let vmax = vs.iter().cloned().fold(f64::MIN, f64::max);
        let vmin = vs.iter().cloned().fold(f64::MAX, f64::min);
        if vmax > 0.0 && vmin > 0.0 {
            let k = vmin / vmax;
            (Some(k), Some(1.0 + 1.0 / k))
        } else {
            (None, None)
        }
    } else {
        (None, None)
    };
    Theorem2Report { component_sizes: sizes, is_separator, is_balanced, k_constant, mu_bound }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn eq7_limit_exceeds_bc_for_skewed_profiles() {
        // Cauchy–Schwarz: the Eq 7 limit >= BC(r), strict for non-flat
        // profiles. A lollipop path vertex has a very skewed profile.
        let g = generators::lollipop(8, 4);
        let p = mhbc_spd::dependency_profile_par(&g, 8, 1);
        let (limit, bc) = (eq7_limit(&p), p.betweenness());
        assert!(limit > bc, "eq7 limit {limit} must exceed BC {bc}");
    }

    #[test]
    fn eq7_limit_close_to_bc_in_theorem2_regime() {
        // Balanced separator: the profile is near-flat, so the bias is tiny
        // — the regime where the paper's estimator behaves.
        let g = generators::barbell(15, 1);
        let p = mhbc_spd::dependency_profile_par(&g, 15, 1);
        let (limit, bc) = (eq7_limit(&p), p.betweenness());
        assert!(limit >= bc - 1e-12);
        assert!((limit - bc) / bc < 0.08, "relative bias should be small: limit {limit}, bc {bc}");
    }

    #[test]
    fn eq7_limit_of_star_centre_matches_hand_computation() {
        // Star n = 30: delta_v(0) = 28 for the 29 leaves. Limit = 28/29,
        // BC = 28/30.
        let g = generators::star(30);
        let p = mhbc_spd::dependency_profile_par(&g, 0, 1);
        assert!((eq7_limit(&p) - 28.0 / 29.0).abs() < 1e-12);
        assert!((p.betweenness() - 28.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn eq7_limit_zero_for_zero_bc() {
        let g = generators::star(6);
        let p = mhbc_spd::dependency_profile_par(&g, 2, 1);
        assert_eq!(eq7_limit(&p), 0.0);
    }

    #[test]
    fn stationary_relative_ratio_identity() {
        // Theorem 3 is exact for the *stationary* weighted scores:
        // w(i|j) / w(j|i) = (sum min)/(sum delta_j) * (sum delta_i)/(sum min)
        // = BC(ri)/BC(rj).
        let g = generators::barbell(6, 3);
        let (ri, rj) = (6u32, 7u32);
        let pi = mhbc_spd::dependency_profile_par(&g, ri, 1);
        let pj = mhbc_spd::dependency_profile_par(&g, rj, 1);
        let wij = stationary_relative_from_profiles(&pi, &pj);
        let wji = stationary_relative_from_profiles(&pj, &pi);
        let truth = pi.betweenness() / pj.betweenness();
        assert!(((wij / wji) - truth).abs() < 1e-12, "ratio {} vs {truth}", wij / wji);
    }

    #[test]
    fn stationary_matrix_diagonal_is_one() {
        let g = generators::barbell(4, 2);
        let m = stationary_relative_matrix(&g, &[4, 5], 1);
        assert!((m[0][0] - 1.0).abs() < 1e-12);
        assert!((m[1][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_ratio_conventions() {
        assert_eq!(min_dependency_ratio(2.0, 4.0), 0.5);
        assert_eq!(min_dependency_ratio(4.0, 2.0), 1.0);
        assert_eq!(min_dependency_ratio(0.0, 2.0), 0.0);
        assert_eq!(min_dependency_ratio(2.0, 0.0), 1.0);
        assert_eq!(min_dependency_ratio(0.0, 0.0), 1.0);
    }

    #[test]
    fn relative_diagonal_is_one() {
        let g = generators::barbell(4, 2);
        for r in [0u32, 4, 5] {
            let v = exact_relative_betweenness(&g, r, r, 1);
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn relative_orders_by_dominance() {
        // On a path, the centre dominates an off-centre vertex: every source
        // depends on the centre at least as much in min-ratio terms.
        let g = generators::path(9);
        let centre = 4u32;
        let off = 6u32;
        let centre_vs_off = exact_relative_betweenness(&g, centre, off, 1);
        let off_vs_centre = exact_relative_betweenness(&g, off, centre, 1);
        assert!(centre_vs_off > off_vs_centre, "{centre_vs_off} should exceed {off_vs_centre}");
    }

    #[test]
    fn matrix_agrees_with_pairwise() {
        let g = generators::barbell(4, 2);
        let probes = [4u32, 5, 0];
        let m = exact_relative_matrix(&g, &probes, 2);
        for (i, &ri) in probes.iter().enumerate() {
            for (j, &rj) in probes.iter().enumerate() {
                let direct = exact_relative_betweenness(&g, ri, rj, 1);
                assert!((m[i][j] - direct).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn extended_relative_matches_simple_on_disjoint_influence() {
        // Sanity: diagonal is 1 under both definitions.
        let g = generators::barbell(3, 1);
        let v = extended_relative_betweenness(&g, 3, 3);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extended_relative_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::barabasi_albert(25, 2, &mut rng);
        let v = extended_relative_betweenness(&g, 0, 1);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn theorem2_on_barbell_bridge() {
        // barbell(10, 1): bridge vertex 10 splits into two components of 10.
        let g = generators::barbell(10, 1);
        let rep = theorem2_report(&g, 10, 0.25);
        assert!(rep.is_separator);
        assert!(rep.is_balanced);
        assert_eq!(rep.component_sizes, vec![10, 10]);
        let k = rep.k_constant.unwrap();
        assert!((k - 1.0).abs() < 1e-12, "equal halves give K = 1");
        assert!((rep.mu_bound.unwrap() - 2.0).abs() < 1e-12);
        // The bound must dominate the true mu(r).
        let mu = mhbc_spd::dependency_profile_par(&g, 10, 2).mu().unwrap();
        assert!(mu <= rep.mu_bound.unwrap() + 1e-9, "mu {mu} exceeds bound");
    }

    #[test]
    fn theorem2_on_non_separator() {
        let g = generators::complete(6);
        let rep = theorem2_report(&g, 0, 0.1);
        assert!(!rep.is_separator);
        assert!(!rep.is_balanced);
        assert!(rep.mu_bound.is_none());
    }

    #[test]
    fn theorem2_unbalanced_separator() {
        // lollipop(8, 3): removing the clique-adjacent path vertex 8 leaves
        // components of sizes 8 and 2 — a separator, but unbalanced at 30%.
        let g = generators::lollipop(8, 3);
        let rep = theorem2_report(&g, 8, 0.3);
        assert!(rep.is_separator);
        assert!(!rep.is_balanced);
        assert_eq!(rep.component_sizes, vec![8, 2]);
    }

    #[test]
    fn theorem2_bound_holds_on_separator_family() {
        let mut rng = SmallRng::seed_from_u64(17);
        let hs = generators::hub_separator(3, 20, 0.15, 2, &mut rng);
        let rep = theorem2_report(&hs.graph, hs.hub, 0.2);
        assert!(rep.is_balanced);
        let mu = mhbc_spd::dependency_profile_par(&hs.graph, hs.hub, 2).mu().unwrap();
        assert!(
            mu <= rep.mu_bound.unwrap() + 1e-9,
            "mu {mu} must respect the Theorem 2 bound {}",
            rep.mu_bound.unwrap()
        );
    }
}
