//! The segmented estimation engine: one control loop for every sampler.
//!
//! Before this module, each sampler (`single`, `joint`, `ensemble`, and the
//! prefetch pipeline) ran a fixed iteration count chosen blind by the
//! a-priori planner, and the chain-quality diagnostics were offline helpers
//! nothing consumed. The [`EstimationEngine`] inverts that: execution
//! proceeds in **segments** (default 1024 iterations); after each segment
//! the observation series is fed into a streaming
//! [`DiagnosticsMonitor`], and a [`StoppingRule`] decides
//! continue/stop — so a `TargetStderr` or `TargetEss` run stops as soon as
//! the chain's *observed* variance supports the target, typically far
//! before the planner's worst-case `µ(r)` budget (experiment F3c measures
//! the overshoot; `BENCH_adaptive.json` tracks the adaptive savings).
//!
//! ## Bit-identity contract
//!
//! With [`StoppingRule::FixedIterations`] the engine is a pure refactor of
//! the old run-to-completion loops: the drivers step the *same* chains with
//! the *same* RNG streams and absorb into the *same* accumulators in the
//! same order, and segmentation only interleaves diagnostics bookkeeping
//! *between* iterations — every estimate is bit-identical to the
//! pre-engine code, at every thread count and kernel mode (pinned by the
//! `prefetch_determinism` suite). Adaptive rules are themselves
//! deterministic: stopping decisions are a pure function of the observation
//! series, which is itself a pure function of the seed.
//!
//! ## Checkpoint / resume
//!
//! At any segment boundary the engine's full state — chain RNG streams,
//! estimator accumulators, diagnostics monitor, segment counter, and the
//! memoised dependency rows — serialises to a versioned checkpoint (see
//! [`crate::checkpoint`]). [`resume_single`] / [`resume_joint`] /
//! [`crate::ensemble::resume_ensemble`] rebuild the engine against a fresh
//! view; the resumed
//! run is bit-identical to an uninterrupted one, including `spd_passes`.

use crate::checkpoint::{
    self, read_header, validate_view, write_header, CheckpointKind, Reader, Writer,
};
use crate::CoreError;
use mhbc_mcmc::{DiagnosticsMonitor, StoppingRule};
use mhbc_spd::SpdView;

/// Engine knobs: segment length and stopping rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Iterations per segment — the granularity of diagnostics updates,
    /// stopping decisions, and checkpoints. Smaller segments react faster
    /// but pay the (tiny) per-segment diagnostics cost more often.
    pub segment: u64,
    /// When to stop (the budget is always an upper bound).
    pub stopping: StoppingRule,
}

impl EngineConfig {
    /// Default segment length.
    pub const DEFAULT_SEGMENT: u64 = 1024;

    /// Fixed-budget execution (the pre-engine behaviour, bit for bit).
    pub fn fixed() -> Self {
        EngineConfig { segment: Self::DEFAULT_SEGMENT, stopping: StoppingRule::FixedIterations }
    }

    /// Adaptive execution under `rule`.
    pub fn adaptive(rule: StoppingRule) -> Self {
        EngineConfig { segment: Self::DEFAULT_SEGMENT, stopping: rule }
    }

    /// Overrides the segment length (clamped to ≥ 1).
    pub fn with_segment(mut self, segment: u64) -> Self {
        self.segment = segment.max(1);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::fixed()
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration budget ran out (always the reason under
    /// [`StoppingRule::FixedIterations`]).
    BudgetExhausted,
    /// The adaptive stopping rule was satisfied before the budget.
    TargetReached,
}

/// What the engine observed: the "plan vs. actual" record reported next to
/// every adaptive estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveReport {
    /// Iterations actually run.
    pub iterations: u64,
    /// Iterations already done when this engine started (0 for a fresh
    /// run; the checkpoint's position for a resumed one).
    pub resumed_from: u64,
    /// The iteration budget (the fixed plan the adaptive rule undercuts).
    pub budget: u64,
    /// Segments executed (this run only; a resumed run continues the count).
    pub segments: u64,
    /// Why the run stopped.
    pub reason: StopReason,
    /// The stopping rule in force.
    pub stopping: StoppingRule,
    /// Batch-means standard error of the *estimate* at stop (`NaN` when
    /// fewer than two batches completed).
    pub stderr: f64,
    /// Online effective sample size of the observation series.
    pub ess: f64,
    /// Integrated autocorrelation time `n / ESS`.
    pub tau: f64,
    /// Geweke drift score over the batch means (`NaN` when undefined).
    pub geweke_z: f64,
    /// Plug-in estimate of the paper's concentration constant `µ(r)` from
    /// the observed proposal stream (single-space runs only; see
    /// [`crate::planner::refit_plan`]).
    pub observed_mu: Option<f64>,
}

/// A sampler the engine can drive in segments.
///
/// Implementations wrap a concrete sampler; `run_segment` advances it and
/// appends the chain's observation series (the per-step dependency of the
/// occupied state — the series experiment F2 diagnoses) into `out`. The
/// engine feeds `out` to the diagnostics monitor *between* segments so the
/// per-iteration hot loop carries nothing beyond a buffer push.
pub trait EngineDriver {
    /// The finished-estimate type.
    type Output;

    /// Pushes observations that precede the first iteration (the counted
    /// initial state, for a fresh sampler). Not called on resume — the
    /// restored monitor already absorbed them.
    fn prime(&mut self, _out: &mut Vec<f64>) {}

    /// Advances exactly `iters` iterations, appending observations.
    fn run_segment(&mut self, iters: u64, out: &mut Vec<f64>);

    /// Iterations done so far (including before a resume).
    fn iterations(&self) -> u64;

    /// Divisor mapping the observation series' standard error to the
    /// estimate's standard error (the Eq 7 estimator divides the dependency
    /// series by `n − 1`).
    fn scale(&self) -> f64;

    /// Plug-in `µ̂(r)` from the observed proposal stream, when the driver
    /// tracks one.
    fn observed_mu(&self) -> Option<f64> {
        None
    }

    /// Finalises into the public estimate.
    fn finish(self) -> Self::Output;
}

/// Drivers whose full state can round-trip through a checkpoint.
pub trait CheckpointDriver: EngineDriver {
    /// The checkpoint kind tag this driver writes.
    fn kind(&self) -> CheckpointKind;

    /// The evaluation view (for the checkpoint header).
    fn view(&self) -> SpdView<'_>;

    /// Serialises the driver's complete state.
    fn save(&self, w: &mut Writer);
}

/// The segmented estimation engine; see the module docs.
pub struct EstimationEngine<D: EngineDriver> {
    driver: D,
    monitor: DiagnosticsMonitor,
    config: EngineConfig,
    budget: u64,
    segments: u64,
    started: u64,
    buf: Vec<f64>,
}

impl<D: EngineDriver> EstimationEngine<D> {
    /// Wraps `driver` with an iteration `budget` (the upper bound every
    /// stopping rule respects). The driver's pre-first-iteration
    /// observations are absorbed immediately.
    pub fn new(mut driver: D, budget: u64, config: EngineConfig) -> Self {
        let mut monitor = DiagnosticsMonitor::new();
        let mut buf = Vec::with_capacity(config.segment.min(1 << 16) as usize + 1);
        driver.prime(&mut buf);
        monitor.absorb(&buf);
        buf.clear();
        let started = driver.iterations();
        EstimationEngine { driver, monitor, config, budget, segments: 0, started, buf }
    }

    /// Rebuilds an engine mid-run (resume path): the monitor and segment
    /// counter continue from their checkpointed state.
    pub(crate) fn with_state(
        driver: D,
        budget: u64,
        config: EngineConfig,
        monitor: DiagnosticsMonitor,
        segments: u64,
    ) -> Self {
        let buf = Vec::with_capacity(config.segment.min(1 << 16) as usize + 1);
        let started = driver.iterations();
        EstimationEngine { driver, monitor, config, budget, segments, started, buf }
    }

    /// The streaming diagnostics over the observation series so far.
    pub fn monitor(&self) -> &DiagnosticsMonitor {
        &self.monitor
    }

    /// Segments executed so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// The iteration budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Iterations done so far.
    pub fn iterations(&self) -> u64 {
        self.driver.iterations()
    }

    /// Read access to the wrapped driver.
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Standard error of the estimate at the current point (`NaN` until
    /// two batches of observations completed).
    pub fn estimate_stderr(&self) -> f64 {
        self.monitor.batch_stderr() / self.driver.scale()
    }

    /// Runs one segment (clamped to the remaining budget) and decides:
    /// `None` to continue, `Some(reason)` when the run is over. Returns
    /// `Some(BudgetExhausted)` without stepping when the budget is already
    /// spent.
    pub fn step_segment(&mut self) -> Option<StopReason> {
        let done = self.driver.iterations();
        if done >= self.budget {
            return Some(StopReason::BudgetExhausted);
        }
        let seg = self.config.segment.min(self.budget - done);
        self.buf.clear();
        self.driver.run_segment(seg, &mut self.buf);
        self.monitor.absorb(&self.buf);
        self.segments += 1;
        if self.config.stopping.satisfied(&self.monitor, self.driver.scale()) {
            return Some(StopReason::TargetReached);
        }
        if self.driver.iterations() >= self.budget {
            return Some(StopReason::BudgetExhausted);
        }
        None
    }

    /// Runs to completion.
    pub fn run(self) -> (D::Output, AdaptiveReport) {
        // Infallible observer; unwrap is safe.
        match self.run_with(|_| Ok::<(), std::convert::Infallible>(())) {
            Ok(out) => out,
            Err(e) => match e {},
        }
    }

    /// Runs to completion, calling `after_segment` at every segment
    /// boundary (the CLI writes checkpoints there). An observer error
    /// aborts the run.
    pub fn run_with<E>(
        mut self,
        mut after_segment: impl FnMut(&Self) -> Result<(), E>,
    ) -> Result<(D::Output, AdaptiveReport), E> {
        let reason = loop {
            match self.step_segment() {
                Some(reason) => break reason,
                None => after_segment(&self)?,
            }
        };
        let report = self.report(reason);
        Ok((self.driver.finish(), report))
    }

    /// Finalises without running further segments — the probe scheduler
    /// cuts engines off when the *shared* budget runs out, before their own
    /// budget or target does.
    pub fn finalize(self, reason: StopReason) -> (D::Output, AdaptiveReport) {
        let report = self.report(reason);
        (self.driver.finish(), report)
    }

    fn report(&self, reason: StopReason) -> AdaptiveReport {
        AdaptiveReport {
            iterations: self.driver.iterations(),
            resumed_from: self.started,
            budget: self.budget,
            segments: self.segments,
            reason,
            stopping: self.config.stopping,
            stderr: self.estimate_stderr(),
            ess: self.monitor.ess(),
            tau: self.monitor.tau(),
            geweke_z: self.monitor.geweke_z(),
            observed_mu: self.driver.observed_mu(),
        }
    }
}

impl<D: CheckpointDriver> EstimationEngine<D> {
    /// Serialises the engine's complete state (valid at any segment
    /// boundary) into a versioned checkpoint file image.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new();
        write_header(&mut w, self.driver.kind(), &self.driver.view());
        w.u64(self.budget);
        w.u64(self.config.segment);
        write_stopping(&mut w, self.config.stopping);
        w.u64(self.segments);
        let mut words = Vec::new();
        self.monitor.encode(&mut words);
        w.u64(words.len() as u64);
        for x in words {
            w.u64(x);
        }
        self.driver.save(&mut w);
        w.finish()
    }
}

pub(crate) fn write_stopping(w: &mut Writer, rule: StoppingRule) {
    match rule {
        StoppingRule::FixedIterations => w.u8(0),
        StoppingRule::TargetStderr { epsilon, delta } => {
            w.u8(1);
            w.f64(epsilon);
            w.f64(delta);
        }
        StoppingRule::TargetEss { target } => {
            w.u8(2);
            w.f64(target);
        }
    }
}

pub(crate) fn read_stopping(r: &mut Reader<'_>) -> Result<StoppingRule, CoreError> {
    match r.u8()? {
        0 => Ok(StoppingRule::FixedIterations),
        1 => Ok(StoppingRule::TargetStderr { epsilon: r.f64()?, delta: r.f64()? }),
        2 => Ok(StoppingRule::TargetEss { target: r.f64()? }),
        other => Err(checkpoint::corrupt(format!("unknown stopping rule {other}"))),
    }
}

/// Engine-level state decoded from a checkpoint payload (before the
/// driver's own payload).
pub(crate) struct EngineState {
    pub(crate) budget: u64,
    pub(crate) config: EngineConfig,
    pub(crate) segments: u64,
    pub(crate) monitor: DiagnosticsMonitor,
}

pub(crate) fn read_engine_state(r: &mut Reader<'_>) -> Result<EngineState, CoreError> {
    let budget = r.u64()?;
    let segment = r.u64()?;
    let stopping = read_stopping(r)?;
    let segments = r.u64()?;
    let n_words = r.u64()? as usize;
    if n_words > r.remaining() / 8 {
        return Err(checkpoint::corrupt("monitor block longer than the checkpoint"));
    }
    let words: Vec<u64> = (0..n_words).map(|_| r.u64()).collect::<Result<_, _>>()?;
    let (monitor, used) = DiagnosticsMonitor::decode(&words)
        .ok_or_else(|| checkpoint::corrupt("bad monitor block"))?;
    if used != words.len() {
        return Err(checkpoint::corrupt("trailing monitor words"));
    }
    Ok(EngineState {
        budget,
        config: EngineConfig { segment: segment.max(1), stopping },
        segments,
        monitor,
    })
}

/// Opens a checkpoint against `view`, validating header and graph/preprocess
/// identity and checking the kind tag; returns the positioned reader and
/// the engine-level state.
pub(crate) fn open_checkpoint<'a>(
    view: &SpdView<'_>,
    bytes: &'a [u8],
    expect: CheckpointKind,
) -> Result<(EngineState, Reader<'a>), CoreError> {
    let (info, mut r) = read_header(bytes)?;
    if info.kind != expect {
        return Err(checkpoint::corrupt(format!(
            "checkpoint holds a {:?} run, expected {:?}",
            info.kind, expect
        )));
    }
    validate_view(&info, view)?;
    let state = read_engine_state(&mut r)?;
    Ok((state, r))
}

/// Resumes a single-space run from a checkpoint written by
/// [`EstimationEngine::checkpoint`]. The view must hold the same graph at
/// the same preprocess level (any kernel mode); the resumed engine
/// continues bit-identically to an uninterrupted run.
pub fn resume_single<'g>(
    view: SpdView<'g>,
    bytes: &[u8],
) -> Result<EstimationEngine<crate::single::SingleDriver<'g>>, CoreError> {
    let (state, mut r) = open_checkpoint(&view, bytes, CheckpointKind::Single)?;
    let driver = crate::single::SingleDriver::restore_from(view, &mut r)?;
    Ok(EstimationEngine::with_state(
        driver,
        state.budget,
        state.config,
        state.monitor,
        state.segments,
    ))
}

/// Resumes a joint-space run from a checkpoint (see [`resume_single`]).
pub fn resume_joint<'g>(
    view: SpdView<'g>,
    bytes: &[u8],
) -> Result<EstimationEngine<crate::joint::JointDriver<'g>>, CoreError> {
    let (state, mut r) = open_checkpoint(&view, bytes, CheckpointKind::Joint)?;
    let driver = crate::joint::JointDriver::restore_from(view, &mut r)?;
    Ok(EstimationEngine::with_state(
        driver,
        state.budget,
        state.config,
        state.monitor,
        state.segments,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SingleSpaceConfig, SingleSpaceSampler};
    use mhbc_graph::generators;
    use mhbc_mcmc::StoppingRule;

    fn fingerprint(e: &crate::SingleSpaceEstimate) -> (u64, u64, u64, u64, u64) {
        (
            e.bc.to_bits(),
            e.bc_corrected.to_bits(),
            e.acceptance_rate.to_bits(),
            e.spd_passes,
            e.iterations,
        )
    }

    #[test]
    fn fixed_engine_reproduces_plain_run_bitwise() {
        let g = generators::barbell(6, 2);
        let config = SingleSpaceConfig::new(2_000, 9).with_trace();
        let plain = SingleSpaceSampler::new(&g, 6, config.clone()).unwrap().run();
        for segment in [1u64, 7, 256, 100_000] {
            let (est, report) = SingleSpaceSampler::new(&g, 6, config.clone())
                .unwrap()
                .into_engine(EngineConfig::fixed().with_segment(segment))
                .run();
            assert_eq!(fingerprint(&plain), fingerprint(&est), "segment {segment}");
            assert_eq!(plain.trace, est.trace);
            assert_eq!(report.reason, StopReason::BudgetExhausted);
            assert_eq!(report.budget, 2_000);
            assert_eq!(report.iterations, 2_000);
        }
    }

    #[test]
    fn adaptive_target_stderr_stops_early_and_reports() {
        let g = generators::lollipop(8, 4);
        let config = SingleSpaceConfig::new(100_000, 5);
        let rule = StoppingRule::TargetStderr { epsilon: 0.1, delta: 0.05 };
        let (est, report) = SingleSpaceSampler::new(&g, 9, config)
            .unwrap()
            .into_engine(EngineConfig::adaptive(rule))
            .run();
        assert_eq!(report.reason, StopReason::TargetReached);
        assert!(report.iterations < 100_000, "ran {}", report.iterations);
        assert_eq!(est.iterations, report.iterations);
        assert!(report.stderr.is_finite() && report.stderr > 0.0);
        // The guaranteed half-width holds numerically at the stop point.
        assert!(1.96 * report.stderr <= 0.1 + 1e-12);
        assert!(report.ess >= 1.0);
        let mu = report.observed_mu.expect("single runs track the proposal stream");
        assert!(mu >= 1.0, "observed mu {mu} is a max/mean ratio");
    }

    #[test]
    fn zero_betweenness_probe_stops_at_first_boundary() {
        // A star leaf has an identically-zero dependency series: the batch
        // stderr is exactly 0 after the first segment, so any target stops.
        let g = generators::star(10);
        let rule = StoppingRule::TargetStderr { epsilon: 1e-9, delta: 0.01 };
        let (est, report) = SingleSpaceSampler::new(&g, 3, SingleSpaceConfig::new(50_000, 3))
            .unwrap()
            .into_engine(EngineConfig::adaptive(rule).with_segment(128))
            .run();
        assert_eq!(report.reason, StopReason::TargetReached);
        assert_eq!(report.iterations, 128);
        assert_eq!(est.bc, 0.0);
    }

    #[test]
    fn target_ess_rule_stops() {
        let g = generators::lollipop(8, 4);
        let (_, report) = SingleSpaceSampler::new(&g, 9, SingleSpaceConfig::new(200_000, 7))
            .unwrap()
            .into_engine(EngineConfig::adaptive(StoppingRule::TargetEss { target: 500.0 }))
            .run();
        assert_eq!(report.reason, StopReason::TargetReached);
        assert!(report.ess >= 500.0, "stopped with ESS {}", report.ess);
        assert!(report.iterations < 200_000);
    }

    #[test]
    fn single_checkpoint_resume_is_bit_identical() {
        let g = generators::lollipop(8, 4);
        let view = mhbc_spd::SpdView::direct(&g);
        let config = SingleSpaceConfig::new(3_000, 21).with_trace();
        let uninterrupted = SingleSpaceSampler::for_view(view, 9, config.clone()).unwrap().run();

        // Run the first 4 segments of 256, checkpoint, drop everything.
        let mut engine = SingleSpaceSampler::for_view(view, 9, config.clone())
            .unwrap()
            .into_engine(EngineConfig::fixed().with_segment(256));
        for _ in 0..4 {
            assert!(engine.step_segment().is_none());
        }
        let bytes = engine.checkpoint();
        drop(engine);

        // Resume under a different kernel mode: rows are mode-invariant.
        let hybrid = view.with_kernel(mhbc_spd::KernelMode::Hybrid);
        let resumed_engine = resume_single(hybrid, &bytes).expect("resumable");
        assert_eq!(resumed_engine.iterations(), 4 * 256);
        assert_eq!(resumed_engine.segments(), 4);
        let (resumed, report) = resumed_engine.run();
        assert_eq!(fingerprint(&uninterrupted), fingerprint(&resumed));
        assert_eq!(uninterrupted.trace, resumed.trace);
        assert_eq!(uninterrupted.density_series, resumed.density_series);
        assert_eq!(report.reason, StopReason::BudgetExhausted);
    }

    #[test]
    fn adaptive_checkpoint_resumes_to_the_same_stopping_point() {
        let g = generators::lollipop(8, 4);
        let view = mhbc_spd::SpdView::direct(&g);
        let config = SingleSpaceConfig::new(100_000, 5);
        // Tight enough that several segments are needed before the stop.
        let engine_cfg =
            EngineConfig::adaptive(StoppingRule::TargetStderr { epsilon: 0.004, delta: 0.05 })
                .with_segment(512);
        let (full_est, full_report) = SingleSpaceSampler::for_view(view, 9, config.clone())
            .unwrap()
            .into_engine(engine_cfg)
            .run();

        let mut engine =
            SingleSpaceSampler::for_view(view, 9, config).unwrap().into_engine(engine_cfg);
        assert!(engine.step_segment().is_none(), "must not stop after one segment");
        let bytes = engine.checkpoint();
        drop(engine);
        let (resumed_est, resumed_report) = resume_single(view, &bytes).expect("resumable").run();
        assert_eq!(full_report.iterations, resumed_report.iterations);
        assert_eq!(full_report.reason, resumed_report.reason);
        assert_eq!(full_est.bc.to_bits(), resumed_est.bc.to_bits());
        assert_eq!(full_est.spd_passes, resumed_est.spd_passes);
        assert_eq!(full_report.stderr.to_bits(), resumed_report.stderr.to_bits());
    }

    #[test]
    fn joint_checkpoint_resume_is_bit_identical() {
        let g = generators::barbell(5, 3);
        let view = mhbc_spd::SpdView::direct(&g);
        let probes = [5u32, 6, 7];
        let config = crate::JointSpaceConfig::new(2_000, 41).with_trace_pair(0, 1);
        let uninterrupted =
            crate::JointSpaceSampler::for_view(view, &probes, config.clone()).unwrap().run();

        let mut engine = crate::JointSpaceSampler::for_view(view, &probes, config)
            .unwrap()
            .into_engine(EngineConfig::fixed().with_segment(300));
        for _ in 0..3 {
            assert!(engine.step_segment().is_none());
        }
        let bytes = engine.checkpoint();
        drop(engine);
        let (resumed, _) = resume_joint(view, &bytes).expect("resumable").run();
        assert_eq!(uninterrupted.counts, resumed.counts);
        assert_eq!(uninterrupted.spd_passes, resumed.spd_passes);
        assert_eq!(uninterrupted.iterations, resumed.iterations);
        assert_eq!(uninterrupted.acceptance_rate.to_bits(), resumed.acceptance_rate.to_bits());
        for i in 0..probes.len() {
            for j in 0..probes.len() {
                assert_eq!(
                    uninterrupted.relative[i][j].to_bits(),
                    resumed.relative[i][j].to_bits(),
                    "({i},{j})"
                );
            }
        }
        assert_eq!(uninterrupted.trace, resumed.trace);
    }

    #[test]
    fn preprocessed_checkpoint_resumes_bit_identically() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(8, 4);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let view = mhbc_spd::SpdView::preprocessed(&g, &red);
        let config = SingleSpaceConfig::new(2_000, 13);
        let uninterrupted = SingleSpaceSampler::for_view(view, 0, config.clone()).unwrap().run();

        let mut engine = SingleSpaceSampler::for_view(view, 0, config)
            .unwrap()
            .into_engine(EngineConfig::fixed().with_segment(300));
        for _ in 0..3 {
            assert!(engine.step_segment().is_none());
        }
        let bytes = engine.checkpoint();
        drop(engine);

        // Resuming against the direct view must be refused (row keys live
        // in the reduction's key space)…
        let err = match resume_single(mhbc_spd::SpdView::direct(&g), &bytes) {
            Err(e) => e,
            Ok(_) => panic!("direct view must be rejected"),
        };
        assert!(err.to_string().contains("preprocess mismatch"), "{err}");

        // …and against a freshly rebuilt reduction it is bit-identical.
        let red2 = reduce(&g, ReduceLevel::Full).unwrap();
        let view2 = mhbc_spd::SpdView::preprocessed(&g, &red2);
        let (resumed, _) = resume_single(view2, &bytes).expect("resumable").run();
        assert_eq!(fingerprint(&uninterrupted), fingerprint(&resumed));
    }

    #[test]
    fn resume_rejects_wrong_kind_and_wrong_graph() {
        let g = generators::lollipop(6, 3);
        let view = mhbc_spd::SpdView::direct(&g);
        let mut engine = SingleSpaceSampler::for_view(view, 0, SingleSpaceConfig::new(1_000, 1))
            .unwrap()
            .into_engine(EngineConfig::fixed().with_segment(100));
        let _ = engine.step_segment();
        let bytes = engine.checkpoint();
        assert!(matches!(resume_joint(view, &bytes), Err(CoreError::Checkpoint { .. })));
        let other = generators::barbell(6, 2);
        assert!(matches!(
            resume_single(mhbc_spd::SpdView::direct(&other), &bytes),
            Err(CoreError::Checkpoint { .. })
        ));
    }

    #[test]
    fn run_with_observer_sees_every_boundary_and_can_abort() {
        let g = generators::barbell(5, 1);
        let engine = SingleSpaceSampler::new(&g, 5, SingleSpaceConfig::new(1_000, 3))
            .unwrap()
            .into_engine(EngineConfig::fixed().with_segment(100));
        let mut boundaries = 0u64;
        let (_, report) = engine
            .run_with(|e| {
                boundaries += 1;
                assert_eq!(e.iterations(), boundaries * 100);
                Ok::<(), std::convert::Infallible>(())
            })
            .unwrap();
        // 10 segments; the final one ends the run, so 9 mid-run boundaries.
        assert_eq!(boundaries, 9);
        assert_eq!(report.segments, 10);

        let engine = SingleSpaceSampler::new(&g, 5, SingleSpaceConfig::new(1_000, 3))
            .unwrap()
            .into_engine(EngineConfig::fixed().with_segment(100));
        let err = engine.run_with(|_| Err("stop")).unwrap_err();
        assert_eq!(err, "stop");
    }
}
