//! Multi-probe budget scheduling: many single-space estimations sharing one
//! iteration budget, allocated where the uncertainty is.
//!
//! The `rank` workload asks for estimates of many probes at once. A fixed
//! split gives every probe `budget / k` iterations — wasteful, because
//! confidence shrinks at very different rates across probes (high-`µ(r)`
//! probes mix slowly; zero-betweenness probes converge instantly). The
//! probe scheduler ([`run_probe_schedule`]) instead runs the probes'
//! [`EstimationEngine`]s
//! **round-robin by segment**: one warm-up sweep gives every probe a first
//! confidence interval, after which each segment of the remaining budget
//! goes to the probe with the **widest interval** among those that have not
//! yet reached their target. Probes that hit the per-probe
//! [`StoppingRule`] drop out of the rotation, so their share of the budget
//! flows to the hard cases.
//!
//! The schedule is deterministic: interval widths are pure functions of the
//! per-probe seeds, and ties break toward the lowest probe index.

use crate::engine::{AdaptiveReport, EngineConfig, EstimationEngine, StopReason};
use crate::single::{SingleDriver, SingleSpaceConfig, SingleSpaceEstimate, SingleSpaceSampler};
use crate::CoreError;
use mhbc_graph::Vertex;
use mhbc_mcmc::monitor::normal_upper_quantile;
use mhbc_mcmc::StoppingRule;
use mhbc_spd::SpdView;

/// Configuration for [`run_probe_schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleConfig {
    /// Total iteration budget shared by all probes (respected up to one
    /// segment of overshoot — the scheduler never splits a segment).
    pub budget: u64,
    /// Scheduling granularity: iterations per slice.
    pub segment: u64,
    /// Per-probe stopping target. With [`StoppingRule::FixedIterations`]
    /// no probe ever "finishes" early and the schedule degenerates to an
    /// even round-robin split — the fixed-budget baseline.
    pub target: StoppingRule,
    /// Base seed; probe `i` runs with `seed + i`.
    pub seed: u64,
}

impl ScheduleConfig {
    /// Adaptive schedule targeting a per-probe standard error.
    pub fn target_stderr(budget: u64, epsilon: f64, delta: f64, seed: u64) -> Self {
        ScheduleConfig {
            budget,
            segment: EngineConfig::DEFAULT_SEGMENT,
            target: StoppingRule::TargetStderr { epsilon, delta },
            seed,
        }
    }

    /// Overrides the scheduling segment (clamped to ≥ 1).
    pub fn with_segment(mut self, segment: u64) -> Self {
        self.segment = segment.max(1);
        self
    }
}

/// Per-probe outcome of a scheduled run.
#[derive(Debug, Clone)]
pub struct ProbeOutcome {
    /// The probe vertex.
    pub probe: Vertex,
    /// Iterations this probe received.
    pub allocated: u64,
    /// Whether the per-probe target was reached (always `false` under
    /// `FixedIterations`).
    pub reached: bool,
    /// The `(1−δ)` confidence half-width at the end (`inf` when the probe
    /// never completed two observation batches).
    pub ci_halfwidth: f64,
    /// The probe's finished estimate.
    pub estimate: SingleSpaceEstimate,
    /// The probe's engine report.
    pub report: AdaptiveReport,
}

/// Result of [`run_probe_schedule`].
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Per-probe outcomes, in input order.
    pub probes: Vec<ProbeOutcome>,
    /// Total iterations spent across all probes.
    pub spent: u64,
    /// Scheduling decisions taken (segments granted).
    pub rounds: u64,
}

impl ScheduleOutcome {
    /// Whether every probe reached its target within the budget.
    pub fn all_reached(&self) -> bool {
        self.probes.iter().all(|p| p.reached)
    }
}

/// The confidence z-multiplier for a stopping rule's interval reporting
/// (δ from the rule when it has one; 95% otherwise).
fn ci_z(rule: StoppingRule) -> f64 {
    match rule {
        StoppingRule::TargetStderr { delta, .. } => normal_upper_quantile(delta / 2.0),
        _ => normal_upper_quantile(0.025),
    }
}

/// Runs single-space estimations for every probe in `probes`, sharing
/// `config.budget` iterations via widest-interval-first scheduling (module
/// docs). Probes must be distinct, in range, and retained by the view's
/// reduction.
pub fn run_probe_schedule(
    view: SpdView<'_>,
    probes: &[Vertex],
    config: ScheduleConfig,
) -> Result<ScheduleOutcome, CoreError> {
    if probes.is_empty() {
        return Err(CoreError::ProbeSetTooSmall { len: 0 });
    }
    for (i, &p) in probes.iter().enumerate() {
        if probes[..i].contains(&p) {
            return Err(CoreError::DuplicateProbe { probe: p });
        }
    }
    let z = ci_z(config.target);
    let engine_cfg = EngineConfig::adaptive(config.target).with_segment(config.segment);

    // One engine per probe; each may in principle consume the whole budget.
    let mut engines: Vec<Option<EstimationEngine<SingleDriver<'_>>>> = probes
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let sampler_cfg =
                SingleSpaceConfig::new(config.budget, config.seed.wrapping_add(i as u64));
            SingleSpaceSampler::for_view(view, p, sampler_cfg)
                .map(|s| Some(s.into_engine(engine_cfg)))
        })
        .collect::<Result<_, _>>()?;
    let mut finished: Vec<Option<StopReason>> = vec![None; probes.len()];
    let mut allocated = vec![0u64; probes.len()];
    let mut spent = 0u64;
    let mut rounds = 0u64;

    let width = |e: &EstimationEngine<SingleDriver<'_>>| -> f64 {
        let se = e.estimate_stderr();
        if se.is_finite() {
            z * se
        } else {
            f64::INFINITY
        }
    };

    let grant = |i: usize,
                 engines: &mut Vec<Option<EstimationEngine<SingleDriver<'_>>>>,
                 finished: &mut Vec<Option<StopReason>>,
                 allocated: &mut Vec<u64>,
                 spent: &mut u64,
                 rounds: &mut u64| {
        let engine = engines[i].as_mut().expect("unfinished engines exist");
        let before = engine.iterations();
        let reason = engine.step_segment();
        let delta = engine.iterations() - before;
        allocated[i] += delta;
        *spent += delta;
        *rounds += 1;
        finished[i] = reason;
    };

    // Warm-up sweep: every probe gets one segment (and with it a first
    // interval), in input order.
    for i in 0..probes.len() {
        if spent >= config.budget {
            break;
        }
        if finished[i].is_none() {
            grant(i, &mut engines, &mut finished, &mut allocated, &mut spent, &mut rounds);
        }
    }

    // Reallocation: widest interval first among unfinished probes.
    while spent < config.budget {
        let mut pick: Option<(usize, f64)> = None;
        for i in 0..probes.len() {
            if finished[i].is_some() {
                continue;
            }
            let w = width(engines[i].as_ref().expect("present until finished"));
            // Strict > keeps ties on the lowest index (deterministic).
            if pick.is_none_or(|(_, best)| w > best) {
                pick = Some((i, w));
            }
        }
        let Some((i, _)) = pick else { break }; // all probes reached their target
        grant(i, &mut engines, &mut finished, &mut allocated, &mut spent, &mut rounds);
    }

    let outcomes = engines
        .into_iter()
        .enumerate()
        .map(|(i, engine)| {
            let engine = engine.expect("engine present");
            let ci = width(&engine);
            let reached = matches!(finished[i], Some(StopReason::TargetReached));
            let reason = finished[i].unwrap_or(StopReason::BudgetExhausted);
            let (estimate, report) = engine.finalize(reason);
            ProbeOutcome {
                probe: probes[i],
                allocated: allocated[i],
                reached,
                ci_halfwidth: ci,
                estimate,
                report,
            }
        })
        .collect();

    Ok(ScheduleOutcome { probes: outcomes, spent, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn budget_flows_to_the_uncertain_probe() {
        // Probe 11 (the lollipop's path tail) has zero betweenness — an
        // identically-zero series that reaches any stderr target after one
        // segment. Probe 9 (mid-path) has a genuinely varying series, so
        // the reallocation loop should hand it the lion's share.
        let g = generators::lollipop(8, 4);
        let cfg = ScheduleConfig::target_stderr(4_000, 1e-6, 0.05, 7).with_segment(128);
        let out = run_probe_schedule(mhbc_spd::SpdView::direct(&g), &[9, 11], cfg).unwrap();
        let hard = &out.probes[0];
        let tail = &out.probes[1];
        assert_eq!(tail.allocated, 128, "zero-BC probe converges after one segment");
        assert!(tail.reached);
        assert_eq!(tail.estimate.bc, 0.0);
        assert!(
            hard.allocated > tail.allocated * 8,
            "hard probe got {} vs tail {}",
            hard.allocated,
            tail.allocated
        );
        assert!(out.spent >= 4_000, "budget exhausted chasing the tight target");
        assert!(out.rounds >= 2);
    }

    #[test]
    fn loose_targets_stop_everyone_early() {
        let g = generators::barbell(6, 3);
        let probes = [6u32, 7, 8];
        let cfg = ScheduleConfig::target_stderr(600_000, 0.25, 0.05, 3).with_segment(256);
        let out = run_probe_schedule(mhbc_spd::SpdView::direct(&g), &probes, cfg).unwrap();
        assert!(out.all_reached());
        assert!(out.spent < 600_000, "spent {} of a huge budget", out.spent);
        for p in &out.probes {
            assert!(p.reached);
            assert!(p.ci_halfwidth <= 0.25);
            assert!(p.estimate.bc > 0.0);
        }
    }

    #[test]
    fn fixed_rule_degenerates_to_even_round_robin() {
        let g = generators::barbell(5, 2);
        let probes = [5u32, 6];
        let cfg = ScheduleConfig {
            budget: 2_048,
            segment: 256,
            target: StoppingRule::FixedIterations,
            seed: 1,
        };
        let out = run_probe_schedule(mhbc_spd::SpdView::direct(&g), &probes, cfg).unwrap();
        // No probe ever finishes early; allocation differs by at most one
        // segment (the alternation is interval-driven but symmetric here).
        let a = out.probes[0].allocated;
        let b = out.probes[1].allocated;
        assert_eq!(a + b, out.spent);
        assert!(out.spent >= 2_048);
        assert!(!out.all_reached());
        assert!(a.abs_diff(b) <= 512, "allocations {a} vs {b}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::lollipop(6, 3);
        let cfg = ScheduleConfig::target_stderr(3_000, 0.02, 0.05, 9).with_segment(200);
        let run = || {
            run_probe_schedule(mhbc_spd::SpdView::direct(&g), &[0, 7], cfg)
                .unwrap()
                .probes
                .iter()
                .map(|p| (p.allocated, p.estimate.bc.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validation_errors() {
        let g = generators::path(10);
        let cfg = ScheduleConfig::target_stderr(100, 0.1, 0.05, 0);
        assert!(matches!(
            run_probe_schedule(mhbc_spd::SpdView::direct(&g), &[], cfg),
            Err(CoreError::ProbeSetTooSmall { len: 0 })
        ));
        assert!(matches!(
            run_probe_schedule(mhbc_spd::SpdView::direct(&g), &[1, 1], cfg),
            Err(CoreError::DuplicateProbe { probe: 1 })
        ));
        assert!(matches!(
            run_probe_schedule(mhbc_spd::SpdView::direct(&g), &[99], cfg),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
    }
}
