//! Memoised dependency-score evaluation.
//!
//! The Metropolis–Hastings chains revisit states: on a graph with `n`
//! vertices, a `T`-step chain proposes at most `T + 1` distinct sources but
//! typically far fewer (the stationary distribution concentrates on
//! high-dependency sources). Each distinct source costs one SPD pass
//! (`O(|E|)`); caching the result turns revisits into hash lookups.
//!
//! For the joint-space sampler the oracle stores the dependency of a source
//! on *all* probe vertices at once — a single backward accumulation already
//! produces `δ_{v•}(x)` for every `x` (Eq 4), so the per-probe marginal cost
//! is zero.
//!
//! Capacity-limited oracles evict with a second-chance (CLOCK) policy: each
//! cached source carries a referenced bit that hits set and the clock hand
//! clears, so the chain's hot working set — exactly the high-dependency
//! sources the stationary law revisits — survives evictions that a
//! wholesale flush would destroy.

use mhbc_graph::{CsrGraph, Vertex};
use mhbc_spd::DependencyCalculator;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Evaluations answered from the cache.
    pub hits: u64,
    /// Evaluations that required an SPD pass.
    pub misses: u64,
}

impl OracleStats {
    /// Fraction of evaluations served from cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One CLOCK ring slot: a cached source row plus its second-chance bit.
struct Slot {
    source: Vertex,
    row: Box<[f64]>,
    referenced: bool,
}

/// Memoises `δ_{source•}(r)` for a fixed probe set, keyed by source vertex.
///
/// Unbounded by default; [`ProbeOracle::with_capacity_limit`] bounds the
/// number of cached sources with second-chance eviction (see module docs).
pub struct ProbeOracle<'g> {
    graph: &'g CsrGraph,
    probes: Vec<Vertex>,
    calc: DependencyCalculator,
    index: HashMap<Vertex, usize>,
    slots: Vec<Slot>,
    hand: usize,
    stats: OracleStats,
    capacity: usize,
}

impl<'g> ProbeOracle<'g> {
    /// Oracle for the given probe set (panics on empty probes or
    /// out-of-range ids — the samplers validate beforehand).
    pub fn new(graph: &'g CsrGraph, probes: &[Vertex]) -> Self {
        assert!(!probes.is_empty(), "probe set must be non-empty");
        for &p in probes {
            assert!((p as usize) < graph.num_vertices(), "probe {p} out of range");
        }
        ProbeOracle {
            graph,
            probes: probes.to_vec(),
            calc: DependencyCalculator::new(graph),
            index: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            stats: OracleStats::default(),
            capacity: usize::MAX,
        }
    }

    /// Bounds the cache to `entries` sources, evicted one at a time by the
    /// second-chance (CLOCK) policy: the hand sweeps the ring clearing
    /// referenced bits and replaces the first slot whose bit is already
    /// clear. Sources the chain keeps revisiting keep their bit set and
    /// survive; one-shot proposals are recycled first.
    pub fn with_capacity_limit(mut self, entries: usize) -> Self {
        self.capacity = entries.max(1);
        self
    }

    /// The probe set.
    pub fn probes(&self) -> &[Vertex] {
        &self.probes
    }

    /// `δ_{source•}(r)` for every probe `r`, cached.
    pub fn deps(&mut self, source: Vertex) -> &[f64] {
        if let Some(&i) = self.index.get(&source) {
            self.stats.hits += 1;
            self.slots[i].referenced = true;
            return &self.slots[i].row;
        }
        self.stats.misses += 1;
        let mut row = Vec::with_capacity(self.probes.len());
        self.calc.dependency_on_many(self.graph, source, &self.probes, &mut row);
        let slot = Slot { source, row: row.into_boxed_slice(), referenced: false };
        let i = if self.slots.len() < self.capacity {
            self.slots.push(slot);
            self.slots.len() - 1
        } else {
            // Second-chance sweep: clear referenced bits until an
            // unreferenced victim comes under the hand.
            loop {
                let h = self.hand;
                self.hand = (self.hand + 1) % self.slots.len();
                if self.slots[h].referenced {
                    self.slots[h].referenced = false;
                } else {
                    self.index.remove(&self.slots[h].source);
                    self.slots[h] = slot;
                    break h;
                }
            }
        };
        self.index.insert(source, i);
        &self.slots[i].row
    }

    /// `δ_{source•}(probes[idx])`, cached.
    pub fn dep(&mut self, source: Vertex, idx: usize) -> f64 {
        self.deps(source)[idx]
    }

    /// Cache statistics.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Number of SPD passes performed (equals `stats().misses`).
    pub fn spd_passes(&self) -> u64 {
        self.calc.passes()
    }

    /// Number of distinct sources currently cached.
    pub fn cached_sources(&self) -> usize {
        self.slots.len()
    }
}

/// Thread-safe memoised dependency oracle shared by *parallel* consumers:
/// chain ensembles (many chains over one probe set share every density
/// evaluation) and the speculative prefetch pipeline (workers warm the
/// cache ahead of the chain thread).
///
/// Lookups take a read lock; misses compute the SPD pass *outside* any lock
/// (each caller thread supplies its own [`DependencyCalculator`], usually
/// checked out of an [`mhbc_spd::SpdWorkspacePool`]) and then insert under a
/// short write lock. Duplicate concurrent computations of the same source
/// are possible but harmless (last write wins with equal values) — which is
/// why [`SharedProbeOracle::cached_sources`], not the miss counter, is the
/// deterministic "distinct SPD passes" figure the pipelined samplers report.
pub struct SharedProbeOracle<'g> {
    graph: &'g CsrGraph,
    probes: Vec<Vertex>,
    cache: RwLock<HashMap<Vertex, Box<[f64]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'g> SharedProbeOracle<'g> {
    /// Shared oracle for the given probe set.
    pub fn new(graph: &'g CsrGraph, probes: &[Vertex]) -> Self {
        assert!(!probes.is_empty(), "probe set must be non-empty");
        for &p in probes {
            assert!((p as usize) < graph.num_vertices(), "probe {p} out of range");
        }
        SharedProbeOracle {
            graph,
            probes: probes.to_vec(),
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The probe set.
    pub fn probes(&self) -> &[Vertex] {
        &self.probes
    }

    /// Runs `f` over the cached (or freshly computed) row
    /// `δ_{source•}(probes)` without copying it out.
    pub fn with_deps<T>(
        &self,
        source: Vertex,
        calc: &mut DependencyCalculator,
        f: impl FnOnce(&[f64]) -> T,
    ) -> T {
        if let Some(row) = self.cache.read().get(&source) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return f(row);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut row = Vec::with_capacity(self.probes.len());
        calc.dependency_on_many(self.graph, source, &self.probes, &mut row);
        let out = f(&row);
        self.cache.write().insert(source, row.into_boxed_slice());
        out
    }

    /// `δ_{source•}(r)` for every probe, using `calc` for cache misses.
    pub fn deps(&self, source: Vertex, calc: &mut DependencyCalculator) -> Vec<f64> {
        self.with_deps(source, calc, |row| row.to_vec())
    }

    /// Single-probe convenience (no allocation).
    pub fn dep(&self, source: Vertex, idx: usize, calc: &mut DependencyCalculator) -> f64 {
        self.with_deps(source, calc, |row| row[idx])
    }

    /// Ensures `source` is cached, computing it with `calc` if needed;
    /// returns whether a computation happened. This is the prefetch
    /// workers' entry point: it touches no statistics, so warming the cache
    /// never perturbs the chain-observable hit/miss history.
    pub fn warm(&self, source: Vertex, calc: &mut DependencyCalculator) -> bool {
        if self.cache.read().contains_key(&source) {
            return false;
        }
        let mut row = Vec::with_capacity(self.probes.len());
        calc.dependency_on_many(self.graph, source, &self.probes, &mut row);
        self.cache.write().insert(source, row.into_boxed_slice());
        true
    }

    /// Cache statistics (aggregated over all threads).
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct sources cached — the deterministic SPD-pass count
    /// for a run whose proposal set is fixed (see type docs).
    pub fn cached_sources(&self) -> usize {
        self.cache.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn caches_repeat_evaluations() {
        let g = generators::barbell(4, 2);
        let mut o = ProbeOracle::new(&g, &[4]);
        let first = o.dep(0, 0);
        let second = o.dep(0, 0);
        assert_eq!(first, second);
        assert_eq!(o.stats(), OracleStats { hits: 1, misses: 1 });
        assert_eq!(o.spd_passes(), 1);
    }

    #[test]
    fn values_match_direct_kernel() {
        let g = generators::barbell(4, 2);
        let probes = [0u32, 4, 5, 9];
        let mut o = ProbeOracle::new(&g, &probes);
        let mut calc = DependencyCalculator::new(&g);
        for src in 0..g.num_vertices() as Vertex {
            let row = o.deps(src).to_vec();
            for (i, &p) in probes.iter().enumerate() {
                assert_eq!(row[i], calc.dependency_on(&g, src, p), "src {src} probe {p}");
            }
        }
    }

    #[test]
    fn capacity_limit_evicts_one_at_a_time() {
        let g = generators::cycle(10);
        let mut o = ProbeOracle::new(&g, &[0]).with_capacity_limit(3);
        for v in 0..9u32 {
            let _ = o.dep(v, 0);
        }
        assert_eq!(o.cached_sources(), 3, "ring stays full, never flushed");
        // Values still correct after evictions.
        let mut calc = DependencyCalculator::new(&g);
        assert_eq!(o.dep(7, 0), calc.dependency_on(&g, 7, 0));
    }

    #[test]
    fn second_chance_keeps_the_hot_working_set() {
        let g = generators::cycle(16);
        let mut o = ProbeOracle::new(&g, &[0]).with_capacity_limit(4);
        // Establish a hot pair {1, 2} and keep touching it while a stream
        // of one-shot sources (3..11) flows through the cache.
        let _ = o.dep(1, 0);
        let _ = o.dep(2, 0);
        for v in 3..11u32 {
            let _ = o.dep(v, 0);
            let _ = o.dep(1, 0);
            let _ = o.dep(2, 0);
        }
        let stats = o.stats();
        // Every re-touch of 1 and 2 must have been a hit: the CLOCK hand
        // recycles the unreferenced one-shot slots instead.
        assert_eq!(stats.hits, 2 * 8, "hot set evicted: {stats:?}");
        assert_eq!(stats.misses, 2 + 8);
        assert_eq!(o.cached_sources(), 4);
    }

    #[test]
    fn wholesale_flush_would_have_lost_the_hot_set() {
        // Documentation-by-test of the old behaviour's cost: with the
        // CLOCK policy the hit rate of a skewed access pattern stays high
        // even at a tiny capacity.
        let g = generators::cycle(32);
        let mut o = ProbeOracle::new(&g, &[0]).with_capacity_limit(2);
        for round in 0..50u32 {
            let _ = o.dep(0, 0); // hot
            let _ = o.dep(1 + (round % 30), 0); // cold stream
        }
        assert!(o.stats().hit_rate() > 0.45, "hit rate {:?}", o.stats());
    }

    #[test]
    fn shared_oracle_matches_direct_kernel() {
        let g = generators::barbell(4, 2);
        let probes = [0u32, 4, 9];
        let shared = SharedProbeOracle::new(&g, &probes);
        let mut calc = DependencyCalculator::new(&g);
        let mut reference = DependencyCalculator::new(&g);
        for src in 0..g.num_vertices() as Vertex {
            let row = shared.deps(src, &mut calc);
            for (i, &p) in probes.iter().enumerate() {
                assert_eq!(row[i], reference.dependency_on(&g, src, p));
            }
        }
        // Second sweep is pure cache hits.
        for src in 0..g.num_vertices() as Vertex {
            let _ = shared.deps(src, &mut calc);
        }
        let stats = shared.stats();
        assert_eq!(stats.misses, g.num_vertices() as u64);
        assert_eq!(stats.hits, g.num_vertices() as u64);
        assert_eq!(shared.cached_sources(), g.num_vertices());
    }

    #[test]
    fn warm_populates_without_touching_stats() {
        let g = generators::barbell(4, 1);
        let shared = SharedProbeOracle::new(&g, &[4]);
        let mut calc = DependencyCalculator::new(&g);
        assert!(shared.warm(0, &mut calc));
        assert!(!shared.warm(0, &mut calc), "second warm is a no-op");
        assert_eq!(shared.stats(), OracleStats::default());
        // The chain's subsequent read is a hit.
        let _ = shared.dep(0, 0, &mut calc);
        assert_eq!(shared.stats(), OracleStats { hits: 1, misses: 0 });
    }

    #[test]
    fn shared_oracle_concurrent_consistency() {
        let g = generators::barbell(6, 2);
        let shared = SharedProbeOracle::new(&g, &[6]);
        let n = g.num_vertices() as Vertex;
        crossbeam::thread::scope(|scope| {
            for t in 0..4 {
                let shared = &shared;
                let g = &g;
                scope.spawn(move |_| {
                    let mut calc = DependencyCalculator::new(g);
                    let mut reference = DependencyCalculator::new(g);
                    for i in 0..n {
                        let v = (i + t * 3) % n;
                        let got = shared.dep(v, 0, &mut calc);
                        assert_eq!(got, reference.dependency_on(g, v, 6));
                    }
                });
            }
        })
        .expect("threads joined");
        assert_eq!(shared.cached_sources(), g.num_vertices());
    }

    #[test]
    fn hit_rate_reporting() {
        let g = generators::path(5);
        let mut o = ProbeOracle::new(&g, &[2]);
        assert_eq!(o.stats().hit_rate(), 0.0);
        let _ = o.dep(0, 0);
        let _ = o.dep(0, 0);
        let _ = o.dep(0, 0);
        assert!((o.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
