//! Memoised dependency-score evaluation.
//!
//! The Metropolis–Hastings chains revisit states: on a graph with `n`
//! vertices, a `T`-step chain proposes at most `T + 1` distinct sources but
//! typically far fewer (the stationary distribution concentrates on
//! high-dependency sources). Each distinct source costs one SPD pass
//! (`O(|E|)`); caching the result turns revisits into hash lookups.
//!
//! For the joint-space sampler the oracle stores the dependency of a source
//! on *all* probe vertices at once — a single backward accumulation already
//! produces `δ_{v•}(x)` for every `x` (Eq 4), so the per-probe marginal cost
//! is zero.

use mhbc_graph::{CsrGraph, Vertex};
use mhbc_spd::DependencyCalculator;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Evaluations answered from the cache.
    pub hits: u64,
    /// Evaluations that required an SPD pass.
    pub misses: u64,
}

impl OracleStats {
    /// Fraction of evaluations served from cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoises `δ_{source•}(r)` for a fixed probe set, keyed by source vertex.
pub struct ProbeOracle<'g> {
    graph: &'g CsrGraph,
    probes: Vec<Vertex>,
    calc: DependencyCalculator,
    cache: HashMap<Vertex, Box<[f64]>>,
    stats: OracleStats,
    capacity: usize,
}

impl<'g> ProbeOracle<'g> {
    /// Oracle for the given probe set (panics on empty probes or
    /// out-of-range ids — the samplers validate beforehand).
    pub fn new(graph: &'g CsrGraph, probes: &[Vertex]) -> Self {
        assert!(!probes.is_empty(), "probe set must be non-empty");
        for &p in probes {
            assert!((p as usize) < graph.num_vertices(), "probe {p} out of range");
        }
        ProbeOracle {
            graph,
            probes: probes.to_vec(),
            calc: DependencyCalculator::new(graph),
            cache: HashMap::new(),
            stats: OracleStats::default(),
            capacity: usize::MAX,
        }
    }

    /// Bounds the cache to `entries` sources; when exceeded the cache is
    /// flushed wholesale (random-replacement would keep no more useful a
    /// working set for an independence chain, and flushing is branch-free).
    pub fn with_capacity_limit(mut self, entries: usize) -> Self {
        self.capacity = entries.max(1);
        self
    }

    /// The probe set.
    pub fn probes(&self) -> &[Vertex] {
        &self.probes
    }

    /// `δ_{source•}(r)` for every probe `r`, cached.
    pub fn deps(&mut self, source: Vertex) -> &[f64] {
        if self.cache.contains_key(&source) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            if self.cache.len() >= self.capacity {
                self.cache.clear();
            }
            let mut row = Vec::with_capacity(self.probes.len());
            self.calc.dependency_on_many(self.graph, source, &self.probes, &mut row);
            self.cache.insert(source, row.into_boxed_slice());
        }
        self.cache.get(&source).expect("just inserted")
    }

    /// `δ_{source•}(probes[idx])`, cached.
    pub fn dep(&mut self, source: Vertex, idx: usize) -> f64 {
        self.deps(source)[idx]
    }

    /// Cache statistics.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Number of SPD passes performed (equals `stats().misses`).
    pub fn spd_passes(&self) -> u64 {
        self.calc.passes()
    }

    /// Number of distinct sources currently cached.
    pub fn cached_sources(&self) -> usize {
        self.cache.len()
    }
}

/// Thread-safe memoised dependency oracle for *parallel chain ensembles*
/// (see [`crate::ensemble`]): many chains over the same probe set share one
/// cache, so a source evaluated by any chain is free for all others.
///
/// Lookups take a read lock; misses compute the SPD pass *outside* any lock
/// (each caller thread supplies its own [`DependencyCalculator`]) and then
/// insert under a short write lock. Duplicate concurrent computations of
/// the same source are possible but harmless (last write wins with equal
/// values).
pub struct SharedProbeOracle<'g> {
    graph: &'g CsrGraph,
    probes: Vec<Vertex>,
    cache: RwLock<HashMap<Vertex, Box<[f64]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'g> SharedProbeOracle<'g> {
    /// Shared oracle for the given probe set.
    pub fn new(graph: &'g CsrGraph, probes: &[Vertex]) -> Self {
        assert!(!probes.is_empty(), "probe set must be non-empty");
        for &p in probes {
            assert!((p as usize) < graph.num_vertices(), "probe {p} out of range");
        }
        SharedProbeOracle {
            graph,
            probes: probes.to_vec(),
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `δ_{source•}(r)` for every probe, using `calc` for cache misses.
    pub fn deps(&self, source: Vertex, calc: &mut DependencyCalculator) -> Vec<f64> {
        if let Some(row) = self.cache.read().get(&source) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return row.to_vec();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut row = Vec::with_capacity(self.probes.len());
        calc.dependency_on_many(self.graph, source, &self.probes, &mut row);
        self.cache.write().insert(source, row.clone().into_boxed_slice());
        row
    }

    /// Single-probe convenience.
    pub fn dep(&self, source: Vertex, idx: usize, calc: &mut DependencyCalculator) -> f64 {
        self.deps(source, calc)[idx]
    }

    /// Cache statistics (aggregated over all threads).
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct sources cached.
    pub fn cached_sources(&self) -> usize {
        self.cache.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn caches_repeat_evaluations() {
        let g = generators::barbell(4, 2);
        let mut o = ProbeOracle::new(&g, &[4]);
        let first = o.dep(0, 0);
        let second = o.dep(0, 0);
        assert_eq!(first, second);
        assert_eq!(o.stats(), OracleStats { hits: 1, misses: 1 });
        assert_eq!(o.spd_passes(), 1);
    }

    #[test]
    fn values_match_direct_kernel() {
        let g = generators::barbell(4, 2);
        let probes = [0u32, 4, 5, 9];
        let mut o = ProbeOracle::new(&g, &probes);
        let mut calc = DependencyCalculator::new(&g);
        for src in 0..g.num_vertices() as Vertex {
            let row = o.deps(src).to_vec();
            for (i, &p) in probes.iter().enumerate() {
                assert_eq!(row[i], calc.dependency_on(&g, src, p), "src {src} probe {p}");
            }
        }
    }

    #[test]
    fn capacity_limit_flushes() {
        let g = generators::cycle(10);
        let mut o = ProbeOracle::new(&g, &[0]).with_capacity_limit(3);
        for v in 0..9u32 {
            let _ = o.dep(v, 0);
        }
        assert!(o.cached_sources() <= 3);
        // Values still correct after flushes.
        let mut calc = DependencyCalculator::new(&g);
        assert_eq!(o.dep(7, 0), calc.dependency_on(&g, 7, 0));
    }

    #[test]
    fn shared_oracle_matches_direct_kernel() {
        let g = generators::barbell(4, 2);
        let probes = [0u32, 4, 9];
        let shared = SharedProbeOracle::new(&g, &probes);
        let mut calc = DependencyCalculator::new(&g);
        let mut reference = DependencyCalculator::new(&g);
        for src in 0..g.num_vertices() as Vertex {
            let row = shared.deps(src, &mut calc);
            for (i, &p) in probes.iter().enumerate() {
                assert_eq!(row[i], reference.dependency_on(&g, src, p));
            }
        }
        // Second sweep is pure cache hits.
        for src in 0..g.num_vertices() as Vertex {
            let _ = shared.deps(src, &mut calc);
        }
        let stats = shared.stats();
        assert_eq!(stats.misses, g.num_vertices() as u64);
        assert_eq!(stats.hits, g.num_vertices() as u64);
        assert_eq!(shared.cached_sources(), g.num_vertices());
    }

    #[test]
    fn shared_oracle_concurrent_consistency() {
        let g = generators::barbell(6, 2);
        let shared = SharedProbeOracle::new(&g, &[6]);
        let n = g.num_vertices() as Vertex;
        crossbeam::thread::scope(|scope| {
            for t in 0..4 {
                let shared = &shared;
                let g = &g;
                scope.spawn(move |_| {
                    let mut calc = DependencyCalculator::new(g);
                    let mut reference = DependencyCalculator::new(g);
                    for i in 0..n {
                        let v = (i + t * 3) % n;
                        let got = shared.dep(v, 0, &mut calc);
                        assert_eq!(got, reference.dependency_on(g, v, 6));
                    }
                });
            }
        })
        .expect("threads joined");
        assert_eq!(shared.cached_sources(), g.num_vertices());
    }

    #[test]
    fn hit_rate_reporting() {
        let g = generators::path(5);
        let mut o = ProbeOracle::new(&g, &[2]);
        assert_eq!(o.stats().hit_rate(), 0.0);
        let _ = o.dep(0, 0);
        let _ = o.dep(0, 0);
        let _ = o.dep(0, 0);
        assert!((o.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
