//! Memoised dependency-score evaluation.
//!
//! The Metropolis–Hastings chains revisit states: on a graph with `n`
//! vertices, a `T`-step chain proposes at most `T + 1` distinct sources but
//! typically far fewer (the stationary distribution concentrates on
//! high-dependency sources). Each distinct source costs one SPD pass
//! (`O(|E|)`); caching the result turns revisits into hash lookups.
//!
//! For the joint-space sampler the oracle stores the dependency of a source
//! on *all* probe vertices at once — a single backward accumulation already
//! produces `δ_{v•}(x)` for every `x` (Eq 4), so the per-probe marginal cost
//! is zero.
//!
//! Both oracles evaluate through an [`SpdView`] — a graph together with
//! (optionally) its reduction from `mhbc_graph::reduce`. With a reduction
//! active, cache entries are keyed by [`SpdView::row_key`] rather than by
//! source vertex: structurally equivalent sources (twins of equal pendant
//! weight; pendant vertices of the same attachment and branch shape) have
//! *identical* dependency rows, so a whole equivalence class costs one SPD
//! pass over the reduced CSR instead of one per member. Direct views key by
//! vertex id, which reproduces the pre-reduction behaviour exactly.
//!
//! Capacity-limited oracles evict with a second-chance (CLOCK) policy: each
//! cached row carries a referenced bit that hits set and the clock hand
//! clears, so the chain's hot working set — exactly the high-dependency
//! sources the stationary law revisits — survives evictions that a
//! wholesale flush would destroy.

use mhbc_graph::{CsrGraph, Vertex};
use mhbc_spd::{SpdView, ViewCalculator};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Evaluations answered from the cache.
    pub hits: u64,
    /// Evaluations that required an SPD pass.
    pub misses: u64,
}

impl OracleStats {
    /// Fraction of evaluations served from cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Validates a probe set against a view: non-empty, in range, and (for
/// reduced views) retained — pruned probes have closed-form exact BC and
/// must not reach the samplers.
fn validate_probes(view: &SpdView<'_>, probes: &[Vertex]) -> Vec<bool> {
    assert!(!probes.is_empty(), "probe set must be non-empty");
    let n = view.num_vertices();
    let mut flag = vec![false; n];
    for &p in probes {
        assert!((p as usize) < n, "probe {p} out of range");
        assert!(
            view.is_retained(p),
            "probe {p} was pruned by the reduction; use ReducedGraph::exact_pruned_bc"
        );
        flag[p as usize] = true;
    }
    flag
}

/// One CLOCK ring slot: a cached dependency row plus its second-chance bit.
struct Slot {
    key: u64,
    row: Box<[f64]>,
    referenced: bool,
}

/// Memoises `δ_{source•}(r)` for a fixed probe set, keyed by the source's
/// [`SpdView::row_key`] (equal to the vertex id on direct views).
///
/// Unbounded by default; [`ProbeOracle::with_capacity_limit`] bounds the
/// number of cached rows with second-chance eviction (see module docs).
pub struct ProbeOracle<'g> {
    view: SpdView<'g>,
    probes: Vec<Vertex>,
    probe_flag: Vec<bool>,
    calc: ViewCalculator<'g>,
    index: HashMap<u64, usize>,
    slots: Vec<Slot>,
    hand: usize,
    stats: OracleStats,
    capacity: usize,
    /// SPD passes performed before this oracle existed — restored from a
    /// checkpoint so [`ProbeOracle::spd_passes`] keeps counting across
    /// save/resume boundaries.
    passes_base: u64,
}

impl<'g> ProbeOracle<'g> {
    /// Oracle evaluating directly on `graph` (panics on empty probes or
    /// out-of-range ids — the samplers validate beforehand).
    pub fn new(graph: &'g CsrGraph, probes: &[Vertex]) -> Self {
        Self::for_view(SpdView::direct(graph), probes)
    }

    /// Oracle evaluating through `view` (direct or reduced). With a
    /// reduction, every probe must be retained (panics otherwise; the
    /// samplers surface this as a `CoreError` first).
    pub fn for_view(view: SpdView<'g>, probes: &[Vertex]) -> Self {
        let probe_flag = validate_probes(&view, probes);
        ProbeOracle {
            view,
            probes: probes.to_vec(),
            probe_flag,
            calc: ViewCalculator::new(view),
            index: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            stats: OracleStats::default(),
            capacity: usize::MAX,
            passes_base: 0,
        }
    }

    /// Bounds the cache to `entries` rows, evicted one at a time by the
    /// second-chance (CLOCK) policy: the hand sweeps the ring clearing
    /// referenced bits and replaces the first slot whose bit is already
    /// clear. Sources the chain keeps revisiting keep their bit set and
    /// survive; one-shot proposals are recycled first.
    pub fn with_capacity_limit(mut self, entries: usize) -> Self {
        self.capacity = entries.max(1);
        self
    }

    /// The probe set.
    pub fn probes(&self) -> &[Vertex] {
        &self.probes
    }

    /// The view this oracle evaluates against.
    pub fn view(&self) -> SpdView<'g> {
        self.view
    }

    /// `δ_{source•}(r)` for every probe `r`, cached.
    pub fn deps(&mut self, source: Vertex) -> &[f64] {
        let key = self.view.row_key(source, self.probe_flag[source as usize]);
        if let Some(&i) = self.index.get(&key) {
            self.stats.hits += 1;
            self.slots[i].referenced = true;
            return &self.slots[i].row;
        }
        self.stats.misses += 1;
        let mut row = Vec::with_capacity(self.probes.len());
        self.calc.dependency_on_many(source, &self.probes, &mut row);
        let slot = Slot { key, row: row.into_boxed_slice(), referenced: false };
        let i = if self.slots.len() < self.capacity {
            self.slots.push(slot);
            self.slots.len() - 1
        } else {
            // Second-chance sweep: clear referenced bits until an
            // unreferenced victim comes under the hand.
            loop {
                let h = self.hand;
                self.hand = (self.hand + 1) % self.slots.len();
                if self.slots[h].referenced {
                    self.slots[h].referenced = false;
                } else {
                    self.index.remove(&self.slots[h].key);
                    self.slots[h] = slot;
                    break h;
                }
            }
        };
        self.index.insert(key, i);
        &self.slots[i].row
    }

    /// `δ_{source•}(probes[idx])`, cached.
    pub fn dep(&mut self, source: Vertex, idx: usize) -> f64 {
        self.deps(source)[idx]
    }

    /// Cache statistics.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Number of SPD passes performed (equals `stats().misses` while the
    /// cache is unbounded), counted across checkpoint/resume boundaries.
    pub fn spd_passes(&self) -> u64 {
        self.passes_base + self.calc.passes()
    }

    /// Number of distinct dependency rows currently cached.
    pub fn cached_sources(&self) -> usize {
        self.slots.len()
    }

    /// The cached rows as `(row key, dependency row)` pairs, sorted by key —
    /// a deterministic snapshot for checkpointing (insertion order is a
    /// timing artifact under the shared oracle; key order is canonical).
    pub fn snapshot_rows(&self) -> Vec<(u64, Vec<f64>)> {
        let mut rows: Vec<(u64, Vec<f64>)> =
            self.slots.iter().map(|s| (s.key, s.row.to_vec())).collect();
        rows.sort_by_key(|&(k, _)| k);
        rows
    }

    /// Restores a checkpointed cache: the given rows become the cache
    /// contents (referenced bits cleared — only meaningful under a capacity
    /// limit, which the samplers never set), and the counters resume from
    /// the checkpointed values so `stats()` / [`ProbeOracle::spd_passes`]
    /// continue as if the run had never stopped.
    pub fn restore_cache(&mut self, rows: Vec<(u64, Vec<f64>)>, stats: OracleStats, passes: u64) {
        debug_assert!(self.slots.is_empty(), "restore into a fresh oracle");
        for (key, row) in rows {
            let slot = Slot { key, row: row.into_boxed_slice(), referenced: false };
            self.index.insert(key, self.slots.len());
            self.slots.push(slot);
        }
        self.stats = stats;
        self.passes_base = passes;
    }
}

/// Thread-safe memoised dependency oracle shared by *parallel* consumers:
/// chain ensembles (many chains over one probe set share every density
/// evaluation) and the speculative prefetch pipeline (workers warm the
/// cache ahead of the chain thread).
///
/// Lookups take a read lock; misses compute the SPD pass *outside* any lock
/// (each caller thread supplies its own [`ViewCalculator`], usually checked
/// out of an [`mhbc_spd::SpdWorkspacePool`] bound to the same view) and
/// then insert under a short write lock. Duplicate concurrent computations
/// of the same row are possible but harmless (last write wins with equal
/// values — rows are a pure function of the view and the row key) — which
/// is why [`SharedProbeOracle::cached_sources`], not the miss counter, is
/// the deterministic "distinct SPD passes" figure the pipelined samplers
/// report.
pub struct SharedProbeOracle<'g> {
    view: SpdView<'g>,
    probes: Vec<Vertex>,
    probe_flag: Vec<bool>,
    cache: RwLock<HashMap<u64, Box<[f64]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'g> SharedProbeOracle<'g> {
    /// Shared oracle evaluating directly on `graph`.
    pub fn new(graph: &'g CsrGraph, probes: &[Vertex]) -> Self {
        Self::for_view(SpdView::direct(graph), probes)
    }

    /// Shared oracle evaluating through `view` (direct or reduced). With a
    /// reduction, every probe must be retained.
    pub fn for_view(view: SpdView<'g>, probes: &[Vertex]) -> Self {
        let probe_flag = validate_probes(&view, probes);
        SharedProbeOracle {
            view,
            probes: probes.to_vec(),
            probe_flag,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The probe set.
    pub fn probes(&self) -> &[Vertex] {
        &self.probes
    }

    /// The view this oracle evaluates against.
    pub fn view(&self) -> SpdView<'g> {
        self.view
    }

    /// Runs `f` over the cached (or freshly computed) row
    /// `δ_{source•}(probes)` without copying it out.
    pub fn with_deps<T>(
        &self,
        source: Vertex,
        calc: &mut ViewCalculator<'g>,
        f: impl FnOnce(&[f64]) -> T,
    ) -> T {
        let key = self.view.row_key(source, self.probe_flag[source as usize]);
        if let Some(row) = self.cache.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return f(row);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut row = Vec::with_capacity(self.probes.len());
        calc.dependency_on_many(source, &self.probes, &mut row);
        let out = f(&row);
        self.cache.write().insert(key, row.into_boxed_slice());
        out
    }

    /// `δ_{source•}(r)` for every probe, using `calc` for cache misses.
    pub fn deps(&self, source: Vertex, calc: &mut ViewCalculator<'g>) -> Vec<f64> {
        self.with_deps(source, calc, |row| row.to_vec())
    }

    /// Single-probe convenience (no allocation).
    pub fn dep(&self, source: Vertex, idx: usize, calc: &mut ViewCalculator<'g>) -> f64 {
        self.with_deps(source, calc, |row| row[idx])
    }

    /// Ensures `source`'s row is cached, computing it with `calc` if
    /// needed; returns whether a computation happened. This is the prefetch
    /// workers' entry point: it touches no statistics, so warming the cache
    /// never perturbs the chain-observable hit/miss history.
    pub fn warm(&self, source: Vertex, calc: &mut ViewCalculator<'g>) -> bool {
        let key = self.view.row_key(source, self.probe_flag[source as usize]);
        if self.cache.read().contains_key(&key) {
            return false;
        }
        let mut row = Vec::with_capacity(self.probes.len());
        calc.dependency_on_many(source, &self.probes, &mut row);
        self.cache.write().insert(key, row.into_boxed_slice());
        true
    }

    /// Cache statistics (aggregated over all threads).
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct dependency rows cached — the deterministic
    /// SPD-pass count for a run whose proposal set is fixed (see type docs).
    pub fn cached_sources(&self) -> usize {
        self.cache.read().len()
    }

    /// The cached rows as `(row key, dependency row)` pairs, sorted by key
    /// (see [`ProbeOracle::snapshot_rows`]). At a segment boundary of the
    /// speculative pipeline this set is deterministic: it equals the rows
    /// of every proposal consumed so far, whatever the thread count —
    /// workers never speculate past the committed iteration bound.
    pub fn snapshot_rows(&self) -> Vec<(u64, Vec<f64>)> {
        let cache = self.cache.read();
        let mut rows: Vec<(u64, Vec<f64>)> =
            cache.iter().map(|(&k, row)| (k, row.to_vec())).collect();
        rows.sort_by_key(|&(k, _)| k);
        rows
    }

    /// Restores a checkpointed cache (counterpart of
    /// [`ProbeOracle::restore_cache`] for the shared oracle).
    pub fn restore_cache(&self, rows: Vec<(u64, Vec<f64>)>, stats: OracleStats) {
        let mut cache = self.cache.write();
        debug_assert!(cache.is_empty(), "restore into a fresh oracle");
        for (key, row) in rows {
            cache.insert(key, row.into_boxed_slice());
        }
        self.hits.store(stats.hits, Ordering::Relaxed);
        self.misses.store(stats.misses, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use mhbc_graph::reduce::{reduce, ReduceLevel};
    use mhbc_spd::DependencyCalculator;

    #[test]
    fn caches_repeat_evaluations() {
        let g = generators::barbell(4, 2);
        let mut o = ProbeOracle::new(&g, &[4]);
        let first = o.dep(0, 0);
        let second = o.dep(0, 0);
        assert_eq!(first, second);
        assert_eq!(o.stats(), OracleStats { hits: 1, misses: 1 });
        assert_eq!(o.spd_passes(), 1);
    }

    #[test]
    fn values_match_direct_kernel() {
        let g = generators::barbell(4, 2);
        let probes = [0u32, 4, 5, 9];
        let mut o = ProbeOracle::new(&g, &probes);
        let mut calc = DependencyCalculator::new(&g);
        for src in 0..g.num_vertices() as Vertex {
            let row = o.deps(src).to_vec();
            for (i, &p) in probes.iter().enumerate() {
                assert_eq!(row[i], calc.dependency_on(&g, src, p), "src {src} probe {p}");
            }
        }
    }

    #[test]
    fn reduced_oracle_coalesces_equivalent_sources() {
        // Star: all leaves share a dependency row (one SPD pass covers
        // them), the centre has its own, and the probe leaf is isolated
        // from its twins by the probe exception.
        let g = generators::star(8);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        let probe = 0u32; // the centre (retained; leaves are pruned)
        assert!(red.is_retained(probe));
        let mut o = ProbeOracle::for_view(view, &[probe]);
        let mut reference = DependencyCalculator::new(&g);
        for v in 0..g.num_vertices() as Vertex {
            let got = o.dep(v, 0);
            let want = reference.dependency_on(&g, v, probe);
            assert!((got - want).abs() < 1e-12, "source {v}: {got} vs {want}");
        }
        // 8 sources evaluated, but leaves coalesce: centre + leaf class.
        assert_eq!(o.cached_sources(), 2);
        assert_eq!(o.stats().misses, 2);
        assert_eq!(o.stats().hits, 6);
    }

    #[test]
    #[should_panic(expected = "pruned by the reduction")]
    fn pruned_probes_are_rejected_at_construction() {
        let g = generators::lollipop(5, 3);
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        let _ = ProbeOracle::for_view(SpdView::preprocessed(&g, &red), &[7]);
    }

    #[test]
    fn capacity_limit_evicts_one_at_a_time() {
        let g = generators::cycle(10);
        let mut o = ProbeOracle::new(&g, &[0]).with_capacity_limit(3);
        for v in 0..9u32 {
            let _ = o.dep(v, 0);
        }
        assert_eq!(o.cached_sources(), 3, "ring stays full, never flushed");
        // Values still correct after evictions.
        let mut calc = DependencyCalculator::new(&g);
        assert_eq!(o.dep(7, 0), calc.dependency_on(&g, 7, 0));
    }

    #[test]
    fn second_chance_keeps_the_hot_working_set() {
        let g = generators::cycle(16);
        let mut o = ProbeOracle::new(&g, &[0]).with_capacity_limit(4);
        // Establish a hot pair {1, 2} and keep touching it while a stream
        // of one-shot sources (3..11) flows through the cache.
        let _ = o.dep(1, 0);
        let _ = o.dep(2, 0);
        for v in 3..11u32 {
            let _ = o.dep(v, 0);
            let _ = o.dep(1, 0);
            let _ = o.dep(2, 0);
        }
        let stats = o.stats();
        // Every re-touch of 1 and 2 must have been a hit: the CLOCK hand
        // recycles the unreferenced one-shot slots instead.
        assert_eq!(stats.hits, 2 * 8, "hot set evicted: {stats:?}");
        assert_eq!(stats.misses, 2 + 8);
        assert_eq!(o.cached_sources(), 4);
    }

    #[test]
    fn wholesale_flush_would_have_lost_the_hot_set() {
        // Documentation-by-test of the old behaviour's cost: with the
        // CLOCK policy the hit rate of a skewed access pattern stays high
        // even at a tiny capacity.
        let g = generators::cycle(32);
        let mut o = ProbeOracle::new(&g, &[0]).with_capacity_limit(2);
        for round in 0..50u32 {
            let _ = o.dep(0, 0); // hot
            let _ = o.dep(1 + (round % 30), 0); // cold stream
        }
        assert!(o.stats().hit_rate() > 0.45, "hit rate {:?}", o.stats());
    }

    #[test]
    fn shared_oracle_matches_direct_kernel() {
        let g = generators::barbell(4, 2);
        let probes = [0u32, 4, 9];
        let shared = SharedProbeOracle::new(&g, &probes);
        let mut calc = ViewCalculator::new(SpdView::direct(&g));
        let mut reference = DependencyCalculator::new(&g);
        for src in 0..g.num_vertices() as Vertex {
            let row = shared.deps(src, &mut calc);
            for (i, &p) in probes.iter().enumerate() {
                assert_eq!(row[i], reference.dependency_on(&g, src, p));
            }
        }
        // Second sweep is pure cache hits.
        for src in 0..g.num_vertices() as Vertex {
            let _ = shared.deps(src, &mut calc);
        }
        let stats = shared.stats();
        assert_eq!(stats.misses, g.num_vertices() as u64);
        assert_eq!(stats.hits, g.num_vertices() as u64);
        assert_eq!(shared.cached_sources(), g.num_vertices());
    }

    #[test]
    fn shared_reduced_oracle_coalesces_rows() {
        let g = generators::star(8);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        let shared = SharedProbeOracle::for_view(view, &[0]);
        let mut calc = ViewCalculator::new(view);
        for v in 0..g.num_vertices() as Vertex {
            let _ = shared.dep(v, 0, &mut calc);
        }
        assert_eq!(shared.cached_sources(), 2, "centre + coalesced leaf class");
    }

    #[test]
    fn warm_populates_without_touching_stats() {
        let g = generators::barbell(4, 1);
        let shared = SharedProbeOracle::new(&g, &[4]);
        let mut calc = ViewCalculator::new(SpdView::direct(&g));
        assert!(shared.warm(0, &mut calc));
        assert!(!shared.warm(0, &mut calc), "second warm is a no-op");
        assert_eq!(shared.stats(), OracleStats::default());
        // The chain's subsequent read is a hit.
        let _ = shared.dep(0, 0, &mut calc);
        assert_eq!(shared.stats(), OracleStats { hits: 1, misses: 0 });
    }

    #[test]
    fn shared_oracle_concurrent_consistency() {
        let g = generators::barbell(6, 2);
        let shared = SharedProbeOracle::new(&g, &[6]);
        let n = g.num_vertices() as Vertex;
        crossbeam::thread::scope(|scope| {
            for t in 0..4 {
                let shared = &shared;
                let g = &g;
                scope.spawn(move |_| {
                    let mut calc = ViewCalculator::new(SpdView::direct(g));
                    let mut reference = DependencyCalculator::new(g);
                    for i in 0..n {
                        let v = (i + t * 3) % n;
                        let got = shared.dep(v, 0, &mut calc);
                        assert_eq!(got, reference.dependency_on(g, v, 6));
                    }
                });
            }
        })
        .expect("threads joined");
        assert_eq!(shared.cached_sources(), g.num_vertices());
    }

    #[test]
    fn hit_rate_reporting() {
        let g = generators::path(5);
        let mut o = ProbeOracle::new(&g, &[2]);
        assert_eq!(o.stats().hit_rate(), 0.0);
        let _ = o.dep(0, 0);
        let _ = o.dep(0, 0);
        let _ = o.dep(0, 0);
        assert!((o.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
