//! Speculative density prefetching for the independence-chain samplers.
//!
//! Every MH iteration costs one SPD pass for the *proposed* source (§4.1),
//! and the paper's proposal is an independence chain (`q(·|x) = 1/n`,
//! §4.2): the proposal at step `t` does not depend on the chain's state, so
//! the entire proposal sequence is a pure function of the seed. This module
//! exploits that: worker threads replay the chain's proposal stream (a
//! [`StreamSplit`] replica), evaluate the upcoming proposals' densities
//! into a [`SharedProbeOracle`] ahead of time, and the chain thread
//! consumes accept/reject decisions in order, almost always hitting the
//! warmed cache.
//!
//! ## Determinism guarantee
//!
//! The pipelined run is **bit-identical** to the sequential sampler, by
//! construction rather than by tolerance:
//!
//! - the accept/reject RNG stream never leaves the chain thread (see
//!   [`mhbc_mcmc::MetropolisHastings`]'s split streams);
//! - workers only *warm* the cache — dependency rows are a deterministic
//!   function of the evaluation view and the source's row key (graph and
//!   source directly; with a reduction active, the reduced CSR and the
//!   source's equivalence class), so a warmed value equals the value the
//!   chain would have computed itself;
//! - the chain thread runs the exact same accumulation code
//!   (`SingleAccumulator` / `JointAccumulator`) in the exact same order as
//!   the sequential sampler; and
//! - the reported `spd_passes` is the number of *distinct* sources
//!   evaluated (`SharedProbeOracle::cached_sources`), which equals the
//!   sequential miss count because the proposal set is identical.
//!
//! Hence `bc`, `bc_corrected`, acceptance counts, and `spd_passes` agree
//! exactly across `threads = 1, 2, 8, …` — the property the
//! `prefetch_determinism` integration tests pin down. Only the cache
//! hit/miss *split* (an implementation statistic) may vary with timing.
//!
//! ## Speculation window and fallback
//!
//! Workers run at most [`PrefetchConfig::depth`] proposals ahead of the
//! chain (a courtesy bound on cache growth ahead of consumption), yielding
//! when the window is full. If the chain outpaces its workers it computes
//! the density itself — nobody ever blocks on a slow worker. Proposals that
//! are *state-dependent* (the F8 degree-walk ablation) cannot be replayed
//! ahead of time; [`mhbc_mcmc::Proposal::propose_iid`] returns `None` for
//! them and the entry points here fall back to the sequential samplers, as
//! they also do for `threads <= 1`.

use crate::checkpoint::CheckpointKind;
use crate::engine::{
    open_checkpoint, AdaptiveReport, CheckpointDriver, EngineConfig, EngineDriver, EstimationEngine,
};
use crate::joint::{self, JointAccumulator, JointProposal, JointState};
use crate::oracle::SharedProbeOracle;
use crate::single::{self, SingleAccumulator, SingleSpaceConfig, SingleSpaceEstimate};
use crate::{
    CoreError, JointSpaceConfig, JointSpaceEstimate, JointSpaceSampler, SingleSpaceSampler,
};
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_mcmc::{
    fn_target, FnTarget, MetropolisHastings, Proposal, RngSnapshot, StreamSplit, UniformProposal,
};
use mhbc_spd::{SpdView, SpdWorkspacePool};
use rand::{rngs::SmallRng, RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Threading knobs for the speculative pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Total density-evaluation threads, chain thread included: `threads`
    /// of 0 or 1 runs the plain sequential sampler; `t >= 2` spawns
    /// `t - 1` prefetch workers alongside the chain thread.
    pub threads: usize,
    /// How many proposals ahead of the chain the workers may speculate
    /// (clamped to at least the worker count). Larger windows tolerate
    /// burstier schedulers; the cache holds at most `depth` rows beyond
    /// what the chain has consumed.
    pub depth: u64,
}

impl PrefetchConfig {
    /// Default speculation depth.
    pub const DEFAULT_DEPTH: u64 = 1024;

    /// Sequential execution (no workers).
    pub fn sequential() -> Self {
        PrefetchConfig { threads: 1, depth: Self::DEFAULT_DEPTH }
    }

    /// `threads` total evaluation threads with the default window.
    pub fn with_threads(threads: usize) -> Self {
        PrefetchConfig { threads, depth: Self::DEFAULT_DEPTH }
    }

    /// Overrides the speculation window.
    pub fn with_depth(mut self, depth: u64) -> Self {
        self.depth = depth;
        self
    }

    /// Whether this configuration actually spawns workers.
    pub fn is_parallel(&self) -> bool {
        self.threads >= 2
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Validates a single-space configuration, returning `n` (the *original*
/// vertex count — the sampler state space, whatever the view's reduction).
pub(crate) fn validate_single(
    view: &SpdView<'_>,
    r: Vertex,
    config: &SingleSpaceConfig,
) -> Result<usize, CoreError> {
    let n = view.num_vertices();
    if n < 3 {
        return Err(CoreError::GraphTooSmall { num_vertices: n });
    }
    if r as usize >= n {
        return Err(CoreError::ProbeOutOfRange { probe: r, num_vertices: n });
    }
    if !view.is_retained(r) {
        return Err(CoreError::PrunedProbe { probe: r });
    }
    if let Some(v0) = config.initial {
        if v0 as usize >= n {
            return Err(CoreError::ProbeOutOfRange { probe: v0, num_vertices: n });
        }
    }
    Ok(n)
}

/// Derives a single-space chain's `(initial state, proposal stream,
/// acceptance stream)` from its seed — the one canonical derivation used by
/// the sequential sampler, the pipelined chain thread, *and* the workers'
/// stream replicas, so all three agree draw for draw.
pub(crate) fn derive_streams(
    seed: u64,
    initial: Option<Vertex>,
    n: usize,
) -> (Vertex, SmallRng, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let initial = initial.unwrap_or_else(|| rng.random_range(0..n as Vertex));
    let accept_rng = rng.split_stream();
    (initial, rng, accept_rng)
}

/// Joint-space analogue of [`derive_streams`].
pub(crate) fn derive_joint_streams(
    seed: u64,
    initial: Option<(usize, Vertex)>,
    k: usize,
    n: usize,
) -> (JointState, SmallRng, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let initial: JointState = match initial {
        Some((i, v)) => (i as u32, v),
        None => (rng.random_range(0..k as u32), rng.random_range(0..n as Vertex)),
    };
    let accept_rng = rng.split_stream();
    (initial, rng, accept_rng)
}

/// [`EngineDriver`] for the chain thread of the speculative single-space
/// pipeline: the same accumulation code as the sequential sampler, reading
/// densities through the shared pre-warmed cache, with segment boundaries
/// publishing the committed iteration bound to the workers.
struct PipelineSingleDriver<'a, 'g, F: FnMut(&Vertex) -> f64> {
    chain: MetropolisHastings<FnTarget<Vertex, F>, UniformProposal, SmallRng>,
    acc: SingleAccumulator,
    burn_in: u64,
    n: usize,
    pacing: &'a Pacing,
    proposal_sum: f64,
    max_proposed: f64,
    // Checkpoint context (header + payload identity).
    oracle: &'a SharedProbeOracle<'g>,
    config: &'a SingleSpaceConfig,
    r: Vertex,
}

impl<F: FnMut(&Vertex) -> f64> EngineDriver for PipelineSingleDriver<'_, '_, F> {
    type Output = (SingleAccumulator, f64);

    fn prime(&mut self, out: &mut Vec<f64>) {
        if self.acc.iteration() == 0 && self.acc.counted() == 1 {
            out.push(self.chain.current_density());
        }
    }

    fn run_segment(&mut self, iters: u64, out: &mut Vec<f64>) {
        let start = self.acc.iteration();
        // Monotone raise (fixed-budget runs pre-commit everything; never
        // lower the bound back to a segment edge).
        self.pacing.committed.fetch_max(start + iters, Ordering::AcqRel);
        for t in start + 1..=start + iters {
            self.pacing.progress.store(t, Ordering::Release);
            let o = self.chain.step();
            self.acc.absorb(&o);
            self.proposal_sum += o.proposed_density;
            if o.proposed_density > self.max_proposed {
                self.max_proposed = o.proposed_density;
            }
            if self.acc.iteration() > self.burn_in {
                out.push(o.density);
            }
        }
    }

    fn iterations(&self) -> u64 {
        self.acc.iteration()
    }

    fn scale(&self) -> f64 {
        self.n as f64 - 1.0
    }

    fn observed_mu(&self) -> Option<f64> {
        let t = self.acc.iteration();
        if t == 0 || self.proposal_sum <= 0.0 {
            return None;
        }
        Some(self.max_proposed / (self.proposal_sum / t as f64))
    }

    fn finish(self) -> (SingleAccumulator, f64) {
        (self.acc, self.chain.stats().acceptance_rate())
    }
}

impl<F: FnMut(&Vertex) -> f64> CheckpointDriver for PipelineSingleDriver<'_, '_, F> {
    fn kind(&self) -> CheckpointKind {
        CheckpointKind::Single
    }

    fn view(&self) -> SpdView<'_> {
        self.oracle.view()
    }

    fn save(&self, w: &mut crate::checkpoint::Writer) {
        // Same payload as the sequential driver; at a segment boundary the
        // shared cache deterministically holds the rows of every consumed
        // proposal (see [`Pacing`]), so `cached_sources` plays the role of
        // the sequential `spd_passes`.
        single::save_single_payload(
            w,
            self.r,
            self.config,
            &self.chain.snapshot(),
            &self.acc,
            self.proposal_sum,
            self.max_proposed,
            self.oracle.cached_sources() as u64,
            self.oracle.stats(),
            self.oracle.snapshot_rows(),
        );
    }
}

/// Shared pacing state between the chain thread and its prefetch workers.
///
/// `progress` is how far the chain has consumed; `committed` is how far the
/// engine has *guaranteed* execution (raised segment by segment); `done`
/// flips when no further iterations will ever be committed. Workers warm
/// only proposals with `t ≤ committed` — under adaptive stopping the total
/// iteration count is unknown upfront, and a worker that warmed past an
/// early stop would inflate the cache (and with it the deterministic
/// `spd_passes` figure) relative to the sequential run. At every segment
/// boundary the cache therefore holds *exactly* the rows of the proposals
/// consumed so far, whatever the thread count.
pub(crate) struct Pacing {
    pub(crate) progress: AtomicU64,
    pub(crate) committed: AtomicU64,
    pub(crate) done: AtomicBool,
}

impl Pacing {
    /// Pacing with `committed` pre-set (fixed-budget runs commit the whole
    /// budget upfront, reproducing the pre-adaptive protocol exactly).
    pub(crate) fn committed_to(limit: u64) -> Self {
        Pacing {
            progress: AtomicU64::new(0),
            committed: AtomicU64::new(limit),
            done: AtomicBool::new(false),
        }
    }
}

/// Releases prefetch workers on drop (normal completion *or* panic): no
/// further iterations will be committed, so workers waiting past
/// `committed` exit instead of spinning forever.
pub(crate) struct PacingGuard<'a>(pub(crate) &'a Pacing);

impl Drop for PacingGuard<'_> {
    fn drop(&mut self) {
        self.0.done.store(true, Ordering::Release);
        // Also release the depth window (mirrors the old Progress drop).
        self.0.progress.store(u64::MAX, Ordering::Release);
    }
}

/// A worker's view of the speculation window: which strided share of the
/// proposal stream it owns and how far past the chain it may run.
pub(crate) struct Lane<'a> {
    pub(crate) lane: u64,
    pub(crate) lanes: u64,
    pub(crate) depth: u64,
    pub(crate) pacing: &'a Pacing,
}

/// One prefetch worker: replays the proposal stream from iteration `start`
/// to at most `max`, warming its strided share
/// `{t : (t - 1) ≡ lane (mod lanes)}` of the upcoming proposals, never
/// speculating more than `depth` past the chain's progress nor past the
/// committed iteration bound (see [`Pacing`]). The one copy of the
/// speculation-window protocol — `run_single`, `run_joint`, and the
/// ensemble's per-chain squads all spawn exactly this.
pub(crate) fn prefetch_lane<P, S>(
    mut proposal: P,
    mut rng: SmallRng,
    start: u64,
    max: u64,
    window: Lane<'_>,
    mut warm: impl FnMut(S),
) where
    P: Proposal<S>,
{
    for t in start..=max {
        let Some(state) = proposal.propose_iid(&mut rng) else {
            return; // state-dependent proposal: nothing to speculate on
        };
        if (t - 1) % window.lanes == window.lane {
            loop {
                let committed = window.committed();
                if t <= committed && t <= window.window_edge() {
                    break;
                }
                if t > committed && window.pacing.done.load(Ordering::Acquire) {
                    return; // the run stopped before iteration t
                }
                std::thread::yield_now();
            }
            warm(state);
        }
    }
}

impl Lane<'_> {
    fn committed(&self) -> u64 {
        self.pacing.committed.load(Ordering::Acquire)
    }

    fn window_edge(&self) -> u64 {
        self.pacing.progress.load(Ordering::Acquire).saturating_add(self.depth)
    }
}

/// A consumer of checkpoint file images, called at every segment boundary
/// (the CLI writes them to disk).
pub type CheckpointSink<'x> = dyn FnMut(Vec<u8>) -> Result<(), CoreError> + 'x;

/// Runs a checkpointable engine to completion, feeding every segment
/// boundary's checkpoint to `sink` when one is given.
fn drive<D: CheckpointDriver>(
    engine: EstimationEngine<D>,
    sink: Option<&mut CheckpointSink<'_>>,
) -> Result<(D::Output, AdaptiveReport), CoreError> {
    match sink {
        None => Ok(engine.run()),
        Some(f) => engine.run_with(|e| f(e.checkpoint())),
    }
}

/// Runs the single-space sampler (§4.2) with `prefetch.threads` evaluation
/// threads. Bit-identical to `SingleSpaceSampler::run` for every thread
/// count — see the module docs for why — and falls back to the sequential
/// sampler when `threads <= 1`.
pub fn run_single(
    g: &CsrGraph,
    r: Vertex,
    config: &SingleSpaceConfig,
    prefetch: &PrefetchConfig,
) -> Result<SingleSpaceEstimate, CoreError> {
    run_single_view(SpdView::direct(g), r, config, prefetch)
}

/// [`run_single`] evaluating densities through `view` — the preprocessing
/// entry point. The chain, its proposal stream, and the estimator all live
/// in **original** vertex ids; see [`SingleSpaceSampler::for_view`] for why
/// the stationary distribution needs no correction. Output is bit-identical
/// across thread counts for a fixed view.
pub fn run_single_view(
    view: SpdView<'_>,
    r: Vertex,
    config: &SingleSpaceConfig,
    prefetch: &PrefetchConfig,
) -> Result<SingleSpaceEstimate, CoreError> {
    run_single_view_adaptive(view, r, config, EngineConfig::fixed(), prefetch, None)
        .map(|(est, _)| est)
}

/// The adaptive entry point of the single-space pipeline: executes through
/// a segmented [`EstimationEngine`] (so a [`mhbc_mcmc::StoppingRule`] can
/// end the run early), optionally writing a checkpoint at every segment
/// boundary, with `prefetch.threads` evaluation threads.
///
/// Bit-identity holds in both directions: a `FixedIterations` run equals
/// the pre-engine pipeline exactly, and an adaptive run's estimates,
/// stopping point, and `spd_passes` agree across all thread counts —
/// stopping decisions are pure functions of the observation series, and
/// workers never warm past the committed iteration bound (the pacing
/// protocol),
/// so the cache holds exactly the consumed proposals' rows at every
/// boundary.
pub fn run_single_view_adaptive(
    view: SpdView<'_>,
    r: Vertex,
    config: &SingleSpaceConfig,
    engine_cfg: EngineConfig,
    prefetch: &PrefetchConfig,
    sink: Option<&mut CheckpointSink<'_>>,
) -> Result<(SingleSpaceEstimate, AdaptiveReport), CoreError> {
    let n = validate_single(&view, r, config)?;
    if !prefetch.is_parallel() {
        let engine = SingleSpaceSampler::for_view(view, r, config.clone())?.into_engine(engine_cfg);
        return drive(engine, sink);
    }
    let (initial, prop_rng, acc_rng) = derive_streams(config.seed, config.initial, n);
    let oracle = SharedProbeOracle::for_view(view, &[r]);
    parallel_single(
        view, r, config, engine_cfg, prefetch, sink, &oracle, None, initial, prop_rng, acc_rng, n,
    )
}

/// Resumes a checkpointed single-space run against `view` (same graph,
/// same preprocess level — validated; any kernel mode) with
/// `prefetch.threads` evaluation threads. The resumed run is bit-identical
/// to an uninterrupted one whatever the thread counts on either side of
/// the checkpoint.
pub fn resume_single_view(
    view: SpdView<'_>,
    bytes: &[u8],
    prefetch: &PrefetchConfig,
    sink: Option<&mut CheckpointSink<'_>>,
) -> Result<(SingleSpaceEstimate, AdaptiveReport), CoreError> {
    if !prefetch.is_parallel() {
        let engine = crate::engine::resume_single(view, bytes)?;
        return drive(engine, sink);
    }
    let (state, mut rdr) = open_checkpoint(&view, bytes, CheckpointKind::Single)?;
    let mut parts = single::decode_single_parts(&view, &mut rdr)?;
    let oracle = SharedProbeOracle::for_view(view, &[parts.r]);
    // Hand the decoded rows over without duplicating them (a checkpointed
    // cache can hold thousands of length-k rows).
    oracle.restore_cache(std::mem::take(&mut parts.rows), parts.stats);
    let prop_rng = SmallRng::restore_state(parts.snap.proposal_rng);
    let acc_rng = SmallRng::restore_state(parts.snap.accept_rng);
    parallel_single(
        view,
        parts.r,
        &parts.config.clone(),
        state.config,
        prefetch,
        sink,
        &oracle,
        Some((parts, state.monitor, state.segments, state.budget)),
        0,
        prop_rng,
        acc_rng,
        view.num_vertices(),
    )
}

/// The shared parallel body of [`run_single_view_adaptive`] and
/// [`resume_single_view`]: spawns the prefetch squad, then runs the chain
/// thread through the segmented engine.
#[allow(clippy::too_many_arguments)]
fn parallel_single(
    view: SpdView<'_>,
    r: Vertex,
    config: &SingleSpaceConfig,
    engine_cfg: EngineConfig,
    prefetch: &PrefetchConfig,
    sink: Option<&mut CheckpointSink<'_>>,
    oracle: &SharedProbeOracle<'_>,
    resume: Option<(single::SingleResumeParts, mhbc_mcmc::DiagnosticsMonitor, u64, u64)>,
    initial: Vertex,
    prop_rng: SmallRng,
    acc_rng: SmallRng,
    n: usize,
) -> Result<(SingleSpaceEstimate, AdaptiveReport), CoreError> {
    let workers = (prefetch.threads - 1) as u64;
    let depth = prefetch.depth.max(workers);
    let budget = match &resume {
        None => config.iterations,
        Some((_, _, _, budget)) => *budget,
    };
    let start = resume.as_ref().map_or(1, |(parts, _, _, _)| parts.acc.iteration() + 1);
    // Fixed-budget runs commit everything upfront (the historical
    // behaviour); adaptive runs commit segment by segment.
    let committed0 = match engine_cfg.stopping {
        mhbc_mcmc::StoppingRule::FixedIterations => budget,
        _ => start.saturating_sub(1),
    };
    let pacing = Pacing::committed_to(committed0);
    let pool = SpdWorkspacePool::for_view_workers(view, prefetch.threads);
    // Workers replay the proposal stream from the chain's current position.
    let worker_rng = prop_rng.clone();

    let out = crossbeam::thread::scope(|scope| {
        for lane in 0..workers {
            let wrng = worker_rng.clone();
            let (pool, pacing) = (&pool, &pacing);
            scope.spawn(move |_| {
                let mut calc = pool.checkout();
                prefetch_lane(
                    UniformProposal::new(n),
                    wrng,
                    start,
                    budget,
                    Lane { lane, lanes: workers, depth, pacing },
                    |v: Vertex| {
                        oracle.warm(v, &mut calc);
                    },
                );
            });
        }

        // The chain thread: identical code path to the sequential sampler,
        // reading densities through the shared (pre-warmed) cache.
        let mut calc = pool.checkout();
        let target = fn_target(|v: &Vertex| oracle.dep(*v, 0, &mut calc));
        let guard = PacingGuard(&pacing);
        let (engine, run_config);
        match resume {
            None => {
                let chain = MetropolisHastings::with_streams(
                    target,
                    UniformProposal::new(n),
                    initial,
                    prop_rng,
                    acc_rng,
                );
                let mut acc = SingleAccumulator::new(config, n);
                acc.absorb_initial(chain.current_density());
                run_config = config.clone();
                let driver = PipelineSingleDriver {
                    chain,
                    acc,
                    burn_in: run_config.burn_in,
                    n,
                    pacing: &pacing,
                    proposal_sum: 0.0,
                    max_proposed: 0.0,
                    oracle,
                    config: &run_config,
                    r,
                };
                engine = EstimationEngine::new(driver, budget, engine_cfg);
            }
            Some((parts, monitor, segments, _)) => {
                let chain =
                    MetropolisHastings::restore(target, UniformProposal::new(n), parts.snap);
                run_config = parts.config;
                let driver = PipelineSingleDriver {
                    chain,
                    acc: parts.acc,
                    burn_in: run_config.burn_in,
                    n,
                    pacing: &pacing,
                    proposal_sum: parts.proposal_sum,
                    max_proposed: parts.max_proposed,
                    oracle,
                    config: &run_config,
                    r,
                };
                engine =
                    EstimationEngine::with_state(driver, budget, engine_cfg, monitor, segments);
            }
        }
        let out = drive(engine, sink);
        drop(guard);
        out
    })
    .expect("pipeline threads joined");

    let ((acc, acceptance_rate), report) = out?;
    Ok((acc.finish(r, acceptance_rate, oracle.cached_sources() as u64, oracle.stats()), report))
}

/// Runs the joint-space sampler (§4.3) with `prefetch.threads` evaluation
/// threads; bit-identical to `JointSpaceSampler::run`, with sequential
/// fallback for `threads <= 1`.
pub fn run_joint(
    g: &CsrGraph,
    probes: &[Vertex],
    config: &JointSpaceConfig,
    prefetch: &PrefetchConfig,
) -> Result<JointSpaceEstimate, CoreError> {
    run_joint_view(SpdView::direct(g), probes, config, prefetch)
}

/// [`run_joint`] evaluating densities through `view`; every probe must
/// survive the reduction ([`CoreError::PrunedProbe`] otherwise).
///
/// The threaded joint pipeline runs the full fixed budget (adaptive
/// stopping for probe sets goes through the per-probe
/// [`crate::schedule::ProbeScheduler`][sched] instead, and the sequential
/// joint engine — [`JointSpaceSampler::into_engine`] — supports adaptive
/// rules and checkpointing directly).
///
/// [sched]: crate::schedule::run_probe_schedule
pub fn run_joint_view(
    view: SpdView<'_>,
    probes: &[Vertex],
    config: &JointSpaceConfig,
    prefetch: &PrefetchConfig,
) -> Result<JointSpaceEstimate, CoreError> {
    let (n, k) = joint::validate_joint(&view, probes, config)?;
    if !prefetch.is_parallel() {
        return Ok(JointSpaceSampler::for_view(view, probes, config.clone())?.run());
    }
    let workers = (prefetch.threads - 1) as u64;
    let depth = prefetch.depth.max(workers);
    let (initial, prop_rng, acc_rng) = derive_joint_streams(config.seed, config.initial, k, n);
    let oracle = SharedProbeOracle::for_view(view, probes);
    let pool = SpdWorkspacePool::for_view_workers(view, prefetch.threads + 1);
    let iterations = config.iterations;
    let pacing = Pacing::committed_to(iterations);

    let (acc, acceptance_rate) = crossbeam::thread::scope(|scope| {
        for lane in 0..workers {
            let wrng = prop_rng.clone();
            let (oracle, pool, pacing) = (&oracle, &pool, &pacing);
            scope.spawn(move |_| {
                let mut calc = pool.checkout();
                prefetch_lane(
                    JointProposal { k: k as u32, n: n as u32 },
                    wrng,
                    1,
                    iterations,
                    Lane { lane, lanes: workers, depth, pacing },
                    |(_, v): JointState| {
                        oracle.warm(v, &mut calc);
                    },
                );
            });
        }

        let mut calc = pool.checkout();
        let mut absorb_calc = pool.checkout();
        let oracle_ref = &oracle;
        let target = fn_target(|s: &JointState| oracle_ref.dep(s.1, s.0 as usize, &mut calc));
        let mut chain = MetropolisHastings::with_streams(
            target,
            JointProposal { k: k as u32, n: n as u32 },
            initial,
            prop_rng,
            acc_rng,
        );
        let mut acc = JointAccumulator::new(k, config.trace_pair);
        let mut absorb = |chain_state: JointState, acc: &mut JointAccumulator| {
            let (j, v) = chain_state;
            oracle_ref.with_deps(v, &mut absorb_calc, |row| acc.absorb(j as usize, row));
        };
        absorb(*chain.state(), &mut acc);
        let guard = PacingGuard(&pacing);
        for t in 1..=iterations {
            guard.0.progress.store(t, Ordering::Release);
            chain.step();
            absorb(*chain.state(), &mut acc);
        }
        (acc, chain.stats().acceptance_rate())
    })
    .expect("pipeline threads joined");

    Ok(acc.finish(
        probes.to_vec(),
        iterations,
        acceptance_rate,
        oracle.cached_sources() as u64,
        oracle.stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    fn fingerprint(e: &SingleSpaceEstimate) -> (u64, u64, u64, u64) {
        (e.bc.to_bits(), e.bc_corrected.to_bits(), e.acceptance_rate.to_bits(), e.spd_passes)
    }

    #[test]
    fn pipelined_single_matches_sequential_bitwise() {
        let g = generators::barbell(6, 2);
        let config = SingleSpaceConfig::new(2_500, 97);
        let seq = SingleSpaceSampler::new(&g, 6, config.clone()).unwrap().run();
        for threads in [2usize, 3, 5] {
            let par = run_single(&g, 6, &config, &PrefetchConfig::with_threads(threads)).unwrap();
            assert_eq!(fingerprint(&seq), fingerprint(&par), "threads {threads}");
        }
    }

    #[test]
    fn pipelined_joint_matches_sequential_bitwise() {
        let g = generators::barbell(5, 3);
        let probes = [5u32, 6, 7];
        let config = JointSpaceConfig::new(2_000, 41).with_trace_pair(0, 1);
        let seq = JointSpaceSampler::new(&g, &probes, config.clone()).unwrap().run();
        let par = run_joint(&g, &probes, &config, &PrefetchConfig::with_threads(3)).unwrap();
        assert_eq!(seq.counts, par.counts);
        assert_eq!(seq.spd_passes, par.spd_passes);
        assert_eq!(seq.acceptance_rate.to_bits(), par.acceptance_rate.to_bits());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(seq.relative[i][j].to_bits(), par.relative[i][j].to_bits(), "({i},{j})");
            }
        }
        assert_eq!(seq.trace.as_ref().map(|t| t.len()), par.trace.as_ref().map(|t| t.len()));
    }

    #[test]
    fn sequential_fallback_for_thread_counts_below_two() {
        let g = generators::barbell(4, 1);
        let config = SingleSpaceConfig::new(300, 5);
        let seq = SingleSpaceSampler::new(&g, 4, config.clone()).unwrap().run();
        for threads in [0usize, 1] {
            let fb = run_single(&g, 4, &config, &PrefetchConfig::with_threads(threads)).unwrap();
            assert_eq!(fingerprint(&seq), fingerprint(&fb));
        }
    }

    #[test]
    fn tiny_speculation_window_still_exact() {
        let g = generators::lollipop(5, 3);
        let config = SingleSpaceConfig::new(800, 13).with_trace();
        let seq = SingleSpaceSampler::new(&g, 5, config.clone()).unwrap().run();
        let par =
            run_single(&g, 5, &config, &PrefetchConfig::with_threads(3).with_depth(1)).unwrap();
        assert_eq!(fingerprint(&seq), fingerprint(&par));
        assert_eq!(seq.trace.unwrap(), par.trace.unwrap());
        assert_eq!(seq.density_series.unwrap(), par.density_series.unwrap());
    }

    #[test]
    fn pipelined_reduced_single_matches_sequential_bitwise() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(6, 3);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        let config = SingleSpaceConfig::new(1_500, 77);
        let seq = run_single_view(view, 0, &config, &PrefetchConfig::sequential()).unwrap();
        for threads in [2usize, 4] {
            let par =
                run_single_view(view, 0, &config, &PrefetchConfig::with_threads(threads)).unwrap();
            assert_eq!(fingerprint(&seq), fingerprint(&par), "threads {threads}");
        }
    }

    #[test]
    fn pipelined_reduced_run_rejects_pruned_probes() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(6, 3);
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        assert!(matches!(
            run_single_view(view, 8, &SingleSpaceConfig::new(10, 0), &PrefetchConfig::sequential()),
            Err(CoreError::PrunedProbe { probe: 8 })
        ));
    }

    #[test]
    fn adaptive_pipeline_bit_identical_across_thread_counts() {
        use mhbc_mcmc::StoppingRule;
        let g = generators::lollipop(8, 4);
        let view = SpdView::direct(&g);
        let config = SingleSpaceConfig::new(200_000, 5);
        let engine_cfg =
            EngineConfig::adaptive(StoppingRule::TargetStderr { epsilon: 0.01, delta: 0.05 })
                .with_segment(512);
        let (seq, seq_report) = run_single_view_adaptive(
            view,
            9,
            &config,
            engine_cfg,
            &PrefetchConfig::sequential(),
            None,
        )
        .unwrap();
        assert_eq!(seq_report.reason, crate::engine::StopReason::TargetReached);
        assert!(seq_report.iterations < 200_000);
        for threads in [2usize, 4] {
            let (par, par_report) = run_single_view_adaptive(
                view,
                9,
                &config,
                engine_cfg,
                &PrefetchConfig::with_threads(threads),
                None,
            )
            .unwrap();
            // Same stopping point, same estimates, same distinct SPD
            // passes: workers never warm past the committed bound, so the
            // early stop cannot inflate the cache.
            assert_eq!(seq_report.iterations, par_report.iterations, "threads {threads}");
            assert_eq!(fingerprint(&seq), fingerprint(&par), "threads {threads}");
            assert_eq!(seq_report.stderr.to_bits(), par_report.stderr.to_bits());
        }
    }

    #[test]
    fn parallel_resume_matches_uninterrupted_bitwise() {
        let g = generators::lollipop(8, 4);
        let view = SpdView::direct(&g);
        let config = SingleSpaceConfig::new(2_500, 17).with_trace();
        let seq = SingleSpaceSampler::for_view(view, 9, config.clone()).unwrap().run();

        // Checkpoint mid-run from a *parallel* execution…
        let engine_cfg = EngineConfig::fixed().with_segment(250);
        let mut saved: Option<Vec<u8>> = None;
        let mut count = 0;
        let mut sink = |bytes: Vec<u8>| {
            count += 1;
            if count == 4 {
                saved = Some(bytes);
            }
            Ok(())
        };
        let _ = run_single_view_adaptive(
            view,
            9,
            &config,
            engine_cfg,
            &PrefetchConfig::with_threads(3),
            Some(&mut sink),
        )
        .unwrap();
        let bytes = saved.expect("checkpoint captured");

        // …and resume it sequentially and in parallel: all bit-identical.
        for threads in [1usize, 2, 8] {
            let (resumed, _) =
                resume_single_view(view, &bytes, &PrefetchConfig::with_threads(threads), None)
                    .unwrap();
            assert_eq!(fingerprint(&seq), fingerprint(&resumed), "threads {threads}");
            assert_eq!(seq.trace, resumed.trace, "threads {threads}");
        }
    }

    #[test]
    fn pipeline_validates_like_the_sampler() {
        let g = generators::path(10);
        assert!(matches!(
            run_single(&g, 99, &SingleSpaceConfig::new(10, 0), &PrefetchConfig::with_threads(2)),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
        let tiny = generators::path(2);
        assert!(matches!(
            run_single(&tiny, 0, &SingleSpaceConfig::new(10, 0), &PrefetchConfig::with_threads(2)),
            Err(CoreError::GraphTooSmall { .. })
        ));
    }
}
