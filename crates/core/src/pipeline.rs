//! Speculative density prefetching for the independence-chain samplers.
//!
//! Every MH iteration costs one SPD pass for the *proposed* source (§4.1),
//! and the paper's proposal is an independence chain (`q(·|x) = 1/n`,
//! §4.2): the proposal at step `t` does not depend on the chain's state, so
//! the entire proposal sequence is a pure function of the seed. This module
//! exploits that: worker threads replay the chain's proposal stream (a
//! [`StreamSplit`] replica), evaluate the upcoming proposals' densities
//! into a [`SharedProbeOracle`] ahead of time, and the chain thread
//! consumes accept/reject decisions in order, almost always hitting the
//! warmed cache.
//!
//! ## Determinism guarantee
//!
//! The pipelined run is **bit-identical** to the sequential sampler, by
//! construction rather than by tolerance:
//!
//! - the accept/reject RNG stream never leaves the chain thread (see
//!   [`mhbc_mcmc::MetropolisHastings`]'s split streams);
//! - workers only *warm* the cache — dependency rows are a deterministic
//!   function of the evaluation view and the source's row key (graph and
//!   source directly; with a reduction active, the reduced CSR and the
//!   source's equivalence class), so a warmed value equals the value the
//!   chain would have computed itself;
//! - the chain thread runs the exact same accumulation code
//!   (`SingleAccumulator` / `JointAccumulator`) in the exact same order as
//!   the sequential sampler; and
//! - the reported `spd_passes` is the number of *distinct* sources
//!   evaluated (`SharedProbeOracle::cached_sources`), which equals the
//!   sequential miss count because the proposal set is identical.
//!
//! Hence `bc`, `bc_corrected`, acceptance counts, and `spd_passes` agree
//! exactly across `threads = 1, 2, 8, …` — the property the
//! `prefetch_determinism` integration tests pin down. Only the cache
//! hit/miss *split* (an implementation statistic) may vary with timing.
//!
//! ## Speculation window and fallback
//!
//! Workers run at most [`PrefetchConfig::depth`] proposals ahead of the
//! chain (a courtesy bound on cache growth ahead of consumption), yielding
//! when the window is full. If the chain outpaces its workers it computes
//! the density itself — nobody ever blocks on a slow worker. Proposals that
//! are *state-dependent* (the F8 degree-walk ablation) cannot be replayed
//! ahead of time; [`mhbc_mcmc::Proposal::propose_iid`] returns `None` for
//! them and the entry points here fall back to the sequential samplers, as
//! they also do for `threads <= 1`.

use crate::joint::{self, JointAccumulator, JointProposal, JointState};
use crate::oracle::SharedProbeOracle;
use crate::single::{SingleAccumulator, SingleSpaceConfig, SingleSpaceEstimate};
use crate::{
    CoreError, JointSpaceConfig, JointSpaceEstimate, JointSpaceSampler, SingleSpaceSampler,
};
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_mcmc::{fn_target, MetropolisHastings, Proposal, StreamSplit, UniformProposal};
use mhbc_spd::{SpdView, SpdWorkspacePool};
use rand::{rngs::SmallRng, RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Threading knobs for the speculative pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Total density-evaluation threads, chain thread included: `threads`
    /// of 0 or 1 runs the plain sequential sampler; `t >= 2` spawns
    /// `t - 1` prefetch workers alongside the chain thread.
    pub threads: usize,
    /// How many proposals ahead of the chain the workers may speculate
    /// (clamped to at least the worker count). Larger windows tolerate
    /// burstier schedulers; the cache holds at most `depth` rows beyond
    /// what the chain has consumed.
    pub depth: u64,
}

impl PrefetchConfig {
    /// Default speculation depth.
    pub const DEFAULT_DEPTH: u64 = 1024;

    /// Sequential execution (no workers).
    pub fn sequential() -> Self {
        PrefetchConfig { threads: 1, depth: Self::DEFAULT_DEPTH }
    }

    /// `threads` total evaluation threads with the default window.
    pub fn with_threads(threads: usize) -> Self {
        PrefetchConfig { threads, depth: Self::DEFAULT_DEPTH }
    }

    /// Overrides the speculation window.
    pub fn with_depth(mut self, depth: u64) -> Self {
        self.depth = depth;
        self
    }

    /// Whether this configuration actually spawns workers.
    pub fn is_parallel(&self) -> bool {
        self.threads >= 2
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Validates a single-space configuration, returning `n` (the *original*
/// vertex count — the sampler state space, whatever the view's reduction).
pub(crate) fn validate_single(
    view: &SpdView<'_>,
    r: Vertex,
    config: &SingleSpaceConfig,
) -> Result<usize, CoreError> {
    let n = view.num_vertices();
    if n < 3 {
        return Err(CoreError::GraphTooSmall { num_vertices: n });
    }
    if r as usize >= n {
        return Err(CoreError::ProbeOutOfRange { probe: r, num_vertices: n });
    }
    if !view.is_retained(r) {
        return Err(CoreError::PrunedProbe { probe: r });
    }
    if let Some(v0) = config.initial {
        if v0 as usize >= n {
            return Err(CoreError::ProbeOutOfRange { probe: v0, num_vertices: n });
        }
    }
    Ok(n)
}

/// Derives a single-space chain's `(initial state, proposal stream,
/// acceptance stream)` from its seed — the one canonical derivation used by
/// the sequential sampler, the pipelined chain thread, *and* the workers'
/// stream replicas, so all three agree draw for draw.
pub(crate) fn derive_streams(
    seed: u64,
    initial: Option<Vertex>,
    n: usize,
) -> (Vertex, SmallRng, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let initial = initial.unwrap_or_else(|| rng.random_range(0..n as Vertex));
    let accept_rng = rng.split_stream();
    (initial, rng, accept_rng)
}

/// Joint-space analogue of [`derive_streams`].
pub(crate) fn derive_joint_streams(
    seed: u64,
    initial: Option<(usize, Vertex)>,
    k: usize,
    n: usize,
) -> (JointState, SmallRng, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let initial: JointState = match initial {
        Some((i, v)) => (i as u32, v),
        None => (rng.random_range(0..k as u32), rng.random_range(0..n as Vertex)),
    };
    let accept_rng = rng.split_stream();
    (initial, rng, accept_rng)
}

/// Publishes the chain's progress to the workers' speculation window; on
/// drop (normal completion *or* panic) it releases the window entirely so
/// no worker can spin forever.
pub(crate) struct Progress<'a>(pub(crate) &'a AtomicU64);

impl Progress<'_> {
    #[inline]
    pub(crate) fn advance_to(&self, t: u64) {
        self.0.store(t, Ordering::Release);
    }
}

impl Drop for Progress<'_> {
    fn drop(&mut self) {
        self.0.store(u64::MAX, Ordering::Release);
    }
}

/// A worker's view of the speculation window: which strided share of the
/// proposal stream it owns and how far past the chain it may run.
pub(crate) struct Lane<'a> {
    pub(crate) lane: u64,
    pub(crate) lanes: u64,
    pub(crate) depth: u64,
    pub(crate) progress: &'a AtomicU64,
}

/// One prefetch worker: replays the proposal stream, warming its strided
/// share `{t : (t - 1) ≡ lane (mod lanes)}` of the upcoming proposals,
/// never speculating more than `depth` past the chain's progress. The one
/// copy of the speculation-window protocol — `run_single`, `run_joint`,
/// and the ensemble's per-chain squads all spawn exactly this.
pub(crate) fn prefetch_lane<P, S>(
    mut proposal: P,
    mut rng: SmallRng,
    iterations: u64,
    window: Lane<'_>,
    mut warm: impl FnMut(S),
) where
    P: Proposal<S>,
{
    for t in 1..=iterations {
        let Some(state) = proposal.propose_iid(&mut rng) else {
            return; // state-dependent proposal: nothing to speculate on
        };
        if (t - 1) % window.lanes == window.lane {
            while t > window.progress.load(Ordering::Acquire).saturating_add(window.depth) {
                std::thread::yield_now();
            }
            warm(state);
        }
    }
}

/// Runs the single-space sampler (§4.2) with `prefetch.threads` evaluation
/// threads. Bit-identical to `SingleSpaceSampler::run` for every thread
/// count — see the module docs for why — and falls back to the sequential
/// sampler when `threads <= 1`.
pub fn run_single(
    g: &CsrGraph,
    r: Vertex,
    config: &SingleSpaceConfig,
    prefetch: &PrefetchConfig,
) -> Result<SingleSpaceEstimate, CoreError> {
    run_single_view(SpdView::direct(g), r, config, prefetch)
}

/// [`run_single`] evaluating densities through `view` — the preprocessing
/// entry point. The chain, its proposal stream, and the estimator all live
/// in **original** vertex ids; see [`SingleSpaceSampler::for_view`] for why
/// the stationary distribution needs no correction. Output is bit-identical
/// across thread counts for a fixed view.
pub fn run_single_view(
    view: SpdView<'_>,
    r: Vertex,
    config: &SingleSpaceConfig,
    prefetch: &PrefetchConfig,
) -> Result<SingleSpaceEstimate, CoreError> {
    let n = validate_single(&view, r, config)?;
    if !prefetch.is_parallel() {
        return Ok(SingleSpaceSampler::for_view(view, r, config.clone())?.run());
    }
    let workers = (prefetch.threads - 1) as u64;
    let depth = prefetch.depth.max(workers);
    let (initial, prop_rng, acc_rng) = derive_streams(config.seed, config.initial, n);
    let oracle = SharedProbeOracle::for_view(view, &[r]);
    let pool = SpdWorkspacePool::for_view_workers(view, prefetch.threads);
    let progress = AtomicU64::new(0);
    let iterations = config.iterations;

    let (acc, acceptance_rate) = crossbeam::thread::scope(|scope| {
        for lane in 0..workers {
            let wrng = prop_rng.clone();
            let (oracle, pool, progress) = (&oracle, &pool, &progress);
            scope.spawn(move |_| {
                let mut calc = pool.checkout();
                prefetch_lane(
                    UniformProposal::new(n),
                    wrng,
                    iterations,
                    Lane { lane, lanes: workers, depth, progress },
                    |v: Vertex| {
                        oracle.warm(v, &mut calc);
                    },
                );
            });
        }

        // The chain thread: identical code path to the sequential sampler,
        // reading densities through the shared (pre-warmed) cache.
        let mut calc = pool.checkout();
        let oracle_ref = &oracle;
        let target = fn_target(|v: &Vertex| oracle_ref.dep(*v, 0, &mut calc));
        let mut chain = MetropolisHastings::with_streams(
            target,
            UniformProposal::new(n),
            initial,
            prop_rng,
            acc_rng,
        );
        let mut acc = SingleAccumulator::new(config, n);
        acc.absorb_initial(chain.current_density());
        let window = Progress(&progress);
        for t in 1..=iterations {
            window.advance_to(t);
            let out = chain.step();
            acc.absorb(&out);
        }
        (acc, chain.stats().acceptance_rate())
    })
    .expect("pipeline threads joined");

    Ok(acc.finish(r, acceptance_rate, oracle.cached_sources() as u64, oracle.stats()))
}

/// Runs the joint-space sampler (§4.3) with `prefetch.threads` evaluation
/// threads; bit-identical to `JointSpaceSampler::run`, with sequential
/// fallback for `threads <= 1`.
pub fn run_joint(
    g: &CsrGraph,
    probes: &[Vertex],
    config: &JointSpaceConfig,
    prefetch: &PrefetchConfig,
) -> Result<JointSpaceEstimate, CoreError> {
    run_joint_view(SpdView::direct(g), probes, config, prefetch)
}

/// [`run_joint`] evaluating densities through `view`; every probe must
/// survive the reduction ([`CoreError::PrunedProbe`] otherwise).
pub fn run_joint_view(
    view: SpdView<'_>,
    probes: &[Vertex],
    config: &JointSpaceConfig,
    prefetch: &PrefetchConfig,
) -> Result<JointSpaceEstimate, CoreError> {
    let (n, k) = joint::validate_joint(&view, probes, config)?;
    if !prefetch.is_parallel() {
        return Ok(JointSpaceSampler::for_view(view, probes, config.clone())?.run());
    }
    let workers = (prefetch.threads - 1) as u64;
    let depth = prefetch.depth.max(workers);
    let (initial, prop_rng, acc_rng) = derive_joint_streams(config.seed, config.initial, k, n);
    let oracle = SharedProbeOracle::for_view(view, probes);
    let pool = SpdWorkspacePool::for_view_workers(view, prefetch.threads + 1);
    let progress = AtomicU64::new(0);
    let iterations = config.iterations;

    let (acc, acceptance_rate) = crossbeam::thread::scope(|scope| {
        for lane in 0..workers {
            let wrng = prop_rng.clone();
            let (oracle, pool, progress) = (&oracle, &pool, &progress);
            scope.spawn(move |_| {
                let mut calc = pool.checkout();
                prefetch_lane(
                    JointProposal { k: k as u32, n: n as u32 },
                    wrng,
                    iterations,
                    Lane { lane, lanes: workers, depth, progress },
                    |(_, v): JointState| {
                        oracle.warm(v, &mut calc);
                    },
                );
            });
        }

        let mut calc = pool.checkout();
        let mut absorb_calc = pool.checkout();
        let oracle_ref = &oracle;
        let target = fn_target(|s: &JointState| oracle_ref.dep(s.1, s.0 as usize, &mut calc));
        let mut chain = MetropolisHastings::with_streams(
            target,
            JointProposal { k: k as u32, n: n as u32 },
            initial,
            prop_rng,
            acc_rng,
        );
        let mut acc = JointAccumulator::new(k, config.trace_pair);
        let mut absorb = |chain_state: JointState, acc: &mut JointAccumulator| {
            let (j, v) = chain_state;
            oracle_ref.with_deps(v, &mut absorb_calc, |row| acc.absorb(j as usize, row));
        };
        absorb(*chain.state(), &mut acc);
        let window = Progress(&progress);
        for t in 1..=iterations {
            window.advance_to(t);
            chain.step();
            absorb(*chain.state(), &mut acc);
        }
        (acc, chain.stats().acceptance_rate())
    })
    .expect("pipeline threads joined");

    Ok(acc.finish(
        probes.to_vec(),
        iterations,
        acceptance_rate,
        oracle.cached_sources() as u64,
        oracle.stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    fn fingerprint(e: &SingleSpaceEstimate) -> (u64, u64, u64, u64) {
        (e.bc.to_bits(), e.bc_corrected.to_bits(), e.acceptance_rate.to_bits(), e.spd_passes)
    }

    #[test]
    fn pipelined_single_matches_sequential_bitwise() {
        let g = generators::barbell(6, 2);
        let config = SingleSpaceConfig::new(2_500, 97);
        let seq = SingleSpaceSampler::new(&g, 6, config.clone()).unwrap().run();
        for threads in [2usize, 3, 5] {
            let par = run_single(&g, 6, &config, &PrefetchConfig::with_threads(threads)).unwrap();
            assert_eq!(fingerprint(&seq), fingerprint(&par), "threads {threads}");
        }
    }

    #[test]
    fn pipelined_joint_matches_sequential_bitwise() {
        let g = generators::barbell(5, 3);
        let probes = [5u32, 6, 7];
        let config = JointSpaceConfig::new(2_000, 41).with_trace_pair(0, 1);
        let seq = JointSpaceSampler::new(&g, &probes, config.clone()).unwrap().run();
        let par = run_joint(&g, &probes, &config, &PrefetchConfig::with_threads(3)).unwrap();
        assert_eq!(seq.counts, par.counts);
        assert_eq!(seq.spd_passes, par.spd_passes);
        assert_eq!(seq.acceptance_rate.to_bits(), par.acceptance_rate.to_bits());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(seq.relative[i][j].to_bits(), par.relative[i][j].to_bits(), "({i},{j})");
            }
        }
        assert_eq!(seq.trace.as_ref().map(|t| t.len()), par.trace.as_ref().map(|t| t.len()));
    }

    #[test]
    fn sequential_fallback_for_thread_counts_below_two() {
        let g = generators::barbell(4, 1);
        let config = SingleSpaceConfig::new(300, 5);
        let seq = SingleSpaceSampler::new(&g, 4, config.clone()).unwrap().run();
        for threads in [0usize, 1] {
            let fb = run_single(&g, 4, &config, &PrefetchConfig::with_threads(threads)).unwrap();
            assert_eq!(fingerprint(&seq), fingerprint(&fb));
        }
    }

    #[test]
    fn tiny_speculation_window_still_exact() {
        let g = generators::lollipop(5, 3);
        let config = SingleSpaceConfig::new(800, 13).with_trace();
        let seq = SingleSpaceSampler::new(&g, 5, config.clone()).unwrap().run();
        let par =
            run_single(&g, 5, &config, &PrefetchConfig::with_threads(3).with_depth(1)).unwrap();
        assert_eq!(fingerprint(&seq), fingerprint(&par));
        assert_eq!(seq.trace.unwrap(), par.trace.unwrap());
        assert_eq!(seq.density_series.unwrap(), par.density_series.unwrap());
    }

    #[test]
    fn pipelined_reduced_single_matches_sequential_bitwise() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(6, 3);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        let config = SingleSpaceConfig::new(1_500, 77);
        let seq = run_single_view(view, 0, &config, &PrefetchConfig::sequential()).unwrap();
        for threads in [2usize, 4] {
            let par =
                run_single_view(view, 0, &config, &PrefetchConfig::with_threads(threads)).unwrap();
            assert_eq!(fingerprint(&seq), fingerprint(&par), "threads {threads}");
        }
    }

    #[test]
    fn pipelined_reduced_run_rejects_pruned_probes() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(6, 3);
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        assert!(matches!(
            run_single_view(view, 8, &SingleSpaceConfig::new(10, 0), &PrefetchConfig::sequential()),
            Err(CoreError::PrunedProbe { probe: 8 })
        ));
    }

    #[test]
    fn pipeline_validates_like_the_sampler() {
        let g = generators::path(10);
        assert!(matches!(
            run_single(&g, 99, &SingleSpaceConfig::new(10, 0), &PrefetchConfig::with_threads(2)),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
        let tiny = generators::path(2);
        assert!(matches!(
            run_single(&tiny, 0, &SingleSpaceConfig::new(10, 0), &PrefetchConfig::with_threads(2)),
            Err(CoreError::GraphTooSmall { .. })
        ));
    }
}
