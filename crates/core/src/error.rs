//! Error type for sampler construction.

use mhbc_graph::Vertex;

/// Errors raised when configuring the samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A probe vertex id is `>= n`.
    ProbeOutOfRange { probe: Vertex, num_vertices: usize },
    /// The joint sampler needs at least two probe vertices.
    ProbeSetTooSmall { len: usize },
    /// Probe vertices must be pairwise distinct.
    DuplicateProbe { probe: Vertex },
    /// The graph has fewer than 3 vertices; betweenness is identically zero
    /// and the samplers' estimator denominators degenerate.
    GraphTooSmall { num_vertices: usize },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::ProbeOutOfRange { probe, num_vertices } => {
                write!(f, "probe vertex {probe} out of range (n = {num_vertices})")
            }
            CoreError::ProbeSetTooSmall { len } => {
                write!(f, "joint sampler needs |R| >= 2, got {len}")
            }
            CoreError::DuplicateProbe { probe } => write!(f, "duplicate probe vertex {probe}"),
            CoreError::GraphTooSmall { num_vertices } => {
                write!(f, "graph with {num_vertices} vertices has no betweenness to estimate")
            }
        }
    }
}

impl std::error::Error for CoreError {}
