//! Error type for sampler construction.

use mhbc_graph::Vertex;

/// Errors raised when configuring the samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A probe vertex id is `>= n`.
    ProbeOutOfRange { probe: Vertex, num_vertices: usize },
    /// The joint sampler needs at least two probe vertices.
    ProbeSetTooSmall { len: usize },
    /// Probe vertices must be pairwise distinct.
    DuplicateProbe { probe: Vertex },
    /// The graph has fewer than 3 vertices; betweenness is identically zero
    /// and the samplers' estimator denominators degenerate.
    GraphTooSmall { num_vertices: usize },
    /// The probe was pruned into a pendant tree by the active reduction:
    /// its exact betweenness is available in closed form
    /// (`mhbc_graph::reduce::ReducedGraph::exact_pruned_bc`), so sampling
    /// it through the reduction is both unsupported and pointless.
    PrunedProbe { probe: Vertex },
    /// A checkpoint file could not be decoded or does not match the
    /// evaluation view it is being resumed against (see
    /// [`crate::checkpoint`]).
    Checkpoint { reason: String },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::ProbeOutOfRange { probe, num_vertices } => {
                write!(f, "probe vertex {probe} out of range (n = {num_vertices})")
            }
            CoreError::ProbeSetTooSmall { len } => {
                write!(f, "joint sampler needs |R| >= 2, got {len}")
            }
            CoreError::DuplicateProbe { probe } => write!(f, "duplicate probe vertex {probe}"),
            CoreError::GraphTooSmall { num_vertices } => {
                write!(f, "graph with {num_vertices} vertices has no betweenness to estimate")
            }
            CoreError::PrunedProbe { probe } => {
                write!(
                    f,
                    "probe vertex {probe} was pruned into a pendant tree by the reduction; \
                     its exact betweenness is available in closed form \
                     (ReducedGraph::exact_pruned_bc) — no sampling needed"
                )
            }
            CoreError::Checkpoint { reason } => write!(f, "checkpoint: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}
