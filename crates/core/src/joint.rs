//! The joint-space MCMC sampler (§4.3).

use crate::checkpoint::{CheckpointKind, Reader, Writer};
use crate::engine::{CheckpointDriver, EngineConfig, EngineDriver, EstimationEngine};
use crate::optimal::min_dependency_ratio;
use crate::oracle::{OracleStats, ProbeOracle};
use crate::single::{restore_oracle, save_oracle};
use crate::CoreError;
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_mcmc::{ChainSnapshot, MetropolisHastings, Proposal, TargetDensity};
use mhbc_spd::SpdView;
use rand::{rngs::SmallRng, Rng, RngExt};

/// Chain state: `(probe index into R, source vertex)` — the pair `⟨r, v⟩`
/// of §4.3.
pub(crate) type JointState = (u32, Vertex);

/// Uniform independence proposal over `R × V(G)` (both coordinates drawn
/// uniformly, as in the paper).
pub(crate) struct JointProposal {
    pub(crate) k: u32,
    pub(crate) n: u32,
}

impl Proposal<JointState> for JointProposal {
    fn propose<R: Rng + ?Sized>(&mut self, _current: &JointState, rng: &mut R) -> JointState {
        (rng.random_range(0..self.k), rng.random_range(0..self.n))
    }

    fn ratio(&self, _current: &JointState, _proposed: &JointState) -> f64 {
        1.0
    }

    fn propose_iid<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<JointState> {
        Some((rng.random_range(0..self.k), rng.random_range(0..self.n)))
    }
}

/// Target density `f(⟨r, v⟩) = δ_{v•}(r)` — unnormalised Eq 18.
struct JointTarget<'g> {
    oracle: ProbeOracle<'g>,
}

impl TargetDensity for JointTarget<'_> {
    type State = JointState;

    fn density(&mut self, s: &JointState) -> f64 {
        self.oracle.dep(s.1, s.0 as usize)
    }
}

/// Configuration for [`JointSpaceSampler`].
#[derive(Debug, Clone)]
pub struct JointSpaceConfig {
    /// Number of MH iterations `T`.
    pub iterations: u64,
    /// RNG seed.
    pub seed: u64,
    /// Initial state `⟨r, v⟩` as (probe index, vertex); `None` = uniform.
    pub initial: Option<(usize, Vertex)>,
    /// Record, after every iteration, the running estimate of
    /// `BC_{r_j}(r_i)` for the pair `(i, j) = trace_pair` (F4 convergence
    /// curves).
    pub trace_pair: Option<(usize, usize)>,
}

impl JointSpaceConfig {
    /// Defaults: uniform initial state, no trace.
    pub fn new(iterations: u64, seed: u64) -> Self {
        JointSpaceConfig { iterations, seed, initial: None, trace_pair: None }
    }

    /// Sets the initial state (probe index, vertex).
    pub fn with_initial(mut self, probe_idx: usize, v: Vertex) -> Self {
        self.initial = Some((probe_idx, v));
        self
    }

    /// Enables convergence tracing for the relative score `BC_{r_j}(r_i)`.
    pub fn with_trace_pair(mut self, i: usize, j: usize) -> Self {
        self.trace_pair = Some((i, j));
        self
    }
}

/// Per-step report from the streaming API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointStepInfo {
    /// Iterations done so far.
    pub iteration: u64,
    /// Whether the proposal was accepted.
    pub accepted: bool,
    /// The probe index occupied after the step.
    pub probe_index: u32,
}

/// Result of a joint-space run.
#[derive(Debug, Clone)]
pub struct JointSpaceEstimate {
    /// The probe set `R` (in the order supplied).
    pub probes: Vec<Vertex>,
    /// `counts[i] = |M(i)|`: samples whose `r` component was `r_i`.
    pub counts: Vec<u64>,
    /// `relative[i][j]` = estimated `BC_{r_j}(r_i)` (Eq 23): the mean of
    /// `min{1, δ_{v•}(r_i)/δ_{v•}(r_j)}` over `M(j)`. `NaN` when
    /// `M(j)` is empty.
    pub relative: Vec<Vec<f64>>,
    /// Iterations performed.
    pub iterations: u64,
    /// Fraction of proposals accepted.
    pub acceptance_rate: f64,
    /// SPD passes spent (distinct source vertices evaluated).
    pub spd_passes: u64,
    /// Oracle cache statistics.
    pub oracle_stats: OracleStats,
    /// Running trace of the configured pair's relative score.
    pub trace: Option<Vec<f64>>,
}

impl JointSpaceEstimate {
    /// Estimated betweenness ratio `BC(r_i) / BC(r_j)` via Eq 22:
    /// `B̂C_{r_j}(r_i) / B̂C_{r_i}(r_j)`. `NaN` if either multiset is empty.
    pub fn ratio(&self, i: usize, j: usize) -> f64 {
        self.relative[i][j] / self.relative[j][i]
    }

    /// Whether both multisets backing `ratio(i, j)` are non-trivial.
    pub fn ratio_reliable(&self, i: usize, j: usize, min_samples: u64) -> bool {
        self.counts[i] >= min_samples && self.counts[j] >= min_samples
    }
}

/// The Eq 22/23 estimator state, factored out of the sampler so the
/// sequential path and the prefetch pipeline run the same accumulation code
/// in the same order (the pipeline's bit-identical-output guarantee).
pub(crate) struct JointAccumulator {
    k: usize,
    /// `acc[i * k + j]` accumulates `min{1, δ(r_i)/δ(r_j)}` over `M(j)`.
    acc: Vec<f64>,
    counts: Vec<u64>,
    trace: Vec<f64>,
    trace_pair: Option<(usize, usize)>,
}

impl JointAccumulator {
    pub(crate) fn new(k: usize, trace_pair: Option<(usize, usize)>) -> Self {
        JointAccumulator {
            k,
            acc: vec![0.0; k * k],
            counts: vec![0; k],
            trace: Vec::new(),
            trace_pair,
        }
    }

    /// Adds one occupied state to the estimator multisets: `j` is the probe
    /// index, `deps` the full dependency row `δ_{v•}(probes)` of its source.
    pub(crate) fn absorb(&mut self, j: usize, deps: &[f64]) {
        let den = deps[j];
        for (i, &dep) in deps.iter().enumerate() {
            self.acc[i * self.k + j] += min_dependency_ratio(dep, den);
        }
        self.counts[j] += 1;
        if let Some((ti, tj)) = self.trace_pair {
            self.trace.push(self.relative_estimate(ti, tj));
        }
    }

    /// Current estimate of `BC_{r_j}(r_i)`; `NaN` while `M(j)` is empty.
    pub(crate) fn relative_estimate(&self, i: usize, j: usize) -> f64 {
        if self.counts[j] == 0 {
            return f64::NAN;
        }
        self.acc[i * self.k + j] / self.counts[j] as f64
    }

    /// Finalises into the public estimate (shared by both execution modes).
    pub(crate) fn finish(
        self,
        probes: Vec<Vertex>,
        iterations: u64,
        acceptance_rate: f64,
        spd_passes: u64,
        oracle_stats: OracleStats,
    ) -> JointSpaceEstimate {
        let k = self.k;
        let mut relative = vec![vec![f64::NAN; k]; k];
        for (i, row) in relative.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if self.counts[j] > 0 {
                    *cell = self.acc[i * k + j] / self.counts[j] as f64;
                }
            }
        }
        JointSpaceEstimate {
            probes,
            counts: self.counts,
            relative,
            iterations,
            acceptance_rate,
            spd_passes,
            oracle_stats,
            trace: if self.trace_pair.is_some() { Some(self.trace) } else { None },
        }
    }
}

/// The paper's joint-space Metropolis–Hastings sampler (§4.3).
///
/// States are pairs `⟨r, v⟩ ∈ R × V(G)`; both coordinates are re-proposed
/// uniformly and independently each step, and moves are accepted with
/// probability `min{1, δ_{v'•}(r') / δ_{v•}(r)}` (Eq 17), giving the
/// stationary law `P[r, v] ∝ δ_{v•}(r)` (Eq 18). Samples with `r`-component
/// `r_j` form the multiset `M(j)`; relative scores and ratios follow
/// Eq 22/23. One SPD pass per *distinct* source vertex covers all probes
/// simultaneously (the backward accumulation yields the whole dependency
/// vector).
///
/// This type is the *sequential* streaming sampler; see
/// [`crate::pipeline::run_joint`] for the bit-identical multi-threaded run.
pub struct JointSpaceSampler<'g> {
    chain: MetropolisHastings<JointTarget<'g>, JointProposal, SmallRng>,
    probes: Vec<Vertex>,
    config: JointSpaceConfig,
    iteration: u64,
    acc: JointAccumulator,
}

/// Validates a joint-space configuration, returning `(n, k)`.
pub(crate) fn validate_joint(
    view: &SpdView<'_>,
    probes: &[Vertex],
    config: &JointSpaceConfig,
) -> Result<(usize, usize), CoreError> {
    let n = view.num_vertices();
    if n < 3 {
        return Err(CoreError::GraphTooSmall { num_vertices: n });
    }
    if probes.len() < 2 {
        return Err(CoreError::ProbeSetTooSmall { len: probes.len() });
    }
    for (i, &p) in probes.iter().enumerate() {
        if p as usize >= n {
            return Err(CoreError::ProbeOutOfRange { probe: p, num_vertices: n });
        }
        if !view.is_retained(p) {
            return Err(CoreError::PrunedProbe { probe: p });
        }
        if probes[..i].contains(&p) {
            return Err(CoreError::DuplicateProbe { probe: p });
        }
    }
    if let Some((i, v)) = config.initial {
        if i >= probes.len() {
            return Err(CoreError::ProbeOutOfRange {
                probe: i as Vertex,
                num_vertices: probes.len(),
            });
        }
        if v as usize >= n {
            return Err(CoreError::ProbeOutOfRange { probe: v, num_vertices: n });
        }
    }
    if let Some((i, j)) = config.trace_pair {
        if i >= probes.len() || j >= probes.len() {
            return Err(CoreError::ProbeOutOfRange {
                probe: i.max(j) as Vertex,
                num_vertices: probes.len(),
            });
        }
    }
    Ok((n, probes.len()))
}

impl<'g> JointSpaceSampler<'g> {
    /// Builds a sampler for probe set `probes` on `g`.
    pub fn new(
        g: &'g CsrGraph,
        probes: &[Vertex],
        config: JointSpaceConfig,
    ) -> Result<Self, CoreError> {
        Self::for_view(SpdView::direct(g), probes, config)
    }

    /// Builds a sampler evaluating densities through `view`. As for
    /// [`crate::SingleSpaceSampler::for_view`], the joint state space stays
    /// `R × V(G)` in original ids and the target density `δ_{v•}(r)` is
    /// mapped exactly through the reduction, so the stationary law (Eq 18)
    /// needs no correction factor. Every probe must survive the reduction
    /// ([`CoreError::PrunedProbe`] otherwise).
    pub fn for_view(
        view: SpdView<'g>,
        probes: &[Vertex],
        config: JointSpaceConfig,
    ) -> Result<Self, CoreError> {
        let (n, k) = validate_joint(&view, probes, &config)?;
        let (initial, prop_rng, acc_rng) =
            crate::pipeline::derive_joint_streams(config.seed, config.initial, k, n);
        let target = JointTarget { oracle: ProbeOracle::for_view(view, probes) };
        let chain = MetropolisHastings::with_streams(
            target,
            JointProposal { k: k as u32, n: n as u32 },
            initial,
            prop_rng,
            acc_rng,
        );

        let mut sampler = JointSpaceSampler {
            chain,
            probes: probes.to_vec(),
            acc: JointAccumulator::new(k, config.trace_pair),
            config,
            iteration: 0,
        };
        sampler.absorb_current_state();
        Ok(sampler)
    }

    /// The probe set.
    pub fn probes(&self) -> &[Vertex] {
        &self.probes
    }

    /// Adds the chain's current state to the estimator multisets.
    fn absorb_current_state(&mut self) {
        let (j, v) = *self.chain.state();
        // One cached lookup returns delta_v on every probe.
        let deps = self.chain.target_mut().oracle.deps(v).to_vec();
        self.acc.absorb(j as usize, &deps);
    }

    /// Current estimate of `BC_{r_j}(r_i)`; `NaN` while `M(j)` is empty.
    pub fn relative_estimate(&self, i: usize, j: usize) -> f64 {
        self.acc.relative_estimate(i, j)
    }

    /// Performs one MH iteration.
    pub fn step(&mut self) -> JointStepInfo {
        let accepted = self.step_raw();
        JointStepInfo { iteration: self.iteration, accepted, probe_index: self.chain.state().0 }
    }

    /// One MH iteration; returns whether the proposal was accepted. The
    /// engine driver reads the occupied density off the chain afterwards.
    pub(crate) fn step_raw(&mut self) -> bool {
        let out = self.chain.step();
        self.iteration += 1;
        self.absorb_current_state();
        out.accepted
    }

    /// Runs the configured number of iterations and finalises.
    ///
    /// Since the engine refactor this is a thin configuration of
    /// [`EstimationEngine`] with [`mhbc_mcmc::StoppingRule::FixedIterations`] —
    /// bit-identical to the historical run-to-completion loop.
    pub fn run(self) -> JointSpaceEstimate {
        self.into_engine(EngineConfig::fixed()).run().0
    }

    /// Wraps the sampler in a segmented [`EstimationEngine`] for adaptive
    /// stopping and checkpointing.
    pub fn into_engine(self, engine: EngineConfig) -> EstimationEngine<JointDriver<'g>> {
        let budget = self.config.iterations;
        EstimationEngine::new(JointDriver { sampler: self }, budget, engine)
    }

    /// Finalises early.
    pub fn finish(self) -> JointSpaceEstimate {
        let acceptance_rate = self.chain.stats().acceptance_rate();
        let target = self.chain.into_target();
        self.acc.finish(
            self.probes,
            self.iteration,
            acceptance_rate,
            target.oracle.spd_passes(),
            target.oracle.stats(),
        )
    }
}

/// [`EngineDriver`] for the sequential joint-space sampler. The monitored
/// series is the occupied state's dependency `δ_{v•}(r_j)` — the same
/// series the single-space diagnostics use; a stderr target applies to its
/// normalised mean (a proxy for overall chain stability, since the joint
/// estimate is a matrix rather than one scalar).
pub struct JointDriver<'g> {
    sampler: JointSpaceSampler<'g>,
}

impl JointDriver<'_> {
    /// The wrapped sampler's probe set.
    pub fn probes(&self) -> &[Vertex] {
        self.sampler.probes()
    }
}

impl EngineDriver for JointDriver<'_> {
    type Output = JointSpaceEstimate;

    fn prime(&mut self, out: &mut Vec<f64>) {
        // The constructor absorbed the initial state as sample 0.
        if self.sampler.iteration == 0 {
            out.push(self.sampler.chain.current_density());
        }
    }

    fn run_segment(&mut self, iters: u64, out: &mut Vec<f64>) {
        for _ in 0..iters {
            self.sampler.step_raw();
            out.push(self.sampler.chain.current_density());
        }
    }

    fn iterations(&self) -> u64 {
        self.sampler.iteration
    }

    fn scale(&self) -> f64 {
        self.sampler.chain.target().oracle.view().num_vertices() as f64 - 1.0
    }

    fn finish(self) -> JointSpaceEstimate {
        self.sampler.finish()
    }
}

impl JointAccumulator {
    fn save_into(&self, w: &mut Writer) {
        w.u64(self.k as u64);
        w.f64s(&self.acc);
        w.u64(self.counts.len() as u64);
        for &c in &self.counts {
            w.u64(c);
        }
        w.f64s(&self.trace);
    }

    fn restore_from(
        trace_pair: Option<(usize, usize)>,
        r: &mut Reader<'_>,
    ) -> Result<Self, CoreError> {
        let k = r.u64()? as usize;
        let mut acc = JointAccumulator::new(k, trace_pair);
        acc.acc = r.f64s()?;
        if acc.acc.len() != k * k {
            return Err(crate::checkpoint::corrupt("joint accumulator arity mismatch"));
        }
        let nc = r.u64()? as usize;
        if nc != k {
            return Err(crate::checkpoint::corrupt("joint count arity mismatch"));
        }
        acc.counts = (0..nc).map(|_| r.u64()).collect::<Result<_, _>>()?;
        acc.trace = r.f64s()?;
        Ok(acc)
    }
}

impl CheckpointDriver for JointDriver<'_> {
    fn kind(&self) -> CheckpointKind {
        CheckpointKind::Joint
    }

    fn view(&self) -> SpdView<'_> {
        self.sampler.chain.target().oracle.view()
    }

    fn save(&self, w: &mut Writer) {
        let s = &self.sampler;
        w.u64(s.probes.len() as u64);
        for &p in &s.probes {
            w.u32(p);
        }
        w.u64(s.config.iterations);
        w.u64(s.config.seed);
        match s.config.trace_pair {
            None => w.u8(0),
            Some((i, j)) => {
                w.u8(1);
                w.u64(i as u64);
                w.u64(j as u64);
            }
        }
        w.u64(s.iteration);
        let snap = s.chain.snapshot();
        w.u32(snap.state.0);
        w.u32(snap.state.1);
        w.f64(snap.density);
        w.u64(snap.stats.steps);
        w.u64(snap.stats.accepted);
        for x in snap.proposal_rng.iter().chain(&snap.accept_rng) {
            w.u64(*x);
        }
        s.acc.save_into(w);
        let oracle = &s.chain.target().oracle;
        save_oracle(w, oracle.spd_passes(), oracle.stats(), oracle.snapshot_rows());
    }
}

impl<'g> JointDriver<'g> {
    /// Rebuilds a driver from a checkpoint payload against `view` (see
    /// `SingleDriver::restore_from`): nothing is re-evaluated.
    pub(crate) fn restore_from(view: SpdView<'g>, r: &mut Reader<'_>) -> Result<Self, CoreError> {
        let np = r.u64()? as usize;
        if np > r.remaining() / 4 {
            return Err(crate::checkpoint::corrupt("probe list longer than the checkpoint"));
        }
        let probes: Vec<Vertex> = (0..np).map(|_| r.u32()).collect::<Result<_, _>>()?;
        let mut config = JointSpaceConfig::new(r.u64()?, r.u64()?);
        if r.u8()? != 0 {
            config.trace_pair = Some((r.u64()? as usize, r.u64()? as usize));
        }
        let (n, k) = validate_joint(&view, &probes, &config)?;
        let iteration = r.u64()?;
        let state = (r.u32()?, r.u32()?);
        if state.0 as usize >= k || state.1 as usize >= n {
            return Err(crate::checkpoint::corrupt("chain state out of range"));
        }
        let snap = ChainSnapshot {
            state,
            density: r.f64()?,
            stats: mhbc_mcmc::ChainStats { steps: r.u64()?, accepted: r.u64()? },
            proposal_rng: {
                let mut words = [0u64; 4];
                for x in &mut words {
                    *x = r.u64()?;
                }
                words
            },
            accept_rng: {
                let mut words = [0u64; 4];
                for x in &mut words {
                    *x = r.u64()?;
                }
                words
            },
        };
        let acc = JointAccumulator::restore_from(config.trace_pair, r)?;
        if acc.k != k {
            return Err(crate::checkpoint::corrupt("probe count does not match accumulator"));
        }
        let (passes, stats, rows) = restore_oracle(r)?;
        let mut oracle = ProbeOracle::for_view(view, &probes);
        oracle.restore_cache(rows, stats, passes);
        let chain = MetropolisHastings::restore(
            JointTarget { oracle },
            JointProposal { k: k as u32, n: n as u32 },
            snap,
        );
        Ok(JointDriver { sampler: JointSpaceSampler { chain, probes, config, iteration, acc } })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::exact_relative_matrix;
    use mhbc_graph::generators;
    use mhbc_spd::exact_betweenness;

    #[test]
    fn relative_scores_converge_to_stationary_limits() {
        let g = generators::barbell(6, 3);
        // Probes: the three path vertices (distinct positive BC).
        let probes = [6u32, 7, 8];
        // The sampler's M(j)-averages converge to the P_rj-weighted scores
        // (see crate::optimal soundness note), which on this near-flat
        // family are also close to the Eq 23 uniform scores.
        let stationary = crate::optimal::stationary_relative_matrix(&g, &probes, 2);
        let uniform = exact_relative_matrix(&g, &probes, 2);
        let est =
            JointSpaceSampler::new(&g, &probes, JointSpaceConfig::new(60_000, 21)).unwrap().run();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (est.relative[i][j] - stationary[i][j]).abs() < 0.05,
                    "({i},{j}): est {} vs stationary limit {}",
                    est.relative[i][j],
                    stationary[i][j]
                );
                assert!(
                    (est.relative[i][j] - uniform[i][j]).abs() < 0.1,
                    "({i},{j}): est {} vs Eq 23 {}",
                    est.relative[i][j],
                    uniform[i][j]
                );
            }
        }
    }

    #[test]
    fn ratio_estimates_betweenness_ratio() {
        // Theorem 3: the ratio of relative scores equals BC(ri)/BC(rj).
        let g = generators::barbell(6, 3);
        let probes = [6u32, 7];
        let bc = exact_betweenness(&g);
        let truth = bc[6] / bc[7];
        let est =
            JointSpaceSampler::new(&g, &probes, JointSpaceConfig::new(80_000, 5)).unwrap().run();
        let ratio = est.ratio(0, 1);
        assert!((ratio - truth).abs() / truth < 0.1, "ratio {ratio} vs truth {truth}");
        assert!(est.ratio_reliable(0, 1, 100));
    }

    #[test]
    fn diagonal_relative_scores_are_one() {
        let g = generators::barbell(4, 2);
        let est =
            JointSpaceSampler::new(&g, &[4, 5], JointSpaceConfig::new(2_000, 9)).unwrap().run();
        for i in 0..2 {
            if est.counts[i] > 0 {
                assert!((est.relative[i][i] - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn counts_sum_to_samples() {
        let g = generators::barbell(4, 2);
        let t = 3_000;
        let est =
            JointSpaceSampler::new(&g, &[4, 5, 0], JointSpaceConfig::new(t, 2)).unwrap().run();
        // T iterations + the initial state.
        assert_eq!(est.counts.iter().sum::<u64>(), t + 1);
    }

    #[test]
    fn stationary_marginal_over_probes_proportional_to_bc() {
        // Eq 18: P[r] = BC-mass of r, so |M(i)|/|M(j)| -> BC(ri)/BC(rj).
        let g = generators::barbell(6, 3);
        let probes = [6u32, 7];
        let bc = exact_betweenness(&g);
        let est =
            JointSpaceSampler::new(&g, &probes, JointSpaceConfig::new(80_000, 13)).unwrap().run();
        let emp = est.counts[0] as f64 / est.counts[1] as f64;
        let truth = bc[6] / bc[7];
        assert!((emp - truth).abs() / truth < 0.1, "empirical {emp} vs {truth}");
    }

    #[test]
    fn trace_records_convergence() {
        let g = generators::barbell(4, 2);
        let cfg = JointSpaceConfig::new(500, 3).with_trace_pair(0, 1);
        let est = JointSpaceSampler::new(&g, &[4, 5], cfg).unwrap().run();
        let trace = est.trace.unwrap();
        assert_eq!(trace.len(), 501);
        let last = *trace.last().unwrap();
        assert!(
            (last - est.relative[0][1]).abs() < 1e-12
                || (last.is_nan() && est.relative[0][1].is_nan())
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::barbell(4, 2);
        let run = |seed| {
            JointSpaceSampler::new(&g, &[4, 5], JointSpaceConfig::new(1_000, seed))
                .unwrap()
                .run()
                .relative
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn validation_errors() {
        let g = generators::path(10);
        assert!(matches!(
            JointSpaceSampler::new(&g, &[1], JointSpaceConfig::new(10, 0)),
            Err(CoreError::ProbeSetTooSmall { len: 1 })
        ));
        assert!(matches!(
            JointSpaceSampler::new(&g, &[1, 1], JointSpaceConfig::new(10, 0)),
            Err(CoreError::DuplicateProbe { probe: 1 })
        ));
        assert!(matches!(
            JointSpaceSampler::new(&g, &[1, 99], JointSpaceConfig::new(10, 0)),
            Err(CoreError::ProbeOutOfRange { probe: 99, .. })
        ));
        assert!(matches!(
            JointSpaceSampler::new(&g, &[1, 2], JointSpaceConfig::new(10, 0).with_trace_pair(0, 5)),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
    }

    #[test]
    fn reduced_view_matches_direct_on_pendant_free_dyadic_graphs() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::cycle(12);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let probes = [0u32, 3, 7];
        let config = JointSpaceConfig::new(3_000, 23);
        let direct = JointSpaceSampler::new(&g, &probes, config.clone()).unwrap().run();
        let through = JointSpaceSampler::for_view(SpdView::preprocessed(&g, &red), &probes, config)
            .unwrap()
            .run();
        assert_eq!(direct.counts, through.counts);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    direct.relative[i][j].to_bits(),
                    through.relative[i][j].to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn reduced_view_rejects_pruned_probes() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(5, 3);
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        assert!(matches!(
            JointSpaceSampler::for_view(
                SpdView::preprocessed(&g, &red),
                &[0, 6],
                JointSpaceConfig::new(10, 0)
            ),
            Err(CoreError::PrunedProbe { probe: 6 })
        ));
    }

    #[test]
    fn weighted_graphs_supported() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        let g = generators::assign_uniform_weights(&generators::barbell(5, 2), 1.0, 2.0, &mut rng);
        let est =
            JointSpaceSampler::new(&g, &[5, 6], JointSpaceConfig::new(5_000, 1)).unwrap().run();
        assert!(est.relative[0][1].is_finite());
    }
}
