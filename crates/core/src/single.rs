//! The single-space MCMC sampler (§4.2).

use crate::checkpoint::{CheckpointKind, Reader, Writer};
use crate::engine::{CheckpointDriver, EngineConfig, EngineDriver, EstimationEngine};
use crate::oracle::{OracleStats, ProbeOracle};
use crate::CoreError;
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_mcmc::{ChainSnapshot, MetropolisHastings, StepOutcome, TargetDensity, UniformProposal};
use mhbc_spd::SpdView;
use rand::rngs::SmallRng;

/// Target density of the single-space chain: `f(v) = δ_{v•}(r)` — the
/// unnormalised form of the optimal distribution `P_r[v]` (Eq 5).
struct SingleTarget<'g> {
    oracle: ProbeOracle<'g>,
}

impl TargetDensity for SingleTarget<'_> {
    type State = Vertex;

    fn density(&mut self, v: &Vertex) -> f64 {
        self.oracle.dep(*v, 0)
    }
}

/// Configuration for [`SingleSpaceSampler`].
#[derive(Debug, Clone)]
pub struct SingleSpaceConfig {
    /// Number of MH iterations `T` (the chain visits `T + 1` states).
    pub iterations: u64,
    /// RNG seed; every run is deterministic given the seed.
    pub seed: u64,
    /// Initial state; `None` draws it uniformly at random (the paper's
    /// default). Theorem 1 holds from *any* initial state.
    pub initial: Option<Vertex>,
    /// Iterations to discard before accumulating. The paper proves no
    /// burn-in is needed (remark after Theorem 1); nonzero values exist for
    /// the F6 ablation.
    pub burn_in: u64,
    /// `true` (default, and the reading consistent with Theorem 1): a
    /// rejected proposal re-counts the current state in the estimator
    /// multiset `M`. `false` reproduces the literal "accepted samples only"
    /// reading of Eq 7, which experiment F5 shows is biased.
    pub count_rejections: bool,
    /// Record the running estimate and per-step dependency after every
    /// iteration (costs two `Vec<f64>` of length `T`).
    pub record_trace: bool,
}

impl SingleSpaceConfig {
    /// Defaults: uniform initial state, no burn-in, rejections counted,
    /// no trace.
    pub fn new(iterations: u64, seed: u64) -> Self {
        SingleSpaceConfig {
            iterations,
            seed,
            initial: None,
            burn_in: 0,
            count_rejections: true,
            record_trace: false,
        }
    }

    /// Sets the initial state.
    pub fn with_initial(mut self, v: Vertex) -> Self {
        self.initial = Some(v);
        self
    }

    /// Sets a burn-in period (F6 ablation).
    pub fn with_burn_in(mut self, burn_in: u64) -> Self {
        self.burn_in = burn_in;
        self
    }

    /// Switches to the literal accepted-only multiset (F5 ablation).
    pub fn accepted_only(mut self) -> Self {
        self.count_rejections = false;
        self
    }

    /// Enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// Result of a single-space run.
#[derive(Debug, Clone)]
pub struct SingleSpaceEstimate {
    /// The estimated betweenness `B̂C(r)` — the paper's Eq 7 estimator,
    /// reproduced faithfully. **Caveat (see [`crate::optimal`])**: its true
    /// limit is the stationary mean [`crate::optimal::eq7_limit`], which
    /// upper-bounds `BC(r)` and coincides with it only for near-flat
    /// dependency profiles (the paper's Theorem 2 regime).
    pub bc: f64,
    /// Support-corrected unbiased estimate of `BC(r)` (reproduction
    /// extension): `BC(r) = Σδ/(n(n−1))` is recovered as
    /// `p̂ · |support-steps| / ((n−1) · Σ_t 1/δ_t)`, where `p̂` is the
    /// fraction of (uniform, i.i.d.) *proposals* with positive dependency
    /// — estimating `|supp δ|/n` — and the harmonic term estimates
    /// `E_{P_r}[1/δ] = |supp δ|/Σδ`. Unbiased in the limit but with heavier
    /// tails than Eq 7 when tiny positive dependencies exist.
    pub bc_corrected: f64,
    /// The probe vertex.
    pub r: Vertex,
    /// Iterations performed (`T`).
    pub iterations: u64,
    /// Fraction of proposals accepted.
    pub acceptance_rate: f64,
    /// SPD passes spent (distinct sources evaluated) — the true cost.
    pub spd_passes: u64,
    /// Oracle cache statistics.
    pub oracle_stats: OracleStats,
    /// Running estimate after each counted iteration (when traced).
    pub trace: Option<Vec<f64>>,
    /// Per-iteration dependency `δ_{v_t•}(r)` of the occupied state (when
    /// traced) — the series fed to the mixing diagnostics (F2).
    pub density_series: Option<Vec<f64>>,
}

/// Per-step report from the streaming API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleStepInfo {
    /// Iterations done so far.
    pub iteration: u64,
    /// Whether this step's proposal was accepted.
    pub accepted: bool,
    /// Running estimate `B̂C(r)` including this step.
    pub estimate: f64,
}

/// The Eq 7 (and support-corrected) estimator state, factored out of the
/// sampler so the sequential path and the prefetch pipeline run *the same
/// accumulation code in the same order* — the basis of the pipeline's
/// bit-identical-output guarantee.
pub(crate) struct SingleAccumulator {
    n: usize,
    burn_in: u64,
    count_rejections: bool,
    record_trace: bool,
    iteration: u64,
    sum_delta: f64,
    counted: u64,
    proposals_support: u64,
    inv_delta_sum: f64,
    support_counted: u64,
    trace: Vec<f64>,
    density_series: Vec<f64>,
}

impl SingleAccumulator {
    pub(crate) fn new(config: &SingleSpaceConfig, n: usize) -> Self {
        SingleAccumulator {
            n,
            burn_in: config.burn_in,
            count_rejections: config.count_rejections,
            record_trace: config.record_trace,
            iteration: 0,
            sum_delta: 0.0,
            counted: 0,
            proposals_support: 0,
            inv_delta_sum: 0.0,
            support_counted: 0,
            trace: Vec::new(),
            density_series: Vec::new(),
        }
    }

    /// Absorbs the initial state (sample 0 of the multiset) unless burnt in.
    pub(crate) fn absorb_initial(&mut self, d0: f64) {
        if self.burn_in > 0 {
            return;
        }
        self.sum_delta += d0;
        self.counted = 1;
        if d0 > 0.0 {
            self.inv_delta_sum += 1.0 / d0;
            self.support_counted += 1;
        }
        if self.record_trace {
            self.density_series.push(d0);
            self.trace.push(self.estimate());
        }
    }

    /// Absorbs one chain step.
    pub(crate) fn absorb(&mut self, out: &StepOutcome) {
        self.iteration += 1;
        if out.proposed_density > 0.0 {
            self.proposals_support += 1;
        }
        if self.iteration > self.burn_in {
            if self.count_rejections || out.accepted {
                self.sum_delta += out.density;
            }
            self.counted += 1;
            if out.density > 0.0 {
                self.inv_delta_sum += 1.0 / out.density;
                self.support_counted += 1;
            }
            if self.record_trace {
                self.density_series.push(out.density);
                self.trace.push(self.estimate());
            }
        }
    }

    pub(crate) fn iteration(&self) -> u64 {
        self.iteration
    }

    pub(crate) fn counted(&self) -> u64 {
        self.counted
    }

    pub(crate) fn estimate(&self) -> f64 {
        if self.counted == 0 {
            return 0.0;
        }
        self.sum_delta / (self.counted as f64 * (self.n as f64 - 1.0))
    }

    pub(crate) fn estimate_corrected(&self) -> f64 {
        if self.iteration == 0 || self.support_counted == 0 || self.inv_delta_sum <= 0.0 {
            return 0.0;
        }
        let p_hat = self.proposals_support as f64 / self.iteration as f64;
        p_hat * self.support_counted as f64 / ((self.n as f64 - 1.0) * self.inv_delta_sum)
    }

    /// Finalises into the public estimate (shared by both execution modes).
    pub(crate) fn finish(
        self,
        r: Vertex,
        acceptance_rate: f64,
        spd_passes: u64,
        oracle_stats: OracleStats,
    ) -> SingleSpaceEstimate {
        let bc = self.estimate();
        let bc_corrected = self.estimate_corrected();
        SingleSpaceEstimate {
            bc,
            bc_corrected,
            r,
            iterations: self.iteration,
            acceptance_rate,
            spd_passes,
            oracle_stats,
            trace: if self.record_trace { Some(self.trace) } else { None },
            density_series: if self.record_trace { Some(self.density_series) } else { None },
        }
    }
}

/// The paper's single-space Metropolis–Hastings sampler (§4.2).
///
/// State space `V(G)`; proposal uniform over `V(G)` (independence MH);
/// acceptance `min{1, δ_{v'•}(r)/δ_{v•}(r)}` (Eq 6); estimator the chain
/// average of `δ_{v•}(r)/(|V|−1)` (Eq 7). Provides an `(ε, δ)`-guarantee
/// with `T ≥ µ(r)²/(2ε²) ln(2/δ)` iterations (Theorem 1 / Ineq 14); see
/// [`crate::planner`].
///
/// This type is the *sequential* streaming sampler. For a multi-threaded
/// run with bit-identical output, see [`crate::pipeline::run_single`] —
/// same chain, same estimates, with proposal densities evaluated
/// speculatively by worker threads.
pub struct SingleSpaceSampler<'g> {
    chain: MetropolisHastings<SingleTarget<'g>, UniformProposal, SmallRng>,
    r: Vertex,
    config: SingleSpaceConfig,
    acc: SingleAccumulator,
}

impl<'g> SingleSpaceSampler<'g> {
    /// Builds a sampler for probe vertex `r` on `g` (weighted or not).
    pub fn new(g: &'g CsrGraph, r: Vertex, config: SingleSpaceConfig) -> Result<Self, CoreError> {
        Self::for_view(SpdView::direct(g), r, config)
    }

    /// Builds a sampler evaluating densities through `view` — directly on
    /// the graph, or through its reduction (`mhbc_graph::reduce`).
    ///
    /// # Stationary distribution under a reduction
    ///
    /// The chain's state space stays the **original** vertex set `V(G)`
    /// whatever the view: proposals are uniform over `V(G)`, and the target
    /// density of state `v` is `δ_{v•}(r)` mapped *exactly* through the
    /// reduction (`mhbc_spd::reduced` proves the mapping against direct
    /// Brandes). Since the density function is pointwise identical to the
    /// direct one, the acceptance ratios and therefore the stationary law
    /// `P_r[v] ∝ δ_{v•}(r)` (Eq 5) are preserved with **no sampling-space
    /// correction factor** — only the per-evaluation cost changes (one SPD
    /// pass over the reduced CSR, shared across structurally equivalent
    /// sources). The alternative design — running the chain on the reduced
    /// vertex set — would require reweighting proposals by class size
    /// `Ω(z)/n` to keep Eq 5; keeping the original space avoids that
    /// correction entirely and keeps seeds comparable across preprocess
    /// levels.
    ///
    /// Errors with [`CoreError::PrunedProbe`] if the reduction pruned `r`
    /// (its exact betweenness is already known in closed form).
    pub fn for_view(
        view: SpdView<'g>,
        r: Vertex,
        config: SingleSpaceConfig,
    ) -> Result<Self, CoreError> {
        let n = crate::pipeline::validate_single(&view, r, &config)?;
        let (initial, prop_rng, acc_rng) =
            crate::pipeline::derive_streams(config.seed, config.initial, n);
        let target = SingleTarget { oracle: ProbeOracle::for_view(view, &[r]) };
        let chain = MetropolisHastings::with_streams(
            target,
            UniformProposal::new(n),
            initial,
            prop_rng,
            acc_rng,
        );

        let mut acc = SingleAccumulator::new(&config, n);
        acc.absorb_initial(chain.current_density());
        Ok(SingleSpaceSampler { chain, r, config, acc })
    }

    /// The probe vertex.
    pub fn probe(&self) -> Vertex {
        self.r
    }

    /// Current estimate `B̂C(r)` from the samples counted so far.
    pub fn estimate(&self) -> f64 {
        self.acc.estimate()
    }

    /// Current support-corrected estimate (see
    /// [`SingleSpaceEstimate::bc_corrected`]); 0 until proposals exist.
    pub fn estimate_corrected(&self) -> f64 {
        self.acc.estimate_corrected()
    }

    /// Performs one MH iteration and updates the estimator.
    pub fn step(&mut self) -> SingleStepInfo {
        let out = self.step_raw();
        SingleStepInfo {
            iteration: self.acc.iteration(),
            accepted: out.accepted,
            estimate: self.acc.estimate(),
        }
    }

    /// One MH iteration, exposing the raw chain outcome (the engine driver
    /// needs the occupied-state and proposal densities).
    pub(crate) fn step_raw(&mut self) -> StepOutcome {
        let out = self.chain.step();
        self.acc.absorb(&out);
        out
    }

    /// Runs the configured number of iterations and finalises.
    ///
    /// Since the engine refactor this is a thin configuration of
    /// [`EstimationEngine`] with [`mhbc_mcmc::StoppingRule::FixedIterations`] —
    /// bit-identical to the historical run-to-completion loop.
    pub fn run(self) -> SingleSpaceEstimate {
        self.into_engine(EngineConfig::fixed()).run().0
    }

    /// Wraps the sampler in a segmented [`EstimationEngine`] for adaptive
    /// stopping and checkpointing; the iteration count in the sampler's
    /// config becomes the engine's budget (upper bound).
    pub fn into_engine(self, engine: EngineConfig) -> EstimationEngine<SingleDriver<'g>> {
        let budget = self.config.iterations;
        EstimationEngine::new(SingleDriver::new(self), budget, engine)
    }

    /// Finalises early (fewer than `config.iterations` steps).
    pub fn finish(self) -> SingleSpaceEstimate {
        let acceptance_rate = self.chain.stats().acceptance_rate();
        let target = self.chain.into_target();
        self.acc.finish(self.r, acceptance_rate, target.oracle.spd_passes(), target.oracle.stats())
    }
}

impl SingleAccumulator {
    fn save_into(&self, w: &mut Writer) {
        w.u64(self.iteration);
        w.f64(self.sum_delta);
        w.u64(self.counted);
        w.u64(self.proposals_support);
        w.f64(self.inv_delta_sum);
        w.u64(self.support_counted);
        w.f64s(&self.trace);
        w.f64s(&self.density_series);
    }

    fn restore_from(
        config: &SingleSpaceConfig,
        n: usize,
        r: &mut Reader<'_>,
    ) -> Result<Self, CoreError> {
        let mut acc = SingleAccumulator::new(config, n);
        acc.iteration = r.u64()?;
        acc.sum_delta = r.f64()?;
        acc.counted = r.u64()?;
        acc.proposals_support = r.u64()?;
        acc.inv_delta_sum = r.f64()?;
        acc.support_counted = r.u64()?;
        acc.trace = r.f64s()?;
        acc.density_series = r.f64s()?;
        Ok(acc)
    }
}

fn save_config(w: &mut Writer, config: &SingleSpaceConfig) {
    w.u64(config.iterations);
    w.u64(config.seed);
    w.u64(config.burn_in);
    w.u8(config.count_rejections as u8);
    w.u8(config.record_trace as u8);
}

fn restore_config(r: &mut Reader<'_>) -> Result<SingleSpaceConfig, CoreError> {
    let mut config = SingleSpaceConfig::new(r.u64()?, r.u64()?);
    config.burn_in = r.u64()?;
    config.count_rejections = r.u8()? != 0;
    config.record_trace = r.u8()? != 0;
    Ok(config)
}

pub(crate) fn save_chain_snapshot(w: &mut Writer, snap: &ChainSnapshot<Vertex>) {
    w.u32(snap.state);
    w.f64(snap.density);
    w.u64(snap.stats.steps);
    w.u64(snap.stats.accepted);
    for x in snap.proposal_rng.iter().chain(&snap.accept_rng) {
        w.u64(*x);
    }
}

pub(crate) fn restore_chain_snapshot(
    r: &mut Reader<'_>,
) -> Result<ChainSnapshot<Vertex>, CoreError> {
    let state = r.u32()?;
    let density = r.f64()?;
    let stats = mhbc_mcmc::ChainStats { steps: r.u64()?, accepted: r.u64()? };
    let mut words = [0u64; 8];
    for x in &mut words {
        *x = r.u64()?;
    }
    Ok(ChainSnapshot {
        state,
        density,
        stats,
        proposal_rng: words[..4].try_into().expect("4 words"),
        accept_rng: words[4..].try_into().expect("4 words"),
    })
}

pub(crate) fn save_oracle(
    w: &mut Writer,
    passes: u64,
    stats: OracleStats,
    rows: Vec<(u64, Vec<f64>)>,
) {
    w.u64(passes);
    w.u64(stats.hits);
    w.u64(stats.misses);
    w.u64(rows.len() as u64);
    for (key, row) in rows {
        w.u64(key);
        w.f64s(&row);
    }
}

/// Decoded oracle state: `(SPD passes, stats, cached rows)`.
pub(crate) type OracleSnapshot = (u64, OracleStats, Vec<(u64, Vec<f64>)>);

pub(crate) fn restore_oracle(r: &mut Reader<'_>) -> Result<OracleSnapshot, CoreError> {
    let passes = r.u64()?;
    let stats = OracleStats { hits: r.u64()?, misses: r.u64()? };
    let n = r.u64()? as usize;
    if n > r.remaining() / 16 {
        return Err(crate::checkpoint::corrupt("row table longer than the checkpoint"));
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.u64()?;
        rows.push((key, r.f64s()?));
    }
    Ok((passes, stats, rows))
}

/// [`EngineDriver`] for the sequential single-space sampler: the thin
/// configuration layer that turns [`SingleSpaceSampler`] into an
/// [`EstimationEngine`] workload. Also tracks the observed proposal-stream
/// maximum and mean for the planner's `µ(r)` refit (the proposals are
/// uniform i.i.d. draws, so `max/mean` is a plug-in for `n·max δ / Σ δ`).
pub struct SingleDriver<'g> {
    sampler: SingleSpaceSampler<'g>,
    proposal_sum: f64,
    max_proposed: f64,
}

impl<'g> SingleDriver<'g> {
    pub(crate) fn new(sampler: SingleSpaceSampler<'g>) -> Self {
        SingleDriver { sampler, proposal_sum: 0.0, max_proposed: 0.0 }
    }

    /// The wrapped sampler's probe vertex.
    pub fn probe(&self) -> Vertex {
        self.sampler.r
    }

    /// The wrapped sampler's configuration.
    pub fn sampler_config(&self) -> &SingleSpaceConfig {
        &self.sampler.config
    }

    /// Current Eq 7 estimate.
    pub fn estimate(&self) -> f64 {
        self.sampler.acc.estimate()
    }

    /// Current support-corrected estimate.
    pub fn estimate_corrected(&self) -> f64 {
        self.sampler.acc.estimate_corrected()
    }
}

impl EngineDriver for SingleDriver<'_> {
    type Output = SingleSpaceEstimate;

    fn prime(&mut self, out: &mut Vec<f64>) {
        // Mirror `absorb_initial`: a fresh, unburnt sampler counted the
        // initial state's density as sample 0.
        if self.sampler.acc.iteration() == 0 && self.sampler.acc.counted == 1 {
            out.push(self.sampler.chain.current_density());
        }
    }

    fn run_segment(&mut self, iters: u64, out: &mut Vec<f64>) {
        let burn_in = self.sampler.config.burn_in;
        for _ in 0..iters {
            let o = self.sampler.step_raw();
            self.proposal_sum += o.proposed_density;
            if o.proposed_density > self.max_proposed {
                self.max_proposed = o.proposed_density;
            }
            if self.sampler.acc.iteration() > burn_in {
                out.push(o.density);
            }
        }
    }

    fn iterations(&self) -> u64 {
        self.sampler.acc.iteration()
    }

    fn scale(&self) -> f64 {
        self.sampler.acc.n as f64 - 1.0
    }

    fn observed_mu(&self) -> Option<f64> {
        let t = self.sampler.acc.iteration();
        if t == 0 || self.proposal_sum <= 0.0 {
            return None;
        }
        Some(self.max_proposed / (self.proposal_sum / t as f64))
    }

    fn finish(self) -> SingleSpaceEstimate {
        self.sampler.finish()
    }
}

impl CheckpointDriver for SingleDriver<'_> {
    fn kind(&self) -> CheckpointKind {
        CheckpointKind::Single
    }

    fn view(&self) -> SpdView<'_> {
        self.sampler.chain.target().oracle.view()
    }

    fn save(&self, w: &mut Writer) {
        let s = &self.sampler;
        let oracle = &s.chain.target().oracle;
        save_single_payload(
            w,
            s.r,
            &s.config,
            &s.chain.snapshot(),
            &s.acc,
            self.proposal_sum,
            self.max_proposed,
            oracle.spd_passes(),
            oracle.stats(),
            oracle.snapshot_rows(),
        );
    }
}

/// Serialises a single-space payload — shared by the sequential driver and
/// the pipeline's parallel chain-thread driver, which must write
/// interchangeable checkpoints.
#[allow(clippy::too_many_arguments)]
pub(crate) fn save_single_payload(
    w: &mut Writer,
    r: Vertex,
    config: &SingleSpaceConfig,
    snap: &ChainSnapshot<Vertex>,
    acc: &SingleAccumulator,
    proposal_sum: f64,
    max_proposed: f64,
    passes: u64,
    stats: OracleStats,
    rows: Vec<(u64, Vec<f64>)>,
) {
    w.u32(r);
    save_config(w, config);
    save_chain_snapshot(w, snap);
    acc.save_into(w);
    w.f64(proposal_sum);
    w.f64(max_proposed);
    save_oracle(w, passes, stats, rows);
}

/// Decoded single-space payload: everything either execution mode
/// (sequential sampler or parallel pipeline) needs to resume.
pub(crate) struct SingleResumeParts {
    pub(crate) r: Vertex,
    pub(crate) config: SingleSpaceConfig,
    pub(crate) n: usize,
    pub(crate) snap: ChainSnapshot<Vertex>,
    pub(crate) acc: SingleAccumulator,
    pub(crate) proposal_sum: f64,
    pub(crate) max_proposed: f64,
    pub(crate) passes: u64,
    pub(crate) stats: OracleStats,
    pub(crate) rows: Vec<(u64, Vec<f64>)>,
}

pub(crate) fn decode_single_parts(
    view: &SpdView<'_>,
    r: &mut Reader<'_>,
) -> Result<SingleResumeParts, CoreError> {
    let probe = r.u32()?;
    let config = restore_config(r)?;
    let n = crate::pipeline::validate_single(view, probe, &config)?;
    let snap = restore_chain_snapshot(r)?;
    if (snap.state as usize) >= n {
        return Err(crate::checkpoint::corrupt("chain state out of range"));
    }
    let acc = SingleAccumulator::restore_from(&config, n, r)?;
    let proposal_sum = r.f64()?;
    let max_proposed = r.f64()?;
    let (passes, stats, rows) = restore_oracle(r)?;
    Ok(SingleResumeParts {
        r: probe,
        config,
        n,
        snap,
        acc,
        proposal_sum,
        max_proposed,
        passes,
        stats,
        rows,
    })
}

impl<'g> SingleDriver<'g> {
    /// Rebuilds a driver from a checkpoint payload against `view`
    /// (validated by the caller). Nothing is re-evaluated: the chain's
    /// cached density, the accumulators, and the memoised rows come back
    /// verbatim, so the resumed run is bit-identical to an uninterrupted
    /// one.
    pub(crate) fn restore_from(view: SpdView<'g>, r: &mut Reader<'_>) -> Result<Self, CoreError> {
        let parts = decode_single_parts(&view, r)?;
        let mut oracle = ProbeOracle::for_view(view, &[parts.r]);
        oracle.restore_cache(parts.rows, parts.stats, parts.passes);
        let chain = MetropolisHastings::restore(
            SingleTarget { oracle },
            UniformProposal::new(parts.n),
            parts.snap,
        );
        let sampler =
            SingleSpaceSampler { chain, r: parts.r, config: parts.config, acc: parts.acc };
        Ok(SingleDriver {
            sampler,
            proposal_sum: parts.proposal_sum,
            max_proposed: parts.max_proposed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use mhbc_spd::exact_betweenness_of;

    #[test]
    fn eq7_converges_to_its_stationary_limit_on_barbell_bridge() {
        let g = generators::barbell(8, 1);
        let r = 8; // the path vertex between the cliques
        let profile = mhbc_spd::dependency_profile_par(&g, r, 1);
        let limit = crate::optimal::eq7_limit(&profile);
        let est = SingleSpaceSampler::new(&g, r, SingleSpaceConfig::new(30_000, 42)).unwrap().run();
        assert!((est.bc - limit).abs() < 0.02, "estimate {} vs Eq 7 limit {limit}", est.bc);
        // In the balanced-separator regime the limit is close to BC(r), so
        // the paper's estimator is also close to the truth here.
        let exact = profile.betweenness();
        assert!((est.bc - exact).abs() < 0.05, "estimate {} vs exact {exact}", est.bc);
        assert_eq!(est.iterations, 30_000);
        assert!(est.acceptance_rate > 0.0 && est.acceptance_rate < 1.0);
    }

    #[test]
    fn eq7_converges_to_limit_and_correction_to_bc_on_star() {
        // Star n = 30: Eq 7 limit = 28/29, true BC = 28/30 — the cleanest
        // demonstration of the estimator's structural bias.
        let g = generators::star(30);
        let est = SingleSpaceSampler::new(&g, 0, SingleSpaceConfig::new(20_000, 7)).unwrap().run();
        assert!(
            (est.bc - 28.0 / 29.0).abs() < 0.01,
            "Eq 7 estimate {} should approach 28/29",
            est.bc
        );
        assert!(
            (est.bc_corrected - 28.0 / 30.0).abs() < 0.01,
            "corrected estimate {} should approach 28/30",
            est.bc_corrected
        );
    }

    #[test]
    fn corrected_estimator_unbiased_on_skewed_profile() {
        // Lollipop path vertex: skewed profile, so Eq 7 is visibly biased
        // while the corrected estimator recovers BC(r).
        let g = generators::lollipop(8, 4);
        let r = 8;
        let exact = exact_betweenness_of(&g, r);
        let profile = mhbc_spd::dependency_profile_par(&g, r, 1);
        let limit = crate::optimal::eq7_limit(&profile);
        assert!(limit - exact > 0.01, "test premise: visible bias");
        let est = SingleSpaceSampler::new(&g, r, SingleSpaceConfig::new(60_000, 19)).unwrap().run();
        assert!((est.bc - limit).abs() < 0.03, "Eq 7 {} vs limit {limit}", est.bc);
        assert!(
            (est.bc_corrected - exact).abs() < 0.03,
            "corrected {} vs exact {exact}",
            est.bc_corrected
        );
    }

    #[test]
    fn zero_betweenness_probe_estimates_zero() {
        let g = generators::star(10);
        // A leaf has BC = 0; every dependency is 0, so the estimate is 0.
        let est = SingleSpaceSampler::new(&g, 3, SingleSpaceConfig::new(500, 3)).unwrap().run();
        assert_eq!(est.bc, 0.0);
        assert_eq!(est.bc_corrected, 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::barbell(5, 2);
        let run = |seed| {
            SingleSpaceSampler::new(&g, 5, SingleSpaceConfig::new(2_000, seed)).unwrap().run().bc
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn weighted_graph_supported() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::assign_uniform_weights(&generators::barbell(6, 1), 1.0, 3.0, &mut rng);
        let r = 6;
        let exact = exact_betweenness_of(&g, r);
        let est = SingleSpaceSampler::new(&g, r, SingleSpaceConfig::new(20_000, 11)).unwrap().run();
        assert!((est.bc - exact).abs() < 0.05, "estimate {} vs exact {exact}", est.bc);
    }

    #[test]
    fn trace_has_one_entry_per_counted_sample() {
        let g = generators::barbell(4, 1);
        let est = SingleSpaceSampler::new(&g, 4, SingleSpaceConfig::new(100, 1).with_trace())
            .unwrap()
            .run();
        // Initial state + 100 iterations.
        assert_eq!(est.trace.as_ref().unwrap().len(), 101);
        assert_eq!(est.density_series.as_ref().unwrap().len(), 101);
        // Final trace entry equals the reported estimate.
        assert_eq!(*est.trace.unwrap().last().unwrap(), est.bc);
    }

    #[test]
    fn burn_in_discards_early_samples() {
        let g = generators::barbell(4, 1);
        let cfg = SingleSpaceConfig::new(200, 2).with_burn_in(50).with_trace();
        let est = SingleSpaceSampler::new(&g, 4, cfg).unwrap().run();
        assert_eq!(est.trace.unwrap().len(), 150);
    }

    #[test]
    fn accepted_only_mode_differs() {
        let g = generators::barbell(8, 1);
        let standard =
            SingleSpaceSampler::new(&g, 8, SingleSpaceConfig::new(5_000, 3)).unwrap().run();
        let literal =
            SingleSpaceSampler::new(&g, 8, SingleSpaceConfig::new(5_000, 3).accepted_only())
                .unwrap()
                .run();
        // Same chain path (same seed), but the literal reading drops
        // rejected re-counts, deflating the estimate.
        assert!(literal.bc < standard.bc);
    }

    #[test]
    fn oracle_cache_bounds_spd_passes() {
        let g = generators::barbell(6, 1);
        let est = SingleSpaceSampler::new(&g, 6, SingleSpaceConfig::new(5_000, 4)).unwrap().run();
        // At most one pass per vertex: the state space has 13 vertices.
        assert!(est.spd_passes <= 13, "passes = {}", est.spd_passes);
        assert!(est.oracle_stats.hit_rate() > 0.9);
    }

    #[test]
    fn rejects_invalid_configs() {
        let g = generators::path(10);
        assert!(matches!(
            SingleSpaceSampler::new(&g, 99, SingleSpaceConfig::new(10, 0)),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
        let tiny = generators::path(2);
        assert!(matches!(
            SingleSpaceSampler::new(&tiny, 0, SingleSpaceConfig::new(10, 0)),
            Err(CoreError::GraphTooSmall { .. })
        ));
        assert!(matches!(
            SingleSpaceSampler::new(&g, 0, SingleSpaceConfig::new(10, 0).with_initial(99)),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
    }

    #[test]
    fn reduced_view_is_bit_identical_on_pendant_free_dyadic_graphs() {
        // Cycles have σ ∈ {1, 2} and dyadic dependency values, so the
        // reduced pass (relabelled, multiplicity-aware with all-unit
        // multiplicities) reproduces every density bit for bit — and
        // therefore the whole chain trajectory and estimate.
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        for n in [15usize, 16] {
            let g = generators::cycle(n);
            let red = reduce(&g, ReduceLevel::Full).unwrap();
            assert_eq!(red.stats().pruned_vertices, 0);
            assert_eq!(red.stats().collapsed_vertices, 0);
            for seed in [3u64, 19] {
                let direct = SingleSpaceSampler::new(&g, 0, SingleSpaceConfig::new(2_000, seed))
                    .unwrap()
                    .run();
                let through = SingleSpaceSampler::for_view(
                    SpdView::preprocessed(&g, &red),
                    0,
                    SingleSpaceConfig::new(2_000, seed),
                )
                .unwrap()
                .run();
                assert_eq!(direct.bc.to_bits(), through.bc.to_bits(), "cycle({n}) seed {seed}");
                assert_eq!(direct.bc_corrected.to_bits(), through.bc_corrected.to_bits());
                assert_eq!(direct.acceptance_rate.to_bits(), through.acceptance_rate.to_bits());
            }
        }
    }

    #[test]
    fn reduced_view_converges_to_the_same_limit_on_pendant_graphs() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(8, 4);
        let r = 0; // a clique vertex (the pendant path prunes away entirely)
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        assert!(red.stats().pruned_vertices > 0);
        assert!(red.is_retained(r));
        let direct =
            SingleSpaceSampler::new(&g, r, SingleSpaceConfig::new(40_000, 7)).unwrap().run();
        let through = SingleSpaceSampler::for_view(
            SpdView::preprocessed(&g, &red),
            r,
            SingleSpaceConfig::new(40_000, 7),
        )
        .unwrap()
        .run();
        assert!(
            (direct.bc - through.bc).abs() < 0.02,
            "direct {} vs reduced {}",
            direct.bc,
            through.bc
        );
        assert!((direct.bc_corrected - through.bc_corrected).abs() < 0.02);
        // The reduced run needs strictly fewer SPD passes: pendant sources
        // coalesce onto their attachment's row.
        assert!(
            through.spd_passes < direct.spd_passes,
            "reduced {} vs direct {}",
            through.spd_passes,
            direct.spd_passes
        );
    }

    #[test]
    fn pruned_probe_is_rejected_with_a_dedicated_error() {
        use mhbc_graph::reduce::{reduce, ReduceLevel};
        let g = generators::lollipop(5, 3);
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        let r = 7; // path tail: pruned
        assert!(!red.is_retained(r));
        assert!(matches!(
            SingleSpaceSampler::for_view(
                SpdView::preprocessed(&g, &red),
                r,
                SingleSpaceConfig::new(10, 0)
            ),
            Err(CoreError::PrunedProbe { probe: 7 })
        ));
        // The closed form is available instead.
        let exact = mhbc_spd::exact_betweenness_of(&g, r);
        assert_eq!(red.exact_pruned_bc(r), Some(exact));
    }

    #[test]
    fn initial_state_is_respected_and_counted() {
        let g = generators::path(10);
        let cfg = SingleSpaceConfig::new(0, 0).with_initial(5).with_trace();
        let sampler = SingleSpaceSampler::new(&g, 5, cfg).unwrap();
        // delta_5(5) = 0, so with zero iterations the estimate is 0.
        assert_eq!(sampler.estimate(), 0.0);
        let est = sampler.run();
        assert_eq!(est.iterations, 0);
        assert_eq!(est.trace.unwrap().len(), 1);
    }
}
