//! Sampled estimator for the *extended* relative betweenness of the
//! paper's footnote 2 (§4.3).
//!
//! The footnote generalises Eq 23 from source-level to pair-level
//! dependencies:
//!
//! `BC^ext_{rj}(ri) = (1/(n(n−1))) Σ_v Σ_{t≠v} min{1, δ_vt(ri) / δ_vt(rj)}`
//!
//! with `δ_vt(x) = σ_vt(x)/σ_vt`. The paper leaves this as a remark; here it
//! is realised as a sampler: an independence MH chain over sources `v` with
//! stationary law `∝ δ_{v•}(rj)` (the same chain as §4.2 targeted at `rj`),
//! where each visited source contributes
//! `f_ext(v) = (1/(n−1)) Σ_t min{1, δ_vt(ri)/δ_vt(rj)}`, computable from one
//! SPD pass at `v` plus two precomputed SPDs rooted at the probes
//! (`δ_vt(x) = [d(v,x) + d(x,t) = d(v,t)] · σ_vx σ_xt / σ_vt`).
//!
//! Like the paper's own estimators, the chain average converges to the
//! `P_rj`-weighted mean of `f_ext`, not the uniform one (see
//! [`crate::optimal`]'s soundness note); [`stationary_extended_limit`]
//! computes that true limit for validation. Unweighted graphs only.

use crate::optimal::min_dependency_ratio;
use crate::oracle::ProbeOracle;
use crate::CoreError;
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_mcmc::{MetropolisHastings, TargetDensity, UniformProposal};
use mhbc_spd::BfsSpd;
use rand::{rngs::SmallRng, RngExt, SeedableRng};

const UNREACHED: u32 = u32::MAX;

/// Precomputed SPDs rooted at the two probes, plus a working SPD for the
/// chain's source states.
struct PairDependencyKernel<'g> {
    graph: &'g CsrGraph,
    ri: Vertex,
    rj: Vertex,
    spd_i: BfsSpd,
    spd_j: BfsSpd,
    spd_v: BfsSpd,
}

impl<'g> PairDependencyKernel<'g> {
    fn new(graph: &'g CsrGraph, ri: Vertex, rj: Vertex) -> Self {
        let n = graph.num_vertices();
        let mut spd_i = BfsSpd::new(n);
        spd_i.compute(graph, ri);
        let mut spd_j = BfsSpd::new(n);
        spd_j.compute(graph, rj);
        PairDependencyKernel { graph, ri, rj, spd_i, spd_j, spd_v: BfsSpd::new(n) }
    }

    /// `f_ext(v) = (1/(n−1)) Σ_{t≠v} min{1, δ_vt(ri)/δ_vt(rj)}`.
    ///
    /// One BFS from `v` plus an `O(n)` scan over targets.
    fn f_ext(&mut self, v: Vertex) -> f64 {
        let n = self.graph.num_vertices();
        self.spd_v.compute(self.graph, v);
        let pair_dep = |spd_x: &BfsSpd, x: Vertex, t: usize| -> f64 {
            // delta_vt(x) = sigma_vx * sigma_xt / sigma_vt if x is interior
            // to a shortest v-t path.
            if x as usize == t || x == v {
                return 0.0;
            }
            let t = t as Vertex;
            let (dvx, dxt, dvt) = (self.spd_v.dist(x), spd_x.dist(t), self.spd_v.dist(t));
            if dvx == UNREACHED || dxt == UNREACHED || dvt == UNREACHED || dvx + dxt != dvt {
                return 0.0;
            }
            self.spd_v.sigma(x) * spd_x.sigma(t) / self.spd_v.sigma(t)
        };
        let mut sum = 0.0;
        for t in 0..n {
            if t == v as usize || self.spd_v.dist(t as Vertex) == UNREACHED {
                continue;
            }
            let di = pair_dep(&self.spd_i, self.ri, t);
            let dj = pair_dep(&self.spd_j, self.rj, t);
            sum += min_dependency_ratio(di, dj);
        }
        sum / (n as f64 - 1.0)
    }
}

/// Result of an extended-relative run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedEstimate {
    /// The estimated extended relative score of `ri` with respect to `rj`.
    pub score: f64,
    /// Iterations performed.
    pub iterations: u64,
    /// Fraction of proposals accepted.
    pub acceptance_rate: f64,
}

/// Chain target: `δ_{v•}(rj)` (the §4.2 density pointed at `rj`).
struct ExtTarget<'g> {
    oracle: ProbeOracle<'g>,
}

impl TargetDensity for ExtTarget<'_> {
    type State = Vertex;

    fn density(&mut self, v: &Vertex) -> f64 {
        self.oracle.dep(*v, 0)
    }
}

/// Runs the footnote-2 extended-relative sampler for `iterations` steps.
///
/// Costs up to two SPD passes per iteration (one for the acceptance density
/// — memoised across revisits — and one for `f_ext` of the occupied state).
pub fn extended_relative_sampled(
    g: &CsrGraph,
    ri: Vertex,
    rj: Vertex,
    iterations: u64,
    seed: u64,
) -> Result<ExtendedEstimate, CoreError> {
    let n = g.num_vertices();
    if n < 3 {
        return Err(CoreError::GraphTooSmall { num_vertices: n });
    }
    for p in [ri, rj] {
        if p as usize >= n {
            return Err(CoreError::ProbeOutOfRange { probe: p, num_vertices: n });
        }
    }
    assert!(!g.is_weighted(), "extended relative scores are defined for unweighted graphs");

    let mut kernel = PairDependencyKernel::new(g, ri, rj);
    let mut rng = SmallRng::seed_from_u64(seed);
    let initial = rng.random_range(0..n as Vertex);
    let target = ExtTarget { oracle: ProbeOracle::new(g, &[rj]) };
    let mut chain = MetropolisHastings::new(target, UniformProposal::new(n), initial, rng);

    // f_ext of the occupied state, lazily recomputed only on moves.
    let mut current_f = kernel.f_ext(*chain.state());
    let mut sum = current_f;
    for _ in 0..iterations {
        let out = chain.step();
        if out.accepted {
            current_f = kernel.f_ext(*chain.state());
        }
        sum += current_f;
    }
    Ok(ExtendedEstimate {
        score: sum / (iterations + 1) as f64,
        iterations,
        acceptance_rate: chain.stats().acceptance_rate(),
    })
}

/// The true limit of [`extended_relative_sampled`]: the `P_rj`-weighted mean
/// of `f_ext` (exact, `O(n)` SPD passes — validation only).
pub fn stationary_extended_limit(g: &CsrGraph, ri: Vertex, rj: Vertex) -> f64 {
    let n = g.num_vertices();
    let profile_j = mhbc_spd::dependency_profile_par(g, rj, 0);
    let total = profile_j.total();
    if total <= 0.0 {
        return f64::NAN;
    }
    let mut kernel = PairDependencyKernel::new(g, ri, rj);
    let mut acc = 0.0;
    for v in 0..n as Vertex {
        let w = profile_j.profile[v as usize];
        if w > 0.0 {
            acc += w / total * kernel.f_ext(v);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::extended_relative_betweenness;
    use mhbc_graph::generators;

    #[test]
    fn diagonal_extended_score_is_one_for_separator() {
        // f_ext(v) with ri = rj is 1 wherever any pair-dependency is
        // positive and 1 by the 0/0 convention elsewhere.
        let g = generators::barbell(5, 1);
        let est = extended_relative_sampled(&g, 5, 5, 2_000, 3).expect("valid probes");
        assert!((est.score - 1.0).abs() < 1e-9, "score {}", est.score);
    }

    #[test]
    fn converges_to_stationary_extended_limit() {
        let g = generators::barbell(5, 3);
        let (ri, rj) = (5u32, 6u32);
        let limit = stationary_extended_limit(&g, ri, rj);
        let est = extended_relative_sampled(&g, ri, rj, 40_000, 11).expect("valid probes");
        assert!((est.score - limit).abs() < 0.02, "sampled {} vs limit {limit}", est.score);
    }

    #[test]
    fn extended_and_simple_orders_agree_on_path() {
        // On a path the centre dominates: both the simple (Eq 23) and the
        // extended (footnote 2) relative scores must rank it above an
        // off-centre vertex.
        let g = generators::path(11);
        let (centre, off) = (5u32, 8u32);
        let simple_c = crate::optimal::exact_relative_betweenness(&g, centre, off, 1);
        let simple_o = crate::optimal::exact_relative_betweenness(&g, off, centre, 1);
        let ext_c = extended_relative_betweenness(&g, centre, off);
        let ext_o = extended_relative_betweenness(&g, off, centre);
        assert!(simple_c > simple_o);
        assert!(ext_c > ext_o, "extended: {ext_c} vs {ext_o}");
    }

    #[test]
    fn rejects_bad_probes() {
        let g = generators::path(5);
        assert!(matches!(
            extended_relative_sampled(&g, 99, 1, 10, 0),
            Err(CoreError::ProbeOutOfRange { .. })
        ));
        let tiny = generators::path(2);
        assert!(matches!(
            extended_relative_sampled(&tiny, 0, 1, 10, 0),
            Err(CoreError::GraphTooSmall { .. })
        ));
    }
}
