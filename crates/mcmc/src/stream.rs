//! Deterministic RNG stream splitting for pipelined chains.
//!
//! The paper's samplers are *independence* chains: the proposal at step `t`
//! does not depend on the chain's state, so the whole proposal sequence is
//! an i.i.d. stream that can be reproduced — and therefore evaluated ahead
//! of time — by anyone holding the same generator state. To make that
//! possible without perturbing the accept/reject draws, the chain runner
//! keeps **two** split streams:
//!
//! - the *proposal stream*, which deterministically produces `x'_1, x'_2, …`
//!   and can be cloned by prefetch workers, and
//! - the *acceptance stream*, which stays on the chain thread and feeds only
//!   the `u ~ U[0, 1)` accept/reject draws.
//!
//! Splitting is one-way: the child stream is seeded from one draw of the
//! parent, after which the two sequences are computationally independent
//! (SplitMix64 seeding scrambles the 64-bit draw into a full xoshiro state).
//! Equal parents always split into equal children, so every run remains a
//! pure function of its seed.

use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Generators that can deterministically fork an independent child stream.
///
/// `split_stream` advances `self` by exactly one draw and returns a child
/// whose future output is (computationally) independent of the parent's.
/// Used by [`crate::MetropolisHastings`] to separate the proposal stream
/// from the acceptance stream, and by prefetch pipelines to hand workers a
/// replica of the proposal stream.
pub trait StreamSplit: Sized {
    /// Forks an independent child generator, advancing `self` by one draw.
    fn split_stream(&mut self) -> Self;
}

impl StreamSplit for SmallRng {
    fn split_stream(&mut self) -> Self {
        SmallRng::seed_from_u64(self.next_u64())
    }
}

/// Generators whose full internal state can be captured and restored —
/// the property the checkpoint/resume machinery needs to make a resumed
/// chain continue the *exact* draw sequence of an uninterrupted run.
///
/// The saved form is four 64-bit words (xoshiro256++-sized; smaller
/// generators may pad with zeros). Restoring must be exact:
/// `R::restore_state(r.save_state())` produces a generator whose future
/// output is bit-identical to `r`'s.
pub trait RngSnapshot: Sized {
    /// Captures the generator's full internal state.
    fn save_state(&self) -> [u64; 4];

    /// Rebuilds a generator that continues the captured stream exactly.
    fn restore_state(state: [u64; 4]) -> Self;
}

impl RngSnapshot for SmallRng {
    fn save_state(&self) -> [u64; 4] {
        self.state()
    }

    fn restore_state(state: [u64; 4]) -> Self {
        SmallRng::from_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn split_is_deterministic_and_advances_parent() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut ca = a.split_stream();
        let mut cb = b.split_stream();
        // Equal parents -> equal children and equal continued parents.
        for _ in 0..8 {
            assert_eq!(ca.random::<u64>(), cb.random::<u64>());
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn snapshot_roundtrip_continues_the_stream() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..5 {
            let _ = rng.random::<u64>();
        }
        let saved = rng.save_state();
        let tail: Vec<u64> = (0..16).map(|_| rng.random()).collect();
        let mut restored = SmallRng::restore_state(saved);
        let replay: Vec<u64> = (0..16).map(|_| restored.random()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn child_differs_from_parent_stream() {
        let mut parent = SmallRng::seed_from_u64(9);
        let mut child = parent.split_stream();
        let p: Vec<u64> = (0..8).map(|_| parent.random()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.random()).collect();
        assert_ne!(p, c);
    }
}
