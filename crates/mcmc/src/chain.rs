//! The Metropolis–Hastings chain runner.

use crate::{Proposal, RngSnapshot, StreamSplit};
use rand::{Rng, RngExt};

/// An unnormalised target density `f(x) ∝ P[x]`.
///
/// Implementations may be stateful (e.g. memoise expensive evaluations —
/// the betweenness samplers' density is a full SPD pass).
pub trait TargetDensity {
    /// The state type of the chain.
    type State;

    /// Unnormalised density `f(x) >= 0`.
    fn density(&mut self, x: &Self::State) -> f64;
}

/// Adapter turning a closure into a [`TargetDensity`] (used by tests and
/// ablations where the density is cheap).
pub struct FnTarget<S, F: FnMut(&S) -> f64> {
    f: F,
    _marker: std::marker::PhantomData<fn(&S)>,
}

/// Wraps a closure as a target density.
pub fn fn_target<S, F: FnMut(&S) -> f64>(f: F) -> FnTarget<S, F> {
    FnTarget { f, _marker: std::marker::PhantomData }
}

impl<S, F: FnMut(&S) -> f64> TargetDensity for FnTarget<S, F> {
    type State = S;

    fn density(&mut self, x: &S) -> f64 {
        (self.f)(x)
    }
}

/// Counters describing a chain's history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Proposals considered (equals the number of steps taken).
    pub steps: u64,
    /// Proposals accepted (transitions actually made).
    pub accepted: u64,
}

impl ChainStats {
    /// Fraction of proposals accepted; 0 for an unstepped chain.
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }
}

/// The full resumable state of a [`MetropolisHastings`] chain: current
/// state and its cached density, acceptance counters, and both RNG stream
/// states. Everything *except* the target (whose memoisation caches are
/// checkpointed separately by the caller — they are a performance artifact,
/// not chain state) and the proposal (stateless for the samplers here).
///
/// [`MetropolisHastings::restore`] rebuilds a chain from a snapshot
/// **without re-evaluating the density**, so a resumed chain is
/// bit-identical to an uninterrupted one — including the exact sequence of
/// proposal and acceptance draws.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSnapshot<S> {
    /// The chain's current state.
    pub state: S,
    /// Cached density of `state` (restored verbatim; never re-evaluated).
    pub density: f64,
    /// Acceptance counters.
    pub stats: ChainStats,
    /// Saved proposal-stream generator state.
    pub proposal_rng: [u64; 4],
    /// Saved acceptance-stream generator state.
    pub accept_rng: [u64; 4],
}

/// Outcome of a single MH step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Whether the proposal was accepted.
    pub accepted: bool,
    /// Density of the (possibly unchanged) current state after the step.
    pub density: f64,
    /// Density of the proposed state (whether or not it was accepted).
    /// Under an independence proposal the proposals are i.i.d. draws from
    /// the proposal law, so this stream doubles as a plain Monte Carlo
    /// sample — the waste-recycling the corrected estimators exploit.
    pub proposed_density: f64,
}

/// A Metropolis–Hastings chain (§2.2): from state `x`, draw `x' ~ q(·|x)`
/// and move with probability `min{1, f(x')/f(x) · q(x|x')/q(x'|x)}`.
///
/// The current state's density is cached, so **each step performs exactly
/// one density evaluation** — the property that makes the paper's samplers
/// cost one SPD pass per iteration.
///
/// ## Split RNG streams
///
/// The chain draws proposals and accept/reject uniforms from **two separate
/// streams** (see [`crate::StreamSplit`]): [`MetropolisHastings::new`]
/// splits the supplied generator once, keeping the parent as the proposal
/// stream and the child as the acceptance stream. For independence
/// proposals this makes the proposal sequence a pure function of the seed,
/// reproducible by prefetch workers, while the acceptance draws stay on the
/// chain thread — the property the speculative pipeline in `mhbc-core`
/// relies on for bit-identical parallel/sequential results. Callers that
/// need explicit control over the two streams (the pipeline does) can use
/// [`MetropolisHastings::with_streams`].
///
/// ## Zero-density states
///
/// The paper's acceptance ratio (Eq 6) is `δ'/δ`, undefined when the current
/// dependency is 0. Following DESIGN.md note 2: a zero-density current state
/// accepts every proposal (ratio treated as +∞, covering both `0 → positive`
/// and `0 → 0`), while `positive → 0` proposals are always rejected. The
/// zero set has stationary mass 0, so this choice only affects how fast the
/// chain escapes a bad initial state, never the stationary distribution.
pub struct MetropolisHastings<T, P, R>
where
    T: TargetDensity,
    P: Proposal<T::State>,
    R: Rng,
{
    target: T,
    proposal: P,
    proposal_rng: R,
    accept_rng: R,
    current: T::State,
    current_density: f64,
    stats: ChainStats,
}

impl<T, P, R> MetropolisHastings<T, P, R>
where
    T: TargetDensity,
    T::State: Clone,
    P: Proposal<T::State>,
    R: Rng,
{
    /// Starts a chain at `initial` (one density evaluation), splitting `rng`
    /// into the proposal stream (the parent) and the acceptance stream (the
    /// child) — see the type-level docs.
    pub fn new(target: T, proposal: P, initial: T::State, mut rng: R) -> Self
    where
        R: StreamSplit,
    {
        let accept_rng = rng.split_stream();
        Self::with_streams(target, proposal, initial, rng, accept_rng)
    }

    /// Starts a chain with explicitly supplied proposal and acceptance
    /// streams (one density evaluation). Prefetch pipelines use this to
    /// hold a replica of `proposal_rng` for their workers.
    pub fn with_streams(
        mut target: T,
        proposal: P,
        initial: T::State,
        proposal_rng: R,
        accept_rng: R,
    ) -> Self {
        let current_density = target.density(&initial);
        MetropolisHastings {
            target,
            proposal,
            proposal_rng,
            accept_rng,
            current: initial,
            current_density,
            stats: ChainStats::default(),
        }
    }

    /// Captures the chain's full resumable state (see [`ChainSnapshot`]).
    pub fn snapshot(&self) -> ChainSnapshot<T::State>
    where
        R: RngSnapshot,
    {
        ChainSnapshot {
            state: self.current.clone(),
            density: self.current_density,
            stats: self.stats.clone(),
            proposal_rng: self.proposal_rng.save_state(),
            accept_rng: self.accept_rng.save_state(),
        }
    }

    /// Rebuilds a chain from a [`ChainSnapshot`] **without evaluating the
    /// density** (the snapshot's cached value is restored verbatim), so the
    /// resumed chain's draw sequence, acceptance decisions, and target-side
    /// evaluation counts continue exactly where the snapshot left off.
    pub fn restore(target: T, proposal: P, snapshot: ChainSnapshot<T::State>) -> Self
    where
        R: RngSnapshot,
    {
        MetropolisHastings {
            target,
            proposal,
            proposal_rng: R::restore_state(snapshot.proposal_rng),
            accept_rng: R::restore_state(snapshot.accept_rng),
            current: snapshot.state,
            current_density: snapshot.density,
            stats: snapshot.stats,
        }
    }

    /// Performs one MH transition; returns whether it was accepted and the
    /// density of the state the chain now occupies.
    pub fn step(&mut self) -> StepOutcome {
        let proposed = self.proposal.propose(&self.current, &mut self.proposal_rng);
        let proposed_density = self.target.density(&proposed);

        let accept = if self.current_density <= 0.0 {
            // Zero-density current state: escape unconditionally.
            true
        } else {
            let ratio = (proposed_density / self.current_density)
                * self.proposal.ratio(&self.current, &proposed);
            ratio >= 1.0 || self.accept_rng.random::<f64>() < ratio
        };

        self.stats.steps += 1;
        if accept {
            self.stats.accepted += 1;
            self.current = proposed;
            self.current_density = proposed_density;
        }
        StepOutcome { accepted: accept, density: self.current_density, proposed_density }
    }

    /// The chain's current state.
    pub fn state(&self) -> &T::State {
        &self.current
    }

    /// Cached density of the current state.
    pub fn current_density(&self) -> f64 {
        self.current_density
    }

    /// Acceptance counters.
    pub fn stats(&self) -> &ChainStats {
        &self.stats
    }

    /// Access to the target (e.g. to read memoisation statistics).
    pub fn target(&self) -> &T {
        &self.target
    }

    /// Mutable access to the target.
    pub fn target_mut(&mut self) -> &mut T {
        &mut self.target
    }

    /// Consumes the chain, returning the target (for cache reuse).
    pub fn into_target(self) -> T {
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformProposal;
    use rand::{rngs::SmallRng, SeedableRng};

    /// Run a chain against a small discrete target and check the empirical
    /// state frequencies converge to the normalised target.
    #[test]
    fn chain_converges_to_target_distribution() {
        let weights = [1.0f64, 2.0, 3.0, 4.0];
        let target = fn_target(move |x: &u32| weights[*x as usize]);
        let mut chain = MetropolisHastings::new(
            target,
            UniformProposal::new(4),
            0u32,
            SmallRng::seed_from_u64(11),
        );
        let mut counts = [0u64; 4];
        let steps = 200_000;
        for _ in 0..steps {
            chain.step();
            counts[*chain.state() as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for i in 0..4 {
            let freq = counts[i] as f64 / steps as f64;
            let expect = weights[i] / total;
            assert!(
                (freq - expect).abs() < 0.01,
                "state {i}: empirical {freq:.4} vs target {expect:.4}"
            );
        }
    }

    #[test]
    fn zero_density_start_escapes_immediately() {
        // State 0 has zero density; any proposal must be accepted.
        let target = fn_target(|x: &u32| if *x == 0 { 0.0 } else { 1.0 });
        let mut chain = MetropolisHastings::new(
            target,
            UniformProposal::new(5),
            0u32,
            SmallRng::seed_from_u64(12),
        );
        let out = chain.step();
        assert!(out.accepted);
    }

    #[test]
    fn never_moves_to_zero_density_from_positive() {
        let target = fn_target(|x: &u32| if *x == 0 { 0.0 } else { 1.0 });
        let mut chain = MetropolisHastings::new(
            target,
            UniformProposal::new(2),
            1u32,
            SmallRng::seed_from_u64(13),
        );
        for _ in 0..200 {
            chain.step();
            assert_eq!(*chain.state(), 1, "chain must stay off the zero state");
        }
    }

    #[test]
    fn uphill_moves_always_accepted() {
        // Strictly increasing density: proposals above current always accept.
        let target = fn_target(|x: &u32| (*x + 1) as f64);
        let mut chain = MetropolisHastings::new(
            target,
            UniformProposal::new(10),
            0u32,
            SmallRng::seed_from_u64(14),
        );
        let mut prev = *chain.state();
        for _ in 0..100 {
            let out = chain.step();
            let cur = *chain.state();
            if cur > prev {
                assert!(out.accepted);
            }
            prev = cur;
        }
    }

    #[test]
    fn stats_track_steps_and_acceptances() {
        let target = fn_target(|_: &u32| 1.0);
        let mut chain = MetropolisHastings::new(
            target,
            UniformProposal::new(3),
            0u32,
            SmallRng::seed_from_u64(15),
        );
        for _ in 0..50 {
            chain.step();
        }
        let s = chain.stats();
        assert_eq!(s.steps, 50);
        // Flat target + symmetric proposal: every proposal accepted.
        assert_eq!(s.accepted, 50);
        assert_eq!(s.acceptance_rate(), 1.0);
    }

    #[test]
    fn with_streams_reproduces_new_exactly() {
        use crate::StreamSplit;
        let weights = [1.0f64, 3.0, 2.0, 5.0];
        let mut a_chain = MetropolisHastings::new(
            fn_target(|x: &u32| weights[*x as usize]),
            UniformProposal::new(4),
            0u32,
            SmallRng::seed_from_u64(21),
        );
        let a: Vec<(bool, u32)> =
            (0..200).map(|_| (a_chain.step().accepted, *a_chain.state())).collect();
        let mut rng = SmallRng::seed_from_u64(21);
        let acc = rng.split_stream();
        let mut b_chain = MetropolisHastings::with_streams(
            fn_target(|x: &u32| weights[*x as usize]),
            UniformProposal::new(4),
            0u32,
            rng,
            acc,
        );
        let b: Vec<(bool, u32)> =
            (0..200).map(|_| (b_chain.step().accepted, *b_chain.state())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn proposal_stream_is_a_pure_function_of_the_seed() {
        use crate::StreamSplit;
        use rand::RngExt;
        // Two targets with very different acceptance behaviour must see the
        // SAME proposal sequence for the same seed: acceptance draws come
        // from the split child stream, never the proposal stream.
        let record = |bias: f64| -> Vec<u32> {
            let proposals = std::cell::RefCell::new(Vec::new());
            {
                let target = fn_target(|x: &u32| {
                    proposals.borrow_mut().push(*x);
                    1.0 + bias * (*x as f64)
                });
                let mut chain = MetropolisHastings::new(
                    target,
                    UniformProposal::new(6),
                    0u32,
                    SmallRng::seed_from_u64(77),
                );
                for _ in 0..100 {
                    chain.step();
                }
            }
            proposals.into_inner()
        };
        assert_eq!(record(0.0), record(100.0));
        // And a worker holding the same split replica re-derives it.
        let mut rng = SmallRng::seed_from_u64(77);
        let _accept = rng.split_stream();
        let mut proposal = UniformProposal::new(6);
        let expected: Vec<u32> = (0..100).map(|_| rng.random_range(0..6u32)).collect();
        let mut replica = SmallRng::seed_from_u64(77);
        let _ = replica.split_stream();
        let replayed: Vec<u32> = (0..100).map(|_| proposal.propose(&0, &mut replica)).collect();
        assert_eq!(expected, replayed);
        // record() evaluates the initial state first, then one proposal per
        // step — so the recorded tail equals the replayed stream.
        assert_eq!(&record(0.0)[1..], &replayed[..]);
    }

    #[test]
    fn snapshot_resume_is_bit_identical_to_uninterrupted() {
        let weights = [1.0f64, 3.0, 2.0, 5.0, 0.5];
        let mk_target = || fn_target(|x: &u32| weights[*x as usize]);
        let mut full = MetropolisHastings::new(
            mk_target(),
            UniformProposal::new(5),
            0u32,
            SmallRng::seed_from_u64(33),
        );
        let mut half = MetropolisHastings::new(
            mk_target(),
            UniformProposal::new(5),
            0u32,
            SmallRng::seed_from_u64(33),
        );
        for _ in 0..120 {
            half.step();
        }
        let snap = half.snapshot();
        let mut resumed: MetropolisHastings<_, _, SmallRng> =
            MetropolisHastings::restore(mk_target(), UniformProposal::new(5), snap);
        let uninterrupted: Vec<(bool, u32, u64)> = (0..240)
            .map(|_| {
                let o = full.step();
                (o.accepted, *full.state(), o.density.to_bits())
            })
            .collect();
        let resumed_tail: Vec<(bool, u32, u64)> = (0..120)
            .map(|_| {
                let o = resumed.step();
                (o.accepted, *resumed.state(), o.density.to_bits())
            })
            .collect();
        assert_eq!(&uninterrupted[120..], &resumed_tail[..]);
        assert_eq!(full.stats(), resumed.stats());
    }

    #[test]
    fn density_cache_counts_one_eval_per_step() {
        use std::cell::Cell;
        let evals = Cell::new(0u64);
        let target = fn_target(|x: &u32| {
            evals.set(evals.get() + 1);
            (*x + 1) as f64
        });
        let mut chain = MetropolisHastings::new(
            target,
            UniformProposal::new(6),
            0u32,
            SmallRng::seed_from_u64(16),
        );
        assert_eq!(evals.get(), 1); // initial state
        for _ in 0..40 {
            chain.step();
        }
        assert_eq!(evals.get(), 41, "exactly one density evaluation per step");
    }
}
