//! Streaming convergence diagnostics and adaptive stopping.
//!
//! The offline helpers in [`crate::diagnostics`] take a full trace slice
//! and rescan it per query — fine for post-hoc analysis (experiment F2),
//! useless inside a sampling loop that wants a continue/stop decision every
//! segment. [`DiagnosticsMonitor`] is the *online* counterpart: it absorbs
//! the chain's observation series incrementally in O(1) amortised time per
//! observation and bounded memory, and answers the three questions an
//! adaptive stopping rule needs —
//!
//! - **batch-means standard error** of the series mean (the MCMC standard
//!   error that accounts for autocorrelation),
//! - **effective sample size** via batched autocorrelation
//!   (`ESS = n · Var(x) / (b · Var(batch means))` — the classic
//!   batch-means estimate of `n/τ`),
//! - **Geweke drift** (`z` between the earliest and latest batch means).
//!
//! All three are computed from a bounded ring of *batch means*: incoming
//! observations accumulate into a current batch; when
//! [`MAX_BATCHES`](DiagnosticsMonitor::MAX_BATCHES) batches exist, adjacent
//! pairs merge and the batch size doubles — the standard doubling scheme
//! that keeps memory constant for arbitrarily long chains while the batch
//! size grows past the autocorrelation time (which is what makes the
//! batch-means variance consistent). No query ever rescans the series.
//!
//! [`StoppingRule`] turns the monitor into a decision: run a fixed budget,
//! stop at a target standard error (an `(ε, δ)`-style CLT criterion), or
//! stop at a target effective sample size — the adaptive sample-size
//! selection of Chehreghani et al. 2018 ("Novel Adaptive Algorithms …"),
//! which dominates fixed a-priori budgets whenever the planner's `µ(r)`
//! bound is conservative (it usually is; see experiment F3c).
//!
//! The monitor's full state round-trips through [`DiagnosticsMonitor::encode`] /
//! [`DiagnosticsMonitor::decode`] bit-exactly, so checkpointed runs resume
//! with identical future stopping decisions.

use crate::diagnostics::RunningMoments;

/// Online convergence diagnostics over a bounded batch-means ring; see the
/// module docs for the estimators and their complexity.
///
/// ```
/// use mhbc_mcmc::monitor::DiagnosticsMonitor;
///
/// let mut m = DiagnosticsMonitor::new();
/// // An i.i.d.-ish series: ESS should be close to n.
/// let mut x = 0u64;
/// for _ in 0..4096 {
///     x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
///     m.push((x >> 11) as f64 / (1u64 << 53) as f64);
/// }
/// assert_eq!(m.count(), 4096);
/// assert!(m.ess() > 1000.0);
/// assert!(m.batch_stderr() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DiagnosticsMonitor {
    /// Exact moments of the full series (count, mean, M2).
    total: RunningMoments,
    /// Largest observation seen.
    max_observed: f64,
    /// Completed batch means, oldest first (`len() <= MAX_BATCHES`).
    batch_means: Vec<f64>,
    /// Observations per completed batch (doubles when the ring fills).
    batch_size: u64,
    /// Sum of the in-progress batch.
    cur_sum: f64,
    /// Observations in the in-progress batch.
    cur_count: u64,
}

impl Default for DiagnosticsMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl DiagnosticsMonitor {
    /// Ring capacity: when this many batches complete, adjacent pairs merge
    /// and the batch size doubles. 64 batches keep the batch-means variance
    /// estimate usable (≥ 32 means after a merge) at constant memory.
    pub const MAX_BATCHES: usize = 64;

    /// Initial observations per batch. Small enough that short runs get
    /// diagnostics quickly; the doubling scheme grows it as needed.
    pub const INITIAL_BATCH: u64 = 32;

    /// Empty monitor.
    pub fn new() -> Self {
        DiagnosticsMonitor {
            total: RunningMoments::new(),
            max_observed: f64::NEG_INFINITY,
            batch_means: Vec::with_capacity(Self::MAX_BATCHES),
            batch_size: Self::INITIAL_BATCH,
            cur_sum: 0.0,
            cur_count: 0,
        }
    }

    /// Absorbs one observation (O(1) amortised).
    pub fn push(&mut self, x: f64) {
        self.total.push(x);
        if x > self.max_observed {
            self.max_observed = x;
        }
        self.cur_sum += x;
        self.cur_count += 1;
        if self.cur_count == self.batch_size {
            self.flush_batch();
        }
    }

    /// Absorbs a slice of observations (the engines feed whole segments at
    /// once, keeping the per-iteration hot loop free of diagnostics work).
    pub fn absorb(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    fn flush_batch(&mut self) {
        self.batch_means.push(self.cur_sum / self.cur_count as f64);
        self.cur_sum = 0.0;
        self.cur_count = 0;
        if self.batch_means.len() == Self::MAX_BATCHES {
            // Merge adjacent pairs; the batch size doubles. Equal-weight
            // averaging is exact because every completed batch holds
            // exactly `batch_size` observations.
            for i in 0..Self::MAX_BATCHES / 2 {
                self.batch_means[i] = (self.batch_means[2 * i] + self.batch_means[2 * i + 1]) / 2.0;
            }
            self.batch_means.truncate(Self::MAX_BATCHES / 2);
            self.batch_size *= 2;
        }
    }

    /// Observations absorbed so far.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// Mean of the full series.
    pub fn mean(&self) -> f64 {
        self.total.mean()
    }

    /// Unbiased variance of the full series (`NaN` with < 2 observations).
    pub fn variance(&self) -> f64 {
        self.total.variance()
    }

    /// Largest observation seen (`-inf` while empty).
    pub fn max_observed(&self) -> f64 {
        self.max_observed
    }

    /// Number of completed batches currently in the ring.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Current batch size (observations per completed batch).
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Moments of the completed batch means.
    fn batch_moments(&self) -> RunningMoments {
        let mut m = RunningMoments::new();
        for &b in &self.batch_means {
            m.push(b);
        }
        m
    }

    /// Batch-means standard error of the series mean:
    /// `sqrt(Var(batch means) / #batches)`. `NaN` until two batches have
    /// completed — not enough evidence for any error claim.
    pub fn batch_stderr(&self) -> f64 {
        let m = self.batch_moments();
        if m.count() < 2 {
            return f64::NAN;
        }
        (m.variance() / m.count() as f64).sqrt()
    }

    /// Effective sample size via batched autocorrelation:
    /// `ESS = n · Var(x) / (b · Var(batch means))`, clamped to `[1, n]`.
    /// A constant series (both variances 0) counts as fully effective
    /// (`ESS = n`); `NaN` until two batches have completed.
    pub fn ess(&self) -> f64 {
        let m = self.batch_moments();
        if m.count() < 2 {
            return f64::NAN;
        }
        let n = self.count() as f64;
        let var = self.total.variance();
        let bm_var = m.variance();
        if var <= 0.0 || bm_var <= 0.0 {
            // Constant series, or batch means that agree exactly: no
            // detectable autocorrelation at this batch scale.
            return n;
        }
        (n * var / (self.batch_size as f64 * bm_var)).clamp(1.0, n)
    }

    /// Integrated autocorrelation time `τ = n / ESS` (`NaN` while ESS is).
    pub fn tau(&self) -> f64 {
        self.count() as f64 / self.ess()
    }

    /// Geweke-style drift score over the batch means: the z-statistic
    /// between the earliest 10% and the latest 50% of completed batches.
    /// `NaN` until 10 batches have completed or when either window has zero
    /// variance (same degenerate-input convention as
    /// [`crate::diagnostics::geweke_z`]).
    pub fn geweke_z(&self) -> f64 {
        let k = self.batch_means.len();
        if k < 10 {
            return f64::NAN;
        }
        let na = (k / 10).max(2);
        let nb = (k / 2).max(2);
        let (mut ma, mut mb) = (RunningMoments::new(), RunningMoments::new());
        for &b in &self.batch_means[..na] {
            ma.push(b);
        }
        for &b in &self.batch_means[k - nb..] {
            mb.push(b);
        }
        let se = (ma.variance() / na as f64 + mb.variance() / nb as f64).sqrt();
        if se == 0.0 {
            f64::NAN
        } else {
            (ma.mean() - mb.mean()) / se
        }
    }

    /// Serialises the monitor's complete state as 64-bit words (floats as
    /// raw bits), for bit-faithful checkpointing.
    pub fn encode(&self, out: &mut Vec<u64>) {
        let (count, mean, m2) = self.total.to_raw();
        out.extend([count, mean, m2, self.max_observed.to_bits()]);
        out.extend([self.batch_size, self.cur_sum.to_bits(), self.cur_count]);
        out.push(self.batch_means.len() as u64);
        out.extend(self.batch_means.iter().map(|b| b.to_bits()));
    }

    /// Rebuilds a monitor from [`DiagnosticsMonitor::encode`] output;
    /// returns `None` on malformed input. The restored monitor's future
    /// behaviour is bit-identical to the original's.
    pub fn decode(words: &[u64]) -> Option<(Self, usize)> {
        let header = words.get(..8)?;
        let n_batches = header[7] as usize;
        // The ring merges the moment it reaches MAX_BATCHES, so a live
        // monitor never holds more than MAX_BATCHES - 1 completed batches;
        // accepting a full ring would disable merging forever.
        if n_batches >= Self::MAX_BATCHES {
            return None;
        }
        let means = words.get(8..8 + n_batches)?;
        Some((
            DiagnosticsMonitor {
                total: RunningMoments::from_raw((header[0], header[1], header[2])),
                max_observed: f64::from_bits(header[3]),
                batch_size: header[4],
                cur_sum: f64::from_bits(header[5]),
                cur_count: header[6],
                batch_means: means.iter().map(|&b| f64::from_bits(b)).collect(),
            },
            8 + n_batches,
        ))
    }
}

/// Upper-tail standard-normal quantile `z` such that `P[Z > z] = p`,
/// via the Acklam rational approximation of the inverse CDF (absolute
/// error < 1.15e-9 — far below anything a stopping rule can resolve).
///
/// # Panics
/// If `p ∉ (0, 1)`.
pub fn normal_upper_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "tail probability must lie in (0, 1)");
    // Inverse CDF at 1 - p equals the upper-tail quantile at p.
    -inverse_normal_cdf(p)
}

/// Acklam's inverse standard-normal CDF.
fn inverse_normal_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// When an adaptive estimation run should stop.
///
/// The rule is consulted at **segment boundaries** only (the engines run in
/// segments of ~1k iterations), against the [`DiagnosticsMonitor`] fed with
/// the chain's observation series. The budget — the a-priori iteration
/// count, typically from the `(ε, δ)` planner — is always an upper bound;
/// the rule can only stop *earlier*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoppingRule {
    /// Run the full budget (the pre-adaptive behaviour, bit for bit).
    FixedIterations,
    /// Stop once the estimate's `(1−δ)` confidence half-width drops to
    /// `ε`: `z_{1−δ/2} · se ≤ ε`, with `se` the batch-means standard error
    /// of the estimate. The CLT counterpart of the planner's Ineq 14
    /// guarantee — asymptotic rather than non-asymptotic, but driven by the
    /// chain's *observed* variance instead of the worst-case `µ(r)` bound,
    /// which is what lets it stop long before the fixed plan.
    TargetStderr {
        /// Target additive error (confidence half-width).
        epsilon: f64,
        /// Allowed failure probability.
        delta: f64,
    },
    /// Stop once the online effective sample size reaches the target.
    TargetEss {
        /// Required effective sample size.
        target: f64,
    },
}

impl StoppingRule {
    /// Whether the target is met. `scale` maps the monitored series'
    /// standard error to the *estimate*'s standard error (the single-space
    /// estimator divides the dependency series by `n − 1`, so its `se` is
    /// the series `se / (n − 1)`).
    ///
    /// `NaN` diagnostics (not enough batches yet, degenerate windows — see
    /// the satellite NaN conventions) can never satisfy a target: every
    /// comparison with `NaN` is false, so the rule errs toward continuing.
    pub fn satisfied(&self, monitor: &DiagnosticsMonitor, scale: f64) -> bool {
        match *self {
            StoppingRule::FixedIterations => false,
            StoppingRule::TargetStderr { epsilon, delta } => {
                let se = monitor.batch_stderr() / scale;
                se.is_finite() && normal_upper_quantile(delta / 2.0) * se <= epsilon
            }
            StoppingRule::TargetEss { target } => monitor.ess() >= target,
        }
    }

    /// Human-readable summary (CLI and bench reporting).
    pub fn describe(&self) -> String {
        match *self {
            StoppingRule::FixedIterations => "fixed iterations".into(),
            StoppingRule::TargetStderr { epsilon, delta } => {
                format!("target se {epsilon} (delta {delta})")
            }
            StoppingRule::TargetEss { target } => format!("target ESS {target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics;
    use rand::{rngs::SmallRng, RngExt, SeedableRng};

    fn iid_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<f64>()).collect()
    }

    fn ar1_series(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = phi * x + rng.random::<f64>() - 0.5;
                x
            })
            .collect()
    }

    #[test]
    fn total_moments_match_offline() {
        let xs = iid_series(10_000, 1);
        let mut m = DiagnosticsMonitor::new();
        m.absorb(&xs);
        let mut offline = diagnostics::RunningMoments::new();
        for &x in &xs {
            offline.push(x);
        }
        assert_eq!(m.count(), 10_000);
        assert_eq!(m.mean().to_bits(), offline.mean().to_bits());
        assert_eq!(m.variance().to_bits(), offline.variance().to_bits());
        assert_eq!(m.max_observed(), xs.iter().cloned().fold(f64::MIN, f64::max));
    }

    #[test]
    fn ring_stays_bounded_and_batch_size_doubles() {
        let mut m = DiagnosticsMonitor::new();
        m.absorb(&iid_series(1_000_000, 2));
        assert!(m.batches() < DiagnosticsMonitor::MAX_BATCHES);
        assert!(m.batch_size() > DiagnosticsMonitor::INITIAL_BATCH);
        // All observations accounted for: completed batches + in-progress.
        assert_eq!(m.count(), 1_000_000);
    }

    #[test]
    fn batch_stderr_matches_offline_batch_means_scale() {
        // For iid U(0,1), SE of the mean is sqrt(1/12/n); the batched
        // estimate should land within a factor of 2.
        let n = 65_536;
        let mut m = DiagnosticsMonitor::new();
        m.absorb(&iid_series(n, 3));
        let classic = (1.0 / 12.0 / n as f64).sqrt();
        let se = m.batch_stderr();
        assert!(se > classic * 0.5 && se < classic * 2.0, "batched {se} vs classic {classic}");
    }

    #[test]
    fn ess_near_n_for_iid_and_small_for_correlated() {
        let n = 40_000;
        let mut iid = DiagnosticsMonitor::new();
        iid.absorb(&iid_series(n, 4));
        let ess_iid = iid.ess();
        assert!(ess_iid > n as f64 * 0.4, "iid ESS should be near n, got {ess_iid}");

        // AR(1), phi = 0.95: tau ~ 39, so ESS ~ n/39.
        let mut ar = DiagnosticsMonitor::new();
        ar.absorb(&ar1_series(n, 0.95, 5));
        let ess_ar = ar.ess();
        assert!(ess_ar < ess_iid / 5.0, "correlated ESS {ess_ar} vs iid {ess_iid}");
        assert!(ar.tau() > 5.0);
    }

    #[test]
    fn geweke_flags_drift_and_passes_stationary() {
        let mut stationary = DiagnosticsMonitor::new();
        stationary.absorb(&iid_series(20_000, 6));
        let z = stationary.geweke_z();
        assert!(z.abs() < 4.0, "stationary series should pass, z = {z}");

        let mut drifting = DiagnosticsMonitor::new();
        let mut rng = SmallRng::seed_from_u64(7);
        for i in 0..20_000 {
            drifting.push(i as f64 / 20_000.0 + rng.random::<f64>() * 0.01);
        }
        let z = drifting.geweke_z();
        assert!(z.abs() > 10.0, "drifting series should fail, z = {z}");
    }

    #[test]
    fn degenerate_states_are_nan_not_zero() {
        let mut m = DiagnosticsMonitor::new();
        assert!(m.batch_stderr().is_nan());
        assert!(m.ess().is_nan());
        assert!(m.geweke_z().is_nan());
        m.push(1.0);
        assert!(m.batch_stderr().is_nan(), "one observation proves nothing");
        // A constant series is fully effective with zero standard error.
        let mut c = DiagnosticsMonitor::new();
        c.absorb(&vec![2.0; 4096]);
        assert_eq!(c.batch_stderr(), 0.0);
        assert_eq!(c.ess(), 4096.0);
        assert!(c.geweke_z().is_nan(), "zero-variance windows have no z-score");
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let xs = ar1_series(12_345, 0.7, 8);
        let mut m = DiagnosticsMonitor::new();
        m.absorb(&xs[..10_000]);
        let mut words = Vec::new();
        m.encode(&mut words);
        let (mut r, used) = DiagnosticsMonitor::decode(&words).expect("well-formed");
        assert_eq!(used, words.len());
        // Identical queries now…
        assert_eq!(m.batch_stderr().to_bits(), r.batch_stderr().to_bits());
        assert_eq!(m.ess().to_bits(), r.ess().to_bits());
        // …and identical future behaviour.
        m.absorb(&xs[10_000..]);
        r.absorb(&xs[10_000..]);
        assert_eq!(m.batch_stderr().to_bits(), r.batch_stderr().to_bits());
        assert_eq!(m.ess().to_bits(), r.ess().to_bits());
        assert_eq!(m.geweke_z().to_bits(), r.geweke_z().to_bits());
        assert!(DiagnosticsMonitor::decode(&words[..3]).is_none());
        // A full ring is a state encode can never produce: reject it, or
        // the restored monitor would never merge again.
        let mut full = vec![0u64; 8 + DiagnosticsMonitor::MAX_BATCHES];
        full[7] = DiagnosticsMonitor::MAX_BATCHES as u64;
        assert!(DiagnosticsMonitor::decode(&full).is_none());
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        for (p, z) in [(0.025, 1.959964), (0.05, 1.644854), (0.005, 2.575829), (0.5, 0.0)] {
            let got = normal_upper_quantile(p);
            assert!((got - z).abs() < 1e-5, "p = {p}: {got} vs {z}");
        }
        assert!((normal_upper_quantile(0.975) + 1.959964).abs() < 1e-5);
    }

    #[test]
    fn stopping_rules_decide_as_documented() {
        let mut m = DiagnosticsMonitor::new();
        assert!(!StoppingRule::TargetStderr { epsilon: 1.0, delta: 0.05 }.satisfied(&m, 1.0));
        assert!(!StoppingRule::TargetEss { target: 1.0 }.satisfied(&m, 1.0));
        m.absorb(&iid_series(8_192, 9));
        // iid U(0,1) over 8k samples: se ~ 0.003.
        assert!(StoppingRule::TargetStderr { epsilon: 0.05, delta: 0.05 }.satisfied(&m, 1.0));
        assert!(!StoppingRule::TargetStderr { epsilon: 1e-6, delta: 0.05 }.satisfied(&m, 1.0));
        // A larger scale divides the se: easier to satisfy.
        assert!(StoppingRule::TargetStderr { epsilon: 1e-4, delta: 0.05 }.satisfied(&m, 100.0));
        assert!(StoppingRule::TargetEss { target: 1_000.0 }.satisfied(&m, 1.0));
        assert!(!StoppingRule::TargetEss { target: 1e9 }.satisfied(&m, 1.0));
        assert!(!StoppingRule::FixedIterations.satisfied(&m, 1.0));
        assert!(StoppingRule::FixedIterations.describe().contains("fixed"));
        assert!(StoppingRule::TargetStderr { epsilon: 0.1, delta: 0.05 }
            .describe()
            .contains("target se"));
    }
}
