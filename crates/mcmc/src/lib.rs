//! # mhbc-mcmc
//!
//! Generic Metropolis–Hastings machinery (§2.2 of the paper), chain
//! diagnostics, and the paper's non-asymptotic error bounds.
//!
//! The crate is deliberately independent of graphs: states are any `Clone`
//! type, targets are *unnormalised densities* (the whole point of MH is that
//! the normalisation constant — here `Σ_v δ_{v•}(r)`, i.e. the betweenness
//! itself — is unknown), and proposals are pluggable. `mhbc-core`
//! instantiates this framework with dependency-score densities to obtain the
//! paper's two samplers, and the F8 ablation swaps proposals without
//! touching the chain.
//!
//! - [`MetropolisHastings`] — the chain runner; caches the current state's
//!   density so each step costs exactly one density evaluation.
//! - [`Proposal`] — proposal distributions: [`UniformProposal`] (the paper's
//!   choice: independence MH with `q = 1/|V|`), [`WeightedProposal`]
//!   (independence with arbitrary weights, e.g. degree-biased), and
//!   graph-random-walk proposals defined downstream.
//! - [`diagnostics`] — acceptance statistics, running moments,
//!   autocorrelation / integrated autocorrelation time, effective sample
//!   size, Geweke z-scores, batch-means standard errors.
//! - [`bounds`] — the MCMC Hoeffding tail of Łatuszyński et al. (Ineq 9),
//!   the sample-size planner (Ineq 14 / 27), and its inverse.

pub mod bounds;
mod chain;
pub mod diagnostics;
mod proposal;

pub use chain::{fn_target, ChainStats, FnTarget, MetropolisHastings, StepOutcome, TargetDensity};
pub use proposal::{Proposal, UniformProposal, WeightedProposal};
