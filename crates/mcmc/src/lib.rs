//! # mhbc-mcmc
//!
//! Generic Metropolis–Hastings machinery (§2.2 of the paper), chain
//! diagnostics, and the paper's non-asymptotic error bounds.
//!
//! The crate is deliberately independent of graphs: states are any `Clone`
//! type, targets are *unnormalised densities* (the whole point of MH is that
//! the normalisation constant — here `Σ_v δ_{v•}(r)`, i.e. the betweenness
//! itself — is unknown), and proposals are pluggable. `mhbc-core`
//! instantiates this framework with dependency-score densities to obtain the
//! paper's two samplers, and the F8 ablation swaps proposals without
//! touching the chain.
//!
//! - [`MetropolisHastings`] — the chain runner; caches the current state's
//!   density so each step costs exactly one density evaluation, and draws
//!   proposals and accept/reject uniforms from two split RNG streams
//!   ([`StreamSplit`]) so independence-chain proposal sequences are
//!   reproducible by prefetch workers.
//! - [`Proposal`] — proposal distributions: [`UniformProposal`] (the paper's
//!   choice: independence MH with `q = 1/|V|`), [`WeightedProposal`]
//!   (independence with arbitrary weights, e.g. degree-biased), and
//!   graph-random-walk proposals defined downstream.
//! - [`diagnostics`] — acceptance statistics, running moments,
//!   autocorrelation / integrated autocorrelation time, effective sample
//!   size, Geweke z-scores, batch-means standard errors.
//! - [`monitor`] — the *streaming* counterpart: [`DiagnosticsMonitor`]
//!   computes ESS, Geweke drift, and batch-means standard errors
//!   incrementally (bounded memory, no trace rescans), and
//!   [`StoppingRule`] turns them into the continue/stop decisions of the
//!   adaptive estimation engine in `mhbc-core`.
//! - [`ChainSnapshot`] / [`RngSnapshot`] — bit-exact chain state export,
//!   the foundation of `mhbc-core`'s checkpoint/resume.
//! - [`bounds`] — the MCMC Hoeffding tail of Łatuszyński et al. (Ineq 9),
//!   the sample-size planner (Ineq 14 / 27), and its inverse.
//!
//! ```
//! use mhbc_mcmc::{fn_target, MetropolisHastings, UniformProposal};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // Independence MH targeting P[x] ∝ x + 1 on states {0, 1, 2, 3}.
//! let target = fn_target(|x: &u32| (x + 1) as f64);
//! let mut chain =
//!     MetropolisHastings::new(target, UniformProposal::new(4), 0, SmallRng::seed_from_u64(1));
//! let steps = 20_000;
//! let mut mass = 0u64;
//! for _ in 0..steps {
//!     chain.step();
//!     mass += *chain.state() as u64;
//! }
//! // Stationary mean: (0·1 + 1·2 + 2·3 + 3·4) / 10 = 2.
//! assert!((mass as f64 / steps as f64 - 2.0).abs() < 0.05);
//! assert!(chain.stats().acceptance_rate() > 0.5);
//! ```

pub mod bounds;
mod chain;
pub mod diagnostics;
pub mod monitor;
mod proposal;
mod stream;

pub use chain::{
    fn_target, ChainSnapshot, ChainStats, FnTarget, MetropolisHastings, StepOutcome, TargetDensity,
};
pub use monitor::{DiagnosticsMonitor, StoppingRule};
pub use proposal::{Proposal, UniformProposal, WeightedProposal};
pub use stream::{RngSnapshot, StreamSplit};
