//! Chain-quality diagnostics.
//!
//! The paper's guarantees (Theorems 1 and 4) rest on uniform ergodicity of
//! the independence sampler; these diagnostics provide the empirical
//! counterpart for experiment F2 — how fast the chains actually mix on each
//! graph family.

/// Welford online mean/variance accumulator (numerically stable; no stored
/// series needed).
#[derive(Debug, Clone, Default)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance.
    ///
    /// With fewer than two observations the sample variance is
    /// **undefined**, and this returns a clean `f64::NAN` (it used to
    /// return 0, silently conflating "no evidence" with "zero spread" —
    /// a zero that e.g. a stopping rule would happily treat as converged).
    /// `NaN` propagates through every comparison as `false`, so degenerate
    /// inputs can never satisfy a threshold by accident.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation (`NaN` with < 2 observations, like
    /// [`RunningMoments::variance`]).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The accumulator's raw state `(count, mean bits, m2 bits)` — the
    /// exact Welford registers, for bit-faithful checkpointing.
    pub fn to_raw(&self) -> (u64, u64, u64) {
        (self.count, self.mean.to_bits(), self.m2.to_bits())
    }

    /// Rebuilds an accumulator from [`RunningMoments::to_raw`] output;
    /// future pushes continue the exact Welford recursion.
    pub fn from_raw(raw: (u64, u64, u64)) -> Self {
        RunningMoments { count: raw.0, mean: f64::from_bits(raw.1), m2: f64::from_bits(raw.2) }
    }
}

/// Normalised autocorrelation function `ρ(0..=max_lag)` of `series`
/// (`ρ(0) = 1`). Returns an empty vector for constant or too-short series.
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    let mut acf = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let cov: f64 =
            (0..n - lag).map(|i| (series[i] - mean) * (series[i + lag] - mean)).sum::<f64>()
                / n as f64;
        acf.push(cov / var);
    }
    acf
}

/// Integrated autocorrelation time `τ = 1 + 2 Σ_k ρ(k)`, truncating the sum
/// at the first non-positive autocorrelation (Geyer's initial positive
/// sequence, the standard practical estimator). Constant series get `τ = 1`.
pub fn integrated_autocorrelation_time(series: &[f64]) -> f64 {
    let acf = autocorrelation(series, series.len().saturating_sub(1).min(1000));
    if acf.is_empty() {
        return 1.0;
    }
    let mut tau = 1.0;
    for &rho in acf.iter().skip(1) {
        if rho <= 0.0 {
            break;
        }
        tau += 2.0 * rho;
    }
    tau
}

/// Effective sample size `n / τ`.
pub fn effective_sample_size(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.len() as f64 / integrated_autocorrelation_time(series)
}

/// Geweke convergence z-score comparing the mean of the first
/// `first_frac` of the series against the last `last_frac` (classically 0.1
/// and 0.5). |z| ≲ 2 is consistent with stationarity.
///
/// Degenerate inputs return a clean `f64::NAN` (they used to return 0 — a
/// value indistinguishable from "perfectly stationary"): a series shorter
/// than 10 observations has no meaningful windows, and zero-variance
/// windows make the z denominator 0, so the score is undefined rather than
/// reassuring. `NaN` fails every `|z| < threshold` comparison, which is the
/// safe default for a convergence check.
pub fn geweke_z(series: &[f64], first_frac: f64, last_frac: f64) -> f64 {
    assert!(first_frac > 0.0 && last_frac > 0.0 && first_frac + last_frac <= 1.0);
    let n = series.len();
    if n < 10 {
        return f64::NAN;
    }
    let na = ((n as f64 * first_frac) as usize).max(2);
    let nb = ((n as f64 * last_frac) as usize).max(2);
    let a = &series[..na];
    let b = &series[n - nb..];
    let (mut ma, mut mb) = (RunningMoments::new(), RunningMoments::new());
    for &x in a {
        ma.push(x);
    }
    for &x in b {
        mb.push(x);
    }
    let se = (ma.variance() / na as f64 + mb.variance() / nb as f64).sqrt();
    if se == 0.0 {
        f64::NAN
    } else {
        (ma.mean() - mb.mean()) / se
    }
}

/// Batch-means standard error of the series mean using `batches` equal
/// batches — a robust MCMC standard error that accounts for autocorrelation.
pub fn batch_means_stderr(series: &[f64], batches: usize) -> f64 {
    let n = series.len();
    assert!(batches >= 2, "need at least two batches");
    if n < 2 * batches {
        return f64::NAN;
    }
    let bs = n / batches;
    let mut means = RunningMoments::new();
    for b in 0..batches {
        let chunk = &series[b * bs..(b + 1) * bs];
        means.push(chunk.iter().sum::<f64>() / bs as f64);
    }
    (means.variance() / batches as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, RngExt, SeedableRng};

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = RunningMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert_eq!(m.count(), 8);
    }

    #[test]
    fn empty_and_single_moments_have_undefined_variance() {
        let mut m = RunningMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert!(m.variance().is_nan(), "variance of 0 observations is undefined");
        assert!(m.std_dev().is_nan());
        m.push(3.0);
        assert_eq!(m.mean(), 3.0);
        assert!(m.variance().is_nan(), "variance of 1 observation is undefined");
        m.push(3.0);
        assert_eq!(m.variance(), 0.0, "two equal observations have zero variance, not NaN");
    }

    #[test]
    fn moments_raw_roundtrip_is_bit_exact() {
        let mut m = RunningMoments::new();
        for x in [0.25, -1.5, 3.75, 0.1, 9.0] {
            m.push(x);
        }
        let mut r = RunningMoments::from_raw(m.to_raw());
        assert_eq!(m.count(), r.count());
        assert_eq!(m.mean().to_bits(), r.mean().to_bits());
        assert_eq!(m.variance().to_bits(), r.variance().to_bits());
        // Continued pushes agree bit for bit.
        m.push(0.7);
        r.push(0.7);
        assert_eq!(m.mean().to_bits(), r.mean().to_bits());
        assert_eq!(m.variance().to_bits(), r.variance().to_bits());
    }

    #[test]
    fn geweke_degenerate_inputs_are_nan() {
        // Too short for meaningful windows.
        assert!(geweke_z(&[1.0; 9], 0.1, 0.5).is_nan());
        // Zero-variance slices: the z denominator is 0, score undefined.
        assert!(geweke_z(&[2.0; 100], 0.1, 0.5).is_nan());
        // A NaN score fails any "is it converged" comparison — the safe
        // direction for a stopping rule.
        let z = geweke_z(&[2.0; 100], 0.1, 0.5);
        let converged = z.abs() < 2.0;
        assert!(!converged);
    }

    #[test]
    fn acf_of_iid_noise_decays() {
        let mut rng = SmallRng::seed_from_u64(21);
        let series: Vec<f64> = (0..20_000).map(|_| rng.random::<f64>()).collect();
        let acf = autocorrelation(&series, 5);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        for &rho in &acf[1..] {
            assert!(rho.abs() < 0.05, "iid noise should be uncorrelated, got {rho}");
        }
    }

    #[test]
    fn acf_of_constant_series_is_empty() {
        assert!(autocorrelation(&[2.0; 100], 10).is_empty());
        assert_eq!(integrated_autocorrelation_time(&[2.0; 100]), 1.0);
    }

    #[test]
    fn ess_near_n_for_iid_and_small_for_correlated() {
        let mut rng = SmallRng::seed_from_u64(22);
        let iid: Vec<f64> = (0..5_000).map(|_| rng.random::<f64>()).collect();
        let ess_iid = effective_sample_size(&iid);
        assert!(ess_iid > 3_500.0, "iid ESS should be near n, got {ess_iid}");

        // AR(1) with phi = 0.95: tau ~ (1 + phi) / (1 - phi) = 39.
        let mut x = 0.0;
        let ar: Vec<f64> = (0..5_000)
            .map(|_| {
                x = 0.95 * x + rng.random::<f64>() - 0.5;
                x
            })
            .collect();
        let ess_ar = effective_sample_size(&ar);
        assert!(
            ess_ar < ess_iid / 5.0,
            "correlated ESS {ess_ar} should be far below iid {ess_iid}"
        );
    }

    #[test]
    fn geweke_flags_drifting_series() {
        let mut rng = SmallRng::seed_from_u64(23);
        let stationary: Vec<f64> = (0..5_000).map(|_| rng.random::<f64>()).collect();
        let z = geweke_z(&stationary, 0.1, 0.5);
        assert!(z.abs() < 3.5, "stationary series should pass, z = {z}");

        let drifting: Vec<f64> =
            (0..5_000).map(|i| i as f64 / 5_000.0 + rng.random::<f64>() * 0.01).collect();
        let z = geweke_z(&drifting, 0.1, 0.5);
        assert!(z.abs() > 10.0, "drifting series should fail, z = {z}");
    }

    #[test]
    fn batch_means_close_to_classic_se_for_iid() {
        let mut rng = SmallRng::seed_from_u64(24);
        let series: Vec<f64> = (0..40_000).map(|_| rng.random::<f64>()).collect();
        let se = batch_means_stderr(&series, 20);
        // Classic SE of the mean of U(0,1): sqrt(1/12 / n) ~ 0.00144.
        let classic = (1.0f64 / 12.0 / series.len() as f64).sqrt();
        assert!(se > classic * 0.5 && se < classic * 2.0, "batch-means {se} vs classic {classic}");
    }

    #[test]
    fn batch_means_needs_enough_data() {
        assert!(batch_means_stderr(&[1.0, 2.0, 3.0], 2).is_nan());
    }
}
