//! The paper's non-asymptotic (ε, δ) machinery.
//!
//! Three pieces, used verbatim by Theorems 1 and 4:
//!
//! 1. [`mcmc_hoeffding_tail`] — the Łatuszyński–Miasojedow–Niemiro
//!    Hoeffding-type tail for uniformly ergodic chains (Ineq 9):
//!    `P[|θ̂ − θ| > ε] ≤ 2 exp{ −(n−1)/2 · (2λε/‖f‖sp − 3/(n−1))² }`.
//! 2. [`required_samples`] — the paper's sample-size rule (Ineq 14 / 27):
//!    `T ≥ µ(r)²/(2ε²) · ln(2/δ)` (obtained from (1) with `λ = 1/µ(r)`,
//!    `‖f‖sp = 1` and the `3/T ≈ 0` simplification the paper makes).
//! 3. [`achievable_epsilon`] — the inverse of (2): the additive error
//!    guaranteed with probability `1 − δ` after `T` samples.

/// Tail probability bound of Ineq 9 for an `n`-sample MCMC average with
/// minorisation constant `lambda` (`q(·|x) ≥ λ φ(·)`), function span
/// `f_span = sup f − inf f`, and deviation `eps`.
///
/// The bound is only a *deviation* bound when the inner term is positive;
/// when `2λε/‖f‖sp ≤ 3/(n−1)` the stated expression is vacuous and this
/// function returns 1.0 (the trivial bound). The returned value is always
/// clamped to `[0, 1]`.
///
/// # Panics
/// If any argument is non-positive, `n < 2`, or not finite.
pub fn mcmc_hoeffding_tail(n: u64, lambda: f64, f_span: f64, eps: f64) -> f64 {
    assert!(n >= 2, "need at least two samples");
    assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be positive");
    assert!(f_span > 0.0 && f_span.is_finite(), "span must be positive");
    assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
    let m = (n - 1) as f64;
    let term = 2.0 * lambda * eps / f_span - 3.0 / m;
    if term <= 0.0 {
        return 1.0;
    }
    (2.0 * (-0.5 * m * term * term).exp()).clamp(0.0, 1.0)
}

/// Ineq 14 / 27: iterations `T` such that the sampler estimates within
/// additive error `eps` with probability at least `1 − delta`, given the
/// concentration constant `µ(r)` (Ineq 11).
///
/// # Panics
/// If `mu < 1`, `eps <= 0`, or `delta ∉ (0, 1)`.
pub fn required_samples(mu: f64, eps: f64, delta: f64) -> u64 {
    assert!(mu >= 1.0 && mu.is_finite(), "mu must be >= 1 (it bounds max/mean)");
    assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    let t = mu * mu / (2.0 * eps * eps) * (2.0 / delta).ln();
    t.ceil() as u64
}

/// Inverse of [`required_samples`]: the additive error achievable with
/// probability `1 − delta` after `t` iterations.
///
/// # Panics
/// If `t == 0`, `mu < 1`, or `delta ∉ (0, 1)`.
pub fn achievable_epsilon(t: u64, mu: f64, delta: f64) -> f64 {
    assert!(t > 0, "need at least one sample");
    assert!(mu >= 1.0 && mu.is_finite(), "mu must be >= 1");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    mu * ((2.0 / delta).ln() / (2.0 * t as f64)).sqrt()
}

/// The exact (un-simplified) tail of Ineq 12 for the paper's samplers:
/// [`mcmc_hoeffding_tail`] specialised to `λ = 1/µ(r)` and `‖f‖sp = 1`,
/// keeping the `3/T` term the paper drops. Useful for checking how much the
/// simplification matters at small `T` (experiment F3).
pub fn single_sampler_tail(t: u64, mu: f64, eps: f64) -> f64 {
    assert!(mu >= 1.0 && mu.is_finite(), "mu must be >= 1");
    // Ineq 12 uses T as the iteration count with n = T + 1 samples.
    mcmc_hoeffding_tail(t + 1, 1.0 / mu, 1.0, eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_decreases_with_samples_and_eps() {
        let t1 = mcmc_hoeffding_tail(1_000, 0.5, 1.0, 0.05);
        let t2 = mcmc_hoeffding_tail(10_000, 0.5, 1.0, 0.05);
        assert!(t2 < t1, "more samples must tighten the bound");
        let t3 = mcmc_hoeffding_tail(10_000, 0.5, 1.0, 0.1);
        assert!(t3 < t2, "larger eps must tighten the bound");
    }

    #[test]
    fn tail_is_trivial_when_term_nonpositive() {
        // Tiny eps with few samples: 2λε/span <= 3/(n-1).
        assert_eq!(mcmc_hoeffding_tail(4, 1.0, 1.0, 1e-9), 1.0);
    }

    #[test]
    fn tail_clamped_to_unit_interval() {
        let t = mcmc_hoeffding_tail(10, 1.0, 1.0, 0.4);
        assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn planner_roundtrips_with_inverse() {
        for &(mu, eps, delta) in &[(1.0, 0.01, 0.05), (2.0, 0.005, 0.1), (10.0, 0.02, 0.01)] {
            let t = required_samples(mu, eps, delta);
            let eps_back = achievable_epsilon(t, mu, delta);
            assert!(
                eps_back <= eps * 1.0001,
                "eps from T={t} should be <= requested: {eps_back} vs {eps}"
            );
            // One fewer sample should no longer achieve eps.
            if t > 1 {
                let eps_less = achievable_epsilon(t - 1, mu, delta);
                assert!(eps_less > eps * 0.999);
            }
        }
    }

    #[test]
    fn planner_scales_quadratically_in_mu_over_eps() {
        let base = required_samples(1.0, 0.01, 0.05);
        let double_mu = required_samples(2.0, 0.01, 0.05);
        let half_eps = required_samples(1.0, 0.005, 0.05);
        // Allow ±1 from ceiling.
        assert!((double_mu as i64 - 4 * base as i64).abs() <= 4);
        assert!((half_eps as i64 - 4 * base as i64).abs() <= 4);
    }

    #[test]
    fn constant_mu_means_constant_samples() {
        // The paper's headline: when mu(r) is a constant, T(eps, delta) does
        // not depend on the graph size at all.
        let t = required_samples(2.0, 0.05, 0.05);
        assert_eq!(t, required_samples(2.0, 0.05, 0.05));
        assert!(t < 10_000, "constant-mu budget should be laptop-trivial, got {t}");
    }

    #[test]
    fn single_sampler_tail_approaches_simplified_form() {
        // At large T the kept 3/T term is negligible: tail(T) should be close
        // to the delta recovered from the simplified planner.
        let (mu, eps) = (2.0, 0.05);
        let t = 200_000u64;
        let tail = single_sampler_tail(t, mu, eps);
        let simplified = 2.0 * (-(t as f64) * eps * eps * 2.0 / (2.0 * mu * mu)).exp();
        assert!(
            (tail - simplified).abs() < simplified * 0.1 + 1e-12,
            "exact {tail} vs simplified {simplified}"
        );
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1)")]
    fn planner_rejects_bad_delta() {
        let _ = required_samples(1.0, 0.1, 1.5);
    }

    #[test]
    #[should_panic(expected = "mu must be >= 1")]
    fn planner_rejects_mu_below_one() {
        let _ = required_samples(0.5, 0.1, 0.1);
    }
}
