//! Proposal distributions.

use rand::{Rng, RngExt};

/// A Markov-chain proposal `q(x' | x)`.
///
/// `ratio(current, proposed)` must return `q(current | proposed) /
/// q(proposed | current)` — the Hastings correction. Symmetric and
/// independence-with-uniform proposals return 1; weighted independence
/// proposals return `g(current) / g(proposed)`.
pub trait Proposal<S> {
    /// Draws a candidate state given the current one.
    fn propose<R: Rng + ?Sized>(&mut self, current: &S, rng: &mut R) -> S;

    /// Hastings ratio `q(current | proposed) / q(proposed | current)`.
    fn ratio(&self, current: &S, proposed: &S) -> f64;

    /// Draws a candidate **without reference to any current state**, for
    /// proposals whose law is state-independent (independence chains).
    ///
    /// Implementations that override this MUST consume `rng` exactly as
    /// [`Proposal::propose`] does, so a worker replaying the proposal stream
    /// stays draw-for-draw in sync with the chain. State-*dependent*
    /// proposals (e.g. neighbourhood random walks) keep the default `None`,
    /// which tells the prefetch pipeline to fall back to sequential
    /// evaluation.
    fn propose_iid<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<S> {
        let _ = rng;
        None
    }
}

/// Independence proposal, uniform over `0..n` — the paper's proposal for
/// both samplers (`q(· | x) = 1 / |V(G)|`, §4.2).
#[derive(Debug, Clone)]
pub struct UniformProposal {
    n: u32,
}

impl UniformProposal {
    /// Uniform over `0..n`.
    ///
    /// # Panics
    /// If `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cannot propose from an empty state space");
        UniformProposal { n: n as u32 }
    }

    /// Size of the state space.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Always false (the constructor rejects emptiness).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Proposal<u32> for UniformProposal {
    fn propose<R: Rng + ?Sized>(&mut self, _current: &u32, rng: &mut R) -> u32 {
        rng.random_range(0..self.n)
    }

    fn ratio(&self, _current: &u32, _proposed: &u32) -> f64 {
        1.0
    }

    fn propose_iid<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u32> {
        Some(rng.random_range(0..self.n))
    }
}

/// Independence proposal over `0..n` with probabilities proportional to a
/// fixed weight vector (e.g. vertex degrees — the F8 ablation).
///
/// Sampling is `O(log n)` by binary search on the cumulative weights.
#[derive(Debug, Clone)]
pub struct WeightedProposal {
    cumulative: Vec<f64>,
    weights: Vec<f64>,
    total: f64,
}

impl WeightedProposal {
    /// Builds from non-negative weights, at least one positive.
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative/non-finite value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "weight {i} = {w} invalid");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights sum to zero");
        WeightedProposal { cumulative, weights: weights.to_vec(), total: acc }
    }

    /// Proposal probability of state `x` (normalised).
    pub fn probability(&self, x: u32) -> f64 {
        self.weights[x as usize] / self.total
    }
}

impl Proposal<u32> for WeightedProposal {
    fn propose<R: Rng + ?Sized>(&mut self, _current: &u32, rng: &mut R) -> u32 {
        let u = rng.random::<f64>() * self.total;
        // partition_point returns the first index with cumulative > u.
        let idx = self.cumulative.partition_point(|&c| c <= u);
        idx.min(self.cumulative.len() - 1) as u32
    }

    fn ratio(&self, current: &u32, proposed: &u32) -> f64 {
        // q(current)/q(proposed) for an independence proposal.
        self.weights[*current as usize] / self.weights[*proposed as usize]
    }

    fn propose_iid<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u32> {
        Some(self.propose(&0, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn uniform_covers_space() {
        let mut p = UniformProposal::new(10);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[p.propose(&0, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(p.ratio(&3, &7), 1.0);
    }

    #[test]
    fn uniform_is_approximately_uniform() {
        let mut p = UniformProposal::new(4);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        let trials = 40_000;
        for _ in 0..trials {
            counts[p.propose(&0, &mut rng) as usize] += 1;
        }
        for &c in &counts {
            let dev = (c as f64 - trials as f64 / 4.0).abs() / (trials as f64 / 4.0);
            assert!(dev < 0.05, "count {c}");
        }
    }

    #[test]
    fn weighted_matches_weights() {
        let mut p = WeightedProposal::new(&[1.0, 3.0, 0.0, 4.0]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        let trials = 80_000;
        for _ in 0..trials {
            counts[p.propose(&0, &mut rng) as usize] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight state must never be proposed");
        for (i, expect) in [(0usize, 1.0 / 8.0), (1, 3.0 / 8.0), (3, 4.0 / 8.0)] {
            let freq = counts[i] as f64 / trials as f64;
            assert!((freq - expect).abs() < 0.01, "state {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn weighted_hastings_ratio() {
        let p = WeightedProposal::new(&[1.0, 2.0]);
        assert_eq!(p.ratio(&0, &1), 0.5);
        assert_eq!(p.ratio(&1, &0), 2.0);
        assert!((p.probability(1) - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn rejects_all_zero_weights() {
        let _ = WeightedProposal::new(&[0.0, 0.0]);
    }

    #[test]
    fn propose_iid_matches_propose_draw_for_draw() {
        let mut u = UniformProposal::new(9);
        let mut w = WeightedProposal::new(&[1.0, 2.0, 3.0]);
        let mut a = SmallRng::seed_from_u64(6);
        let mut b = SmallRng::seed_from_u64(6);
        for _ in 0..200 {
            assert_eq!(u.propose_iid(&mut a), Some(u.propose(&0, &mut b)));
            assert_eq!(w.propose_iid(&mut a), Some(w.propose(&2, &mut b)));
        }
    }
}
