//! Property-based tests for the MCMC machinery.

use mhbc_mcmc::{
    bounds, diagnostics, fn_target, MetropolisHastings, Proposal, UniformProposal, WeightedProposal,
};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

proptest! {
    /// The Hoeffding-MCMC tail is monotone: more samples or larger eps
    /// never loosen the bound.
    #[test]
    fn tail_monotone(n in 10u64..100_000, lambda in 0.01f64..1.0, eps in 0.001f64..0.5) {
        let t1 = bounds::mcmc_hoeffding_tail(n, lambda, 1.0, eps);
        let t2 = bounds::mcmc_hoeffding_tail(n * 2, lambda, 1.0, eps);
        let t3 = bounds::mcmc_hoeffding_tail(n, lambda, 1.0, eps * 1.5);
        prop_assert!(t2 <= t1 + 1e-12);
        prop_assert!(t3 <= t1 + 1e-12);
        prop_assert!((0.0..=1.0).contains(&t1));
    }

    /// Planner/inverse consistency for arbitrary valid parameters.
    #[test]
    fn planner_inverse_consistent(mu in 1.0f64..50.0, eps in 0.001f64..0.5, delta in 0.001f64..0.5) {
        let t = bounds::required_samples(mu, eps, delta);
        prop_assert!(t >= 1);
        let eps_back = bounds::achievable_epsilon(t, mu, delta);
        prop_assert!(eps_back <= eps * (1.0 + 1e-9));
    }

    /// A weighted independence proposal never proposes zero-weight states
    /// and its Hastings ratio is the exact weight ratio.
    #[test]
    fn weighted_proposal_support(weights in proptest::collection::vec(0.0f64..10.0, 2..20), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut p = WeightedProposal::new(&weights);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = p.propose(&0, &mut rng);
            prop_assert!(weights[s as usize] > 0.0, "proposed zero-weight state {}", s);
        }
        // Ratio check on two positive-weight states.
        let pos: Vec<u32> = (0..weights.len() as u32).filter(|&i| weights[i as usize] > 0.0).collect();
        if pos.len() >= 2 {
            let (a, b) = (pos[0], pos[1]);
            let expect = weights[a as usize] / weights[b as usize];
            prop_assert!((p.ratio(&a, &b) - expect).abs() < 1e-12);
        }
    }

    /// Chains over flat targets accept everything regardless of proposal.
    #[test]
    fn flat_target_accepts_all(n in 2usize..50, seed in any::<u64>(), steps in 1u64..200) {
        let mut chain = MetropolisHastings::new(
            fn_target(|_: &u32| 1.0),
            UniformProposal::new(n),
            0u32,
            SmallRng::seed_from_u64(seed),
        );
        for _ in 0..steps {
            prop_assert!(chain.step().accepted);
        }
        prop_assert_eq!(chain.stats().accepted, steps);
    }

    /// The chain state always remains inside the proposal's support.
    #[test]
    fn chain_stays_in_space(n in 2usize..40, seed in any::<u64>()) {
        let weights: Vec<f64> = (0..n).map(|i| (i % 5 + 1) as f64).collect();
        let mut chain = MetropolisHastings::new(
            fn_target(move |x: &u32| weights[*x as usize]),
            UniformProposal::new(n),
            0u32,
            SmallRng::seed_from_u64(seed),
        );
        for _ in 0..300 {
            chain.step();
            prop_assert!((*chain.state() as usize) < n);
        }
    }

    /// Welford moments agree with direct two-pass computation.
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut m = diagnostics::RunningMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        let scale = var.abs().max(1.0);
        prop_assert!((m.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((m.variance() - var).abs() < 1e-6 * scale);
    }

    /// ESS never exceeds the series length (up to estimator slack) and the
    /// autocorrelation function starts at exactly 1.
    #[test]
    fn ess_and_acf_sanity(xs in proptest::collection::vec(-100f64..100.0, 10..500)) {
        let acf = diagnostics::autocorrelation(&xs, 10);
        if !acf.is_empty() {
            prop_assert!((acf[0] - 1.0).abs() < 1e-9);
        }
        let ess = diagnostics::effective_sample_size(&xs);
        prop_assert!(ess <= xs.len() as f64 + 1e-9);
        prop_assert!(ess >= 0.0);
    }
}
