//! Property-based tests for the baseline estimators.

use mhbc_baselines::{rk_sample_size, DistanceSampler, RkSampler, UniformSourceSampler};
use mhbc_graph::{generators, CsrGraph};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn connected_graph(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::ensure_connected(generators::erdos_renyi_gnp(n, p, &mut rng), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// RK's sample size is monotone in 1/eps, 1/delta, and the diameter.
    #[test]
    fn rk_sample_size_monotone(vd in 3u32..10_000, eps in 0.01f64..0.5, delta in 0.01f64..0.5) {
        let base = rk_sample_size(vd, eps, delta);
        prop_assert!(rk_sample_size(vd, eps / 2.0, delta) >= base);
        prop_assert!(rk_sample_size(vd, eps, delta / 2.0) >= base);
        prop_assert!(rk_sample_size(vd.saturating_mul(4), eps, delta) >= base);
        prop_assert!(base >= 1);
    }

    /// Distance-sampler probabilities form a distribution that vanishes
    /// exactly at the probe.
    #[test]
    fn distance_probabilities_valid(n in 4usize..40, seed in any::<u64>(), probe in 0usize..40) {
        let g = connected_graph(n, 0.2, seed);
        let r = (probe % n) as u32;
        let s = DistanceSampler::new(&g, r);
        let mut total = 0.0;
        for v in 0..n as u32 {
            let p = s.probability(v);
            prop_assert!((0.0..=1.0).contains(&p));
            if v == r {
                prop_assert_eq!(p, 0.0);
            }
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Estimates are always within the normalised range \[0, 1\], and RK's
    /// per-vertex credits sum to at most the mean interior path length.
    #[test]
    fn estimates_in_range(n in 4usize..30, seed in any::<u64>(), probe in 0usize..30) {
        let g = connected_graph(n, 0.25, seed);
        let r = (probe % n) as u32;
        let mut rng = SmallRng::seed_from_u64(seed ^ 1);
        let uni = UniformSourceSampler::new(&g, r).run(50, &mut rng);
        prop_assert!(uni.bc.is_finite() && uni.bc >= 0.0);

        let mut rng = SmallRng::seed_from_u64(seed ^ 2);
        let rk = RkSampler::new(&g).run(50, &mut rng);
        for v in 0..n {
            prop_assert!((0.0..=1.0).contains(&rk.bc[v]));
        }
    }

    /// Zero-betweenness probes always estimate exactly zero under the
    /// dependency-based baselines (they only ever see zero dependencies).
    #[test]
    fn zero_probe_exact_zero(n in 4usize..25, seed in any::<u64>()) {
        // A star's leaves all have BC = 0.
        let g = generators::star(n);
        let leaf = (n - 1) as u32;
        let mut rng = SmallRng::seed_from_u64(seed);
        prop_assert_eq!(UniformSourceSampler::new(&g, leaf).run(30, &mut rng).bc, 0.0);
        let mut rng = SmallRng::seed_from_u64(seed ^ 3);
        prop_assert_eq!(DistanceSampler::new(&g, leaf).run(30, &mut rng).bc, 0.0);
    }
}
