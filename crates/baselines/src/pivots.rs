//! Brandes–Pich pivot selection strategies \[9\].

use mhbc_graph::{algo, CsrGraph, Vertex};
use mhbc_spd::DependencyCalculator;
use rand::{Rng, RngExt};

/// How pivots (source vertices) are chosen \[9\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotStrategy {
    /// Uniformly at random (the \[2\]-style default).
    Random,
    /// Greedy k-center: each new pivot maximises the minimum BFS distance
    /// to the pivots chosen so far ("MaxMin" in \[9\]).
    MaxMin,
    /// Greedy sum-coverage: each new pivot maximises the *sum* of BFS
    /// distances to the pivots chosen so far ("MaxSum" in \[9\]).
    MaxSum,
}

/// The Brandes–Pich pivot estimator: choose `k` pivots by a strategy, then
/// estimate `BC(r)` as the scaled average of their dependency scores,
/// `B̂C(r) = mean_p δ_{p•}(r) / (n − 1)`.
///
/// Random pivots give the unbiased \[2\] estimator; the deterministic
/// strategies trade bias for spread (their motivation in \[9\]) — the tests
/// only assert exactness for `Random` and sanity for the others.
pub struct PivotSampler<'g> {
    graph: &'g CsrGraph,
    r: Vertex,
}

impl<'g> PivotSampler<'g> {
    /// Estimator for probe `r` on `g` (unweighted; pivot selection uses
    /// BFS distances).
    ///
    /// # Panics
    /// If `g` is weighted or `r` is out of range.
    pub fn new(graph: &'g CsrGraph, r: Vertex) -> Self {
        assert!(!graph.is_weighted(), "pivot strategies implemented for unweighted graphs");
        assert!((r as usize) < graph.num_vertices(), "probe out of range");
        PivotSampler { graph, r }
    }

    /// Chooses `k` pivots by the strategy (the first pivot is always drawn
    /// from `rng`, which keeps deterministic strategies seedable).
    pub fn choose_pivots<R: Rng + ?Sized>(
        &self,
        strategy: PivotStrategy,
        k: usize,
        rng: &mut R,
    ) -> Vec<Vertex> {
        let n = self.graph.num_vertices();
        assert!(k >= 1 && k <= n, "need 1 <= k <= n");
        match strategy {
            PivotStrategy::Random => {
                let mut pivots = Vec::with_capacity(k);
                while pivots.len() < k {
                    let v = rng.random_range(0..n as Vertex);
                    if !pivots.contains(&v) {
                        pivots.push(v);
                    }
                }
                pivots
            }
            PivotStrategy::MaxMin | PivotStrategy::MaxSum => {
                let mut pivots = Vec::with_capacity(k);
                let first = rng.random_range(0..n as Vertex);
                pivots.push(first);
                // score[v]: min (or sum) of distances to chosen pivots.
                let init = algo::bfs_distances(self.graph, first);
                let mut score: Vec<u64> =
                    init.iter().map(|&d| if d == u32::MAX { 0 } else { d as u64 }).collect();
                while pivots.len() < k {
                    let next = (0..n as Vertex)
                        .filter(|v| !pivots.contains(v))
                        .max_by_key(|&v| score[v as usize])
                        .expect("k <= n leaves a candidate");
                    pivots.push(next);
                    let dist = algo::bfs_distances(self.graph, next);
                    for v in 0..n {
                        let d = if dist[v] == u32::MAX { 0 } else { dist[v] as u64 };
                        score[v] = match strategy {
                            PivotStrategy::MaxMin => score[v].min(d),
                            _ => score[v].saturating_add(d),
                        };
                    }
                }
                pivots
            }
        }
    }

    /// Runs the estimator with `k` pivots chosen by `strategy`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        strategy: PivotStrategy,
        k: usize,
        rng: &mut R,
    ) -> crate::BaselineEstimate {
        let pivots = self.choose_pivots(strategy, k, rng);
        let mut calc = DependencyCalculator::new(self.graph);
        let sum: f64 = pivots.iter().map(|&p| calc.dependency_on(self.graph, p, self.r)).sum();
        crate::BaselineEstimate {
            bc: sum / (pivots.len() as f64 * (self.graph.num_vertices() as f64 - 1.0)),
            samples: pivots.len() as u64,
            // Selection BFS passes (k for the greedy strategies) are charged
            // alongside the k dependency passes.
            spd_passes: calc.passes()
                + if strategy == PivotStrategy::Random { 0 } else { pivots.len() as u64 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use mhbc_spd::exact_betweenness_of;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn random_pivots_converge_to_exact() {
        let g = generators::barbell(6, 2);
        let r = 6;
        let exact = exact_betweenness_of(&g, r);
        let mut rng = SmallRng::seed_from_u64(31);
        let est = PivotSampler::new(&g, r).run(PivotStrategy::Random, 13, &mut rng);
        // k = n - 1 pivots of n=14 vertices: nearly exact.
        assert!((est.bc - exact).abs() < 0.1 * exact.max(0.01));
    }

    #[test]
    fn all_pivots_is_exact() {
        let g = generators::lollipop(5, 3);
        let r = 5;
        let exact = exact_betweenness_of(&g, r);
        let mut rng = SmallRng::seed_from_u64(32);
        let est = PivotSampler::new(&g, r).run(PivotStrategy::Random, g.num_vertices(), &mut rng);
        assert!((est.bc - exact).abs() < 1e-12);
    }

    #[test]
    fn maxmin_spreads_pivots_on_path() {
        let g = generators::path(30);
        let sampler = PivotSampler::new(&g, 15);
        let mut rng = SmallRng::seed_from_u64(33);
        let pivots = sampler.choose_pivots(PivotStrategy::MaxMin, 3, &mut rng);
        // k-center on a path always grabs both endpoints after the seed.
        assert!(pivots.contains(&0) || pivots.contains(&29), "pivots {pivots:?}");
        let min_gap = pivots
            .iter()
            .flat_map(|&a| pivots.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| a.abs_diff(b))
            .min()
            .expect("pairs exist");
        assert!(min_gap >= 7, "MaxMin pivots should spread out, got {pivots:?}");
    }

    #[test]
    fn strategies_produce_distinct_pivots() {
        let mut rng = SmallRng::seed_from_u64(34);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let sampler = PivotSampler::new(&g, 0);
        for strat in [PivotStrategy::Random, PivotStrategy::MaxMin, PivotStrategy::MaxSum] {
            let pivots = sampler.choose_pivots(strat, 10, &mut rng);
            let mut dedup = pivots.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 10, "{strat:?} produced duplicates");
        }
    }

    #[test]
    fn deterministic_strategies_give_finite_estimates() {
        let mut rng = SmallRng::seed_from_u64(35);
        let g = generators::barabasi_albert(300, 3, &mut rng);
        let exact = exact_betweenness_of(&g, 5);
        for strat in [PivotStrategy::MaxMin, PivotStrategy::MaxSum] {
            let est = PivotSampler::new(&g, 5).run(strat, 30, &mut rng);
            assert!(est.bc.is_finite() && est.bc >= 0.0);
            // Sanity: within an order of magnitude of the truth.
            assert!((est.bc - exact).abs() < 0.2, "{strat:?}: {} vs {exact}", est.bc);
        }
    }
}
