//! Distance-proportional source sampling (Chehreghani \[13\]).

use crate::BaselineEstimate;
use mhbc_graph::{algo, CsrGraph, Vertex};
use mhbc_spd::DependencyCalculator;
use rand::{Rng, RngExt};

/// Chehreghani's non-uniform source sampler \[13\]: sources drawn with
/// `P[s] = d(r, s) / Σ_u d(r, u)` and importance-weighted,
/// `B̂C(r) = mean_t [ δ_{s_t•}(r) / (P[s_t] · n(n−1)) ]`.
///
/// Unbiased for any sampling distribution positive on the support; the
/// distance heuristic approximates the optimal `P[s] ∝ δ_{s•}(r)` (Eq 5)
/// because far-away sources tend to route more pairs through `r`. Costs one
/// BFS up-front (the distance table) plus one SPD pass per sample.
///
/// Defined for unweighted graphs (hop distances), matching \[13\].
pub struct DistanceSampler<'g> {
    graph: &'g CsrGraph,
    r: Vertex,
    calc: DependencyCalculator,
    /// `cum[i]` = cumulative distance mass over vertices `0..=i`.
    cum: Vec<f64>,
    total_mass: f64,
    sum: f64,
    samples: u64,
}

impl<'g> DistanceSampler<'g> {
    /// Sampler for probe `r` on the unweighted connected graph `g`.
    ///
    /// # Panics
    /// If `g` is weighted, `r` is out of range, or no vertex has positive
    /// distance mass (single-vertex graph).
    pub fn new(graph: &'g CsrGraph, r: Vertex) -> Self {
        assert!(!graph.is_weighted(), "the [13] sampler is defined on unweighted graphs");
        assert!((r as usize) < graph.num_vertices(), "probe out of range");
        let dist = algo::bfs_distances(graph, r);
        let mut cum = Vec::with_capacity(dist.len());
        let mut acc = 0.0;
        for &d in &dist {
            // Unreachable vertices get zero mass (they also have zero
            // dependency on r, so excluding them preserves unbiasedness).
            if d != u32::MAX {
                acc += d as f64;
            }
            cum.push(acc);
        }
        assert!(acc > 0.0, "no sampling mass: graph too small");
        DistanceSampler {
            graph,
            r,
            calc: DependencyCalculator::new(graph),
            cum,
            total_mass: acc,
            sum: 0.0,
            samples: 0,
        }
    }

    /// Probability assigned to source `s`.
    pub fn probability(&self, s: Vertex) -> f64 {
        let i = s as usize;
        let prev = if i == 0 { 0.0 } else { self.cum[i - 1] };
        (self.cum[i] - prev) / self.total_mass
    }

    /// Draws one sample; returns the running estimate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let u = rng.random::<f64>() * self.total_mass;
        let s = self.cum.partition_point(|&c| c <= u).min(self.cum.len() - 1) as Vertex;
        let p = self.probability(s);
        debug_assert!(p > 0.0, "sampled a zero-mass vertex");
        let delta = self.calc.dependency_on(self.graph, s, self.r);
        let n = self.graph.num_vertices() as f64;
        self.sum += delta / (p * n * (n - 1.0));
        self.samples += 1;
        self.estimate()
    }

    /// Current estimate (0 before any samples).
    pub fn estimate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }

    /// Draws `count` samples and finalises.
    pub fn run<R: Rng + ?Sized>(mut self, count: u64, rng: &mut R) -> BaselineEstimate {
        for _ in 0..count {
            self.sample(rng);
        }
        BaselineEstimate {
            bc: self.estimate(),
            samples: self.samples,
            // +1 for the up-front distance BFS (charged as one pass).
            spd_passes: self.calc.passes() + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use mhbc_spd::exact_betweenness_of;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn probabilities_sum_to_one_and_follow_distance() {
        let g = generators::path(6);
        let s = DistanceSampler::new(&g, 0);
        let total: f64 = (0..6).map(|v| s.probability(v)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // d(r, r) = 0, and mass grows linearly along the path: P[5] = 5/15.
        assert_eq!(s.probability(0), 0.0);
        assert!((s.probability(5) - 5.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_exact_bc() {
        let g = generators::barbell(6, 2);
        let r = 6;
        let exact = exact_betweenness_of(&g, r);
        let mut rng = SmallRng::seed_from_u64(4);
        let est = DistanceSampler::new(&g, r).run(20_000, &mut rng);
        assert!((est.bc - exact).abs() < 0.02, "est {} vs exact {exact}", est.bc);
    }

    #[test]
    fn unbiased_over_many_short_runs() {
        let g = generators::lollipop(6, 3);
        let r = 7; // mid-path vertex
        let exact = exact_betweenness_of(&g, r);
        let mut total = 0.0;
        let runs = 3_000;
        for seed in 0..runs {
            let mut rng = SmallRng::seed_from_u64(seed);
            total += DistanceSampler::new(&g, r).run(10, &mut rng).bc;
        }
        let mean = total / runs as f64;
        assert!((mean - exact).abs() < 0.01, "mean {mean} vs exact {exact}");
    }

    #[test]
    #[should_panic(expected = "unweighted")]
    fn rejects_weighted_graphs() {
        let g = generators::path(4).map_weights(|_, _| 2.0).unwrap();
        let _ = DistanceSampler::new(&g, 0);
    }
}
