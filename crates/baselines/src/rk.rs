//! The Riondato–Kornaropoulos shortest-path sampler \[30\].

use mhbc_graph::{CsrGraph, Vertex};
use mhbc_spd::{path_sampler, BfsSpd};
use rand::{Rng, RngExt};

/// RK's VC-dimension sample size: `T = (c/ε²) (⌊log₂(VD − 2)⌋ + 1 + ln(1/δ))`
/// with the universal constant `c = 0.5` and `VD` an upper bound on the
/// vertex diameter (number of vertices on the longest shortest path).
///
/// # Panics
/// If `eps` or `delta` are out of range.
pub fn rk_sample_size(vertex_diameter: u32, eps: f64, delta: f64) -> u64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    let vd = vertex_diameter.max(3) as f64;
    let t = 0.5 / (eps * eps) * ((vd - 2.0).log2().floor() + 1.0 + (1.0 / delta).ln());
    t.ceil() as u64
}

/// Result of an RK run.
#[derive(Debug, Clone)]
pub struct RkEstimate {
    /// Estimated `BC(v)` for every vertex (Eq 1 normalisation).
    pub bc: Vec<f64>,
    /// Samples drawn (pairs).
    pub samples: u64,
    /// Full BFS passes performed (one per sampled pair).
    pub spd_passes: u64,
}

impl RkEstimate {
    /// The estimate for one probe vertex.
    pub fn of(&self, r: Vertex) -> f64 {
        self.bc[r as usize]
    }
}

/// The RK estimator: draw `(s, t)` uniformly among ordered distinct pairs,
/// sample one shortest `s`–`t` path uniformly (σ-weighted backward walk),
/// and credit `1/T` to each interior vertex. Unbiased for every vertex
/// simultaneously: `E[credit_v] = E_{s,t}[σ_st(v)/σ_st] = BC(v)`.
///
/// Per-sample cost is one full BFS (the \[30\] algorithm truncates at
/// `d(s,t)`; the full pass is an upper bound on its cost and keeps the
/// budget comparison against the MH samplers conservative *in RK's favour*
/// — both pay `O(|E|)`).
pub struct RkSampler<'g> {
    graph: &'g CsrGraph,
    spd: BfsSpd,
    credits: Vec<f64>,
    samples: u64,
}

impl<'g> RkSampler<'g> {
    /// Sampler over the unweighted connected graph `g`.
    ///
    /// # Panics
    /// If `g` is weighted or has fewer than 2 vertices.
    pub fn new(graph: &'g CsrGraph) -> Self {
        assert!(!graph.is_weighted(), "RK path sampling implemented for unweighted graphs");
        let n = graph.num_vertices();
        assert!(n >= 2, "graph too small");
        RkSampler { graph, spd: BfsSpd::new(n), credits: vec![0.0; n], samples: 0 }
    }

    /// Draws one `(s, t)` pair and credits the sampled path's interior.
    /// Pairs in different components contribute nothing (consistent with
    /// Eq 1 restricted to connected pairs).
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.graph.num_vertices() as Vertex;
        let s = rng.random_range(0..n);
        let mut t = rng.random_range(0..n - 1);
        if t >= s {
            t += 1; // uniform over ordered pairs with t != s
        }
        self.samples += 1;
        self.spd.compute(self.graph, s);
        if let Some(path) = path_sampler::sample_shortest_path(self.graph, &self.spd, t, rng) {
            for &v in path_sampler::interior(&path) {
                self.credits[v as usize] += 1.0;
            }
        }
    }

    /// Current estimate for probe `r`.
    pub fn estimate(&self, r: Vertex) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.credits[r as usize] / self.samples as f64
        }
    }

    /// Draws `count` samples and finalises.
    pub fn run<R: Rng + ?Sized>(mut self, count: u64, rng: &mut R) -> RkEstimate {
        for _ in 0..count {
            self.sample(rng);
        }
        let t = self.samples.max(1) as f64;
        RkEstimate {
            bc: self.credits.iter().map(|c| c / t).collect(),
            samples: self.samples,
            spd_passes: self.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::{algo, generators};
    use mhbc_spd::exact_betweenness;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn sample_size_formula_behaviour() {
        // Tighter eps -> more samples; larger diameter -> more samples.
        let a = rk_sample_size(10, 0.05, 0.1);
        let b = rk_sample_size(10, 0.025, 0.1);
        let c = rk_sample_size(100, 0.05, 0.1);
        assert!(b > 3 * a, "quartering eps should ~quadruple samples");
        assert!(c > a);
        // Spot value: vd = 10, eps = 0.1, delta = 0.1:
        // 50 * (3 + 1 + 2.302) = 315.2 -> 316.
        assert_eq!(rk_sample_size(10, 0.1, 0.1), 316);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn converges_to_exact_bc_for_all_vertices() {
        let g = generators::barbell(5, 2);
        let exact = exact_betweenness(&g);
        let mut rng = SmallRng::seed_from_u64(5);
        let est = RkSampler::new(&g).run(40_000, &mut rng);
        for v in 0..g.num_vertices() {
            assert!(
                (est.bc[v] - exact[v]).abs() < 0.02,
                "vertex {v}: {} vs {}",
                est.bc[v],
                exact[v]
            );
        }
    }

    #[test]
    fn planned_sample_size_achieves_eps_on_path() {
        let g = generators::path(20);
        let exact = exact_betweenness(&g);
        let (_, vd_hi) = algo::vertex_diameter_bounds(&g, 0);
        let t = rk_sample_size(vd_hi, 0.1, 0.1);
        let mut failures = 0;
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let est = RkSampler::new(&g).run(t, &mut rng);
            let worst = (0..20).map(|v| (est.bc[v] - exact[v]).abs()).fold(0.0f64, f64::max);
            if worst > 0.1 {
                failures += 1;
            }
        }
        assert!(failures <= 2, "VC bound should hold with margin, {failures}/20 failed");
    }

    #[test]
    fn disconnected_pairs_contribute_nothing() {
        let g = mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let est = RkSampler::new(&g).run(2_000, &mut rng);
        // No interior vertices exist anywhere (all paths have length <= 1).
        assert!(est.bc.iter().all(|&b| b == 0.0));
    }
}
