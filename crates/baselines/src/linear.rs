//! Geisberger–Sanders–Schultes linear-scaling estimator \[17\].

use crate::BaselineEstimate;
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_spd::BfsSpd;
use rand::{Rng, RngExt};

/// The linear-scaling estimator of \[17\]: sources drawn uniformly, but each
/// target's contribution is scaled by `d(s, v) / d(s, t)` so vertices do
/// not profit from sitting near a sampled source. Pairing `(s, t)` with
/// `(t, s)` shows `B̂C(r) = mean_s [ 2 · d(s, r) · g_s(r) ] / (n − 1)` is
/// unbiased, with `g_s` computed by
/// [`BfsSpd::accumulate_scaled_dependencies`].
///
/// Unweighted graphs only (matching \[17\]'s evaluation).
pub struct LinearScalingSampler<'g> {
    graph: &'g CsrGraph,
    r: Vertex,
    spd: BfsSpd,
    scaled: Vec<f64>,
    sum: f64,
    samples: u64,
}

impl<'g> LinearScalingSampler<'g> {
    /// Sampler for probe `r` on the unweighted graph `g`.
    ///
    /// # Panics
    /// If `g` is weighted, too small, or `r` is out of range.
    pub fn new(graph: &'g CsrGraph, r: Vertex) -> Self {
        assert!(!graph.is_weighted(), "linear scaling implemented for unweighted graphs");
        assert!(graph.num_vertices() >= 2, "graph too small");
        assert!((r as usize) < graph.num_vertices(), "probe out of range");
        LinearScalingSampler {
            graph,
            r,
            spd: BfsSpd::new(graph.num_vertices()),
            scaled: Vec::new(),
            sum: 0.0,
            samples: 0,
        }
    }

    /// Draws one source sample; returns the running estimate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let s = rng.random_range(0..self.graph.num_vertices() as Vertex);
        self.spd.compute(self.graph, s);
        self.spd.accumulate_scaled_dependencies(self.graph, &mut self.scaled);
        self.sum += 2.0 * self.scaled[self.r as usize];
        self.samples += 1;
        self.estimate()
    }

    /// Current estimate (0 before any samples).
    pub fn estimate(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.sum / (self.samples as f64 * (self.graph.num_vertices() as f64 - 1.0))
    }

    /// Draws `count` samples and finalises.
    pub fn run<R: Rng + ?Sized>(mut self, count: u64, rng: &mut R) -> BaselineEstimate {
        for _ in 0..count {
            self.sample(rng);
        }
        BaselineEstimate { bc: self.estimate(), samples: self.samples, spd_passes: self.samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use mhbc_spd::exact_betweenness_of;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn scaled_accumulation_on_path_matches_hand_computation() {
        // Path 0-1-2-3, source 0: g(1) = 1/d(0,2)*... -> scaled values
        // d(0,v) * sum_t delta_0t(v)/d(0,t): v=1: 1*(1/2 + 1/3) = 5/6,
        // v=2: 2*(1/3) = 2/3.
        let g = generators::path(4);
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        let mut scaled = Vec::new();
        spd.accumulate_scaled_dependencies(&g, &mut scaled);
        assert!((scaled[1] - 5.0 / 6.0).abs() < 1e-12);
        assert!((scaled[2] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(scaled[0], 0.0);
        assert_eq!(scaled[3], 0.0);
    }

    #[test]
    fn converges_to_exact_bc() {
        let g = generators::barbell(6, 2);
        let r = 6;
        let exact = exact_betweenness_of(&g, r);
        let mut rng = SmallRng::seed_from_u64(21);
        let est = LinearScalingSampler::new(&g, r).run(20_000, &mut rng);
        assert!((est.bc - exact).abs() < 0.02, "est {} vs exact {exact}", est.bc);
    }

    #[test]
    fn unbiased_over_many_short_runs() {
        let g = generators::lollipop(6, 3);
        let r = 7;
        let exact = exact_betweenness_of(&g, r);
        let mut total = 0.0;
        let runs = 3_000;
        for seed in 0..runs {
            let mut rng = SmallRng::seed_from_u64(seed);
            total += LinearScalingSampler::new(&g, r).run(10, &mut rng).bc;
        }
        let mean = total / runs as f64;
        assert!((mean - exact).abs() < 0.01, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn zero_probe_estimates_zero() {
        let g = generators::star(9);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(LinearScalingSampler::new(&g, 4).run(200, &mut rng).bc, 0.0);
    }
}
