//! Uniform source sampling (Bader et al. \[2\], Brandes–Pich \[9\]).

use crate::BaselineEstimate;
use mhbc_graph::{CsrGraph, Vertex};
use mhbc_spd::DependencyCalculator;
use rand::{Rng, RngExt};

/// Samples source vertices uniformly and averages their dependency scores
/// on the probe: `B̂C(r) = mean_s δ_{s•}(r) / (n − 1)`.
///
/// Unbiased: `E_s[δ_{s•}(r)] = (1/n) Σ_s δ_{s•}(r) = (n−1) · BC(r)`.
/// One SPD pass per sample; the work-equal competitor to one MH iteration.
pub struct UniformSourceSampler<'g> {
    graph: &'g CsrGraph,
    r: Vertex,
    calc: DependencyCalculator,
    sum: f64,
    samples: u64,
    trace: Option<Vec<f64>>,
}

impl<'g> UniformSourceSampler<'g> {
    /// Sampler for probe `r` on `g` (weighted or unweighted).
    ///
    /// # Panics
    /// If `r` is out of range or the graph has fewer than 2 vertices.
    pub fn new(graph: &'g CsrGraph, r: Vertex) -> Self {
        assert!((r as usize) < graph.num_vertices(), "probe out of range");
        assert!(graph.num_vertices() >= 2, "graph too small");
        UniformSourceSampler {
            graph,
            r,
            calc: DependencyCalculator::new(graph),
            sum: 0.0,
            samples: 0,
            trace: None,
        }
    }

    /// Enables recording of the running estimate after each sample.
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// Draws one sample; returns the running estimate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let s = rng.random_range(0..self.graph.num_vertices() as Vertex);
        self.sum += self.calc.dependency_on(self.graph, s, self.r);
        self.samples += 1;
        let est = self.estimate();
        if let Some(t) = &mut self.trace {
            t.push(est);
        }
        est
    }

    /// Current estimate (0 before any samples).
    pub fn estimate(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.sum / (self.samples as f64 * (self.graph.num_vertices() as f64 - 1.0))
    }

    /// Draws `count` samples and finalises.
    pub fn run<R: Rng + ?Sized>(mut self, count: u64, rng: &mut R) -> BaselineEstimate {
        for _ in 0..count {
            self.sample(rng);
        }
        self.finish()
    }

    /// Finalises into an estimate record.
    pub fn finish(self) -> BaselineEstimate {
        BaselineEstimate {
            bc: self.estimate(),
            samples: self.samples,
            spd_passes: self.calc.passes(),
        }
    }

    /// The running-estimate trace, if enabled.
    pub fn trace(&self) -> Option<&[f64]> {
        self.trace.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use mhbc_spd::exact_betweenness_of;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn converges_to_exact_bc() {
        let g = generators::barbell(6, 2);
        let r = 6;
        let exact = exact_betweenness_of(&g, r);
        let mut rng = SmallRng::seed_from_u64(1);
        let est = UniformSourceSampler::new(&g, r).run(20_000, &mut rng);
        assert!((est.bc - exact).abs() < 0.02, "est {} vs exact {exact}", est.bc);
        assert_eq!(est.samples, 20_000);
        assert_eq!(est.spd_passes, 20_000);
    }

    #[test]
    fn unbiased_over_many_short_runs() {
        // Mean of many independent 10-sample estimates must hit BC(r).
        let g = generators::lollipop(6, 3);
        let r = 6;
        let exact = exact_betweenness_of(&g, r);
        let mut total = 0.0;
        let runs = 3_000;
        for seed in 0..runs {
            let mut rng = SmallRng::seed_from_u64(seed);
            total += UniformSourceSampler::new(&g, r).run(10, &mut rng).bc;
        }
        let mean = total / runs as f64;
        assert!((mean - exact).abs() < 0.01, "mean of short runs {mean} vs exact {exact}");
    }

    #[test]
    fn zero_probe_estimates_zero() {
        let g = generators::star(8);
        let mut rng = SmallRng::seed_from_u64(2);
        let est = UniformSourceSampler::new(&g, 5).run(100, &mut rng);
        assert_eq!(est.bc, 0.0);
    }

    #[test]
    fn trace_length_matches_samples() {
        let g = generators::cycle(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = UniformSourceSampler::new(&g, 0).with_trace();
        for _ in 0..25 {
            s.sample(&mut rng);
        }
        assert_eq!(s.trace().unwrap().len(), 25);
    }
}
