//! KADABRA-style sampler: bb-BFS path sampling with adaptive stopping \[7\].

use mhbc_graph::{CsrGraph, Vertex};
use mhbc_spd::bidirectional::BidirectionalSearch;
use rand::{Rng, RngExt};

/// Result of an adaptive bb-BFS run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveEstimate {
    /// Estimated `BC(r)`.
    pub bc: f64,
    /// Samples drawn.
    pub samples: u64,
    /// Whether the empirical-Bernstein rule stopped before `max_samples`.
    pub stopped_early: bool,
    /// Total edge traversals performed by the bidirectional searches — the
    /// bb-BFS cost metric (\[7\]'s speedup comes from this being `o(m)` per
    /// sample on many families).
    pub edges_touched: u64,
}

/// The KADABRA-primitive estimator \[7\]: identical statistics to RK (uniform
/// pair, uniform shortest path, interior indicator for the probe) but each
/// sample is served by a *balanced bidirectional* BFS instead of a full
/// single-source BFS, and sampling stops adaptively once an
/// empirical-Bernstein confidence radius drops below `eps`.
///
/// The stopping rule (checked at geometrically spaced sample counts with a
/// union bound over checks) is a documented simplification of KADABRA's
/// per-vertex adaptive schedule — it preserves the two comparison axes the
/// evaluation uses: per-sample cost and samples-to-target-accuracy.
pub struct BbSampler<'g> {
    graph: &'g CsrGraph,
    r: Vertex,
    search: BidirectionalSearch,
    hits: u64,
    samples: u64,
    edges_touched: u64,
}

impl<'g> BbSampler<'g> {
    /// Sampler for probe `r` on the unweighted graph `g`.
    ///
    /// # Panics
    /// If `g` is weighted or has fewer than 3 vertices.
    pub fn new(graph: &'g CsrGraph, r: Vertex) -> Self {
        assert!(!graph.is_weighted(), "bb-BFS sampling implemented for unweighted graphs");
        assert!(graph.num_vertices() >= 3, "graph too small");
        assert!((r as usize) < graph.num_vertices(), "probe out of range");
        BbSampler {
            graph,
            r,
            search: BidirectionalSearch::new(graph.num_vertices()),
            hits: 0,
            samples: 0,
            edges_touched: 0,
        }
    }

    /// Draws one `(s, t)` pair, samples a shortest path bidirectionally and
    /// records whether `r` lies in its interior.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.graph.num_vertices() as Vertex;
        let s = rng.random_range(0..n);
        let mut t = rng.random_range(0..n - 1);
        if t >= s {
            t += 1;
        }
        self.samples += 1;
        if let Some(res) = self.search.query(self.graph, s, t, true, rng) {
            self.edges_touched += self.search.last_edges_touched as u64;
            let path = res.path.expect("sampling was requested");
            if path.len() > 2 && path[1..path.len() - 1].contains(&self.r) {
                self.hits += 1;
            }
        } else {
            self.edges_touched += self.search.last_edges_touched as u64;
        }
    }

    /// Current estimate.
    pub fn estimate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.hits as f64 / self.samples as f64
        }
    }

    /// Empirical-Bernstein confidence radius at the current sample count:
    /// `sqrt(2 v̂ ln(3/δ) / t) + 3 ln(3/δ) / t` for a `[0, 1]` variable
    /// with empirical variance `v̂`.
    fn bernstein_radius(&self, delta: f64) -> f64 {
        let t = self.samples as f64;
        let mean = self.estimate();
        let var = mean * (1.0 - mean); // Bernoulli empirical variance
        let log_term = (3.0 / delta).ln();
        (2.0 * var * log_term / t).sqrt() + 3.0 * log_term / t
    }

    /// Runs until the `(eps, delta)` empirical-Bernstein rule fires or
    /// `max_samples` is reached. Checks at geometrically spaced counts with
    /// `delta` split across checks.
    pub fn run_adaptive<R: Rng + ?Sized>(
        mut self,
        eps: f64,
        delta: f64,
        max_samples: u64,
        rng: &mut R,
    ) -> AdaptiveEstimate {
        assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0, 1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        assert!(max_samples >= 1);
        // Union bound over at most log2(max_samples) checkpoints.
        let checks = (max_samples as f64).log2().ceil().max(1.0);
        let delta_per_check = delta / checks;
        let mut next_check = 64u64;
        let mut stopped_early = false;
        while self.samples < max_samples {
            self.sample(rng);
            if self.samples == next_check {
                if self.bernstein_radius(delta_per_check) <= eps {
                    stopped_early = true;
                    break;
                }
                next_check = (next_check * 2).min(max_samples);
            }
        }
        AdaptiveEstimate {
            bc: self.estimate(),
            samples: self.samples,
            stopped_early,
            edges_touched: self.edges_touched,
        }
    }

    /// Draws exactly `count` samples (matched-budget comparisons).
    pub fn run_fixed<R: Rng + ?Sized>(mut self, count: u64, rng: &mut R) -> AdaptiveEstimate {
        for _ in 0..count {
            self.sample(rng);
        }
        AdaptiveEstimate {
            bc: self.estimate(),
            samples: self.samples,
            stopped_early: false,
            edges_touched: self.edges_touched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use mhbc_spd::exact_betweenness_of;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn fixed_budget_converges() {
        let g = generators::barbell(5, 2);
        let r = 5;
        let exact = exact_betweenness_of(&g, r);
        let mut rng = SmallRng::seed_from_u64(7);
        let est = BbSampler::new(&g, r).run_fixed(40_000, &mut rng);
        assert!((est.bc - exact).abs() < 0.02, "est {} vs exact {exact}", est.bc);
        assert!(est.edges_touched > 0);
    }

    #[test]
    fn adaptive_stops_early_on_low_variance_probe() {
        // A leaf-adjacent vertex on a big cycle has tiny BC; the Bernstein
        // radius collapses quickly.
        let g = generators::star(50);
        let mut rng = SmallRng::seed_from_u64(8);
        let est = BbSampler::new(&g, 5).run_adaptive(0.05, 0.1, 1_000_000, &mut rng);
        assert!(est.stopped_early, "low-variance probe should stop early");
        assert!(est.samples < 100_000);
    }

    #[test]
    fn adaptive_respects_eps_delta() {
        let g = generators::barbell(5, 1);
        let r = 5;
        let exact = exact_betweenness_of(&g, r);
        let mut failures = 0;
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let est = BbSampler::new(&g, r).run_adaptive(0.08, 0.1, 200_000, &mut rng);
            if (est.bc - exact).abs() > 0.08 {
                failures += 1;
            }
        }
        assert!(failures <= 2, "{failures}/20 runs exceeded eps");
    }

    #[test]
    fn agrees_with_rk_statistics() {
        // Same estimator, different engine: long-run estimates must agree.
        let g = generators::grid(6, 6, false);
        let r = 14; // interior vertex
        let mut rng1 = SmallRng::seed_from_u64(9);
        let mut rng2 = SmallRng::seed_from_u64(10);
        let bb = BbSampler::new(&g, r).run_fixed(30_000, &mut rng1);
        let rk = crate::RkSampler::new(&g).run(30_000, &mut rng2);
        assert!((bb.bc - rk.of(r)).abs() < 0.02, "bb {} vs rk {}", bb.bc, rk.of(r));
    }
}
