//! # mhbc-baselines
//!
//! The prior sampling estimators the paper's evaluation compares against
//! (§3.2 of the paper; "prior samplers" in the EDBT experiments):
//!
//! - [`UniformSourceSampler`] — Bader et al. \[2\] / Brandes–Pich \[9\]:
//!   sources drawn uniformly, dependency scores averaged. Unbiased.
//! - [`DistanceSampler`] — Chehreghani's non-uniform sampler \[13\]:
//!   sources drawn with `P[s] ∝ d(r, s)`, importance-weighted. Unbiased;
//!   the paper's Eq 5 distribution is the *optimal* member of this
//!   framework (implemented exactly in `mhbc-core::optimal` for reference).
//! - [`LinearScalingSampler`] — Geisberger et al. \[17\]: uniform sources
//!   with length-scaled contributions, so vertices near a sampled source
//!   are not over-credited. Unbiased.
//! - [`PivotSampler`] — Brandes–Pich \[9\]: `k` pivot sources chosen
//!   uniformly or by the MaxMin / MaxSum spread heuristics.
//! - [`RkSampler`] — Riondato–Kornaropoulos \[30\]: uniform `(s, t)` pairs,
//!   one uniformly sampled shortest path, interior vertices credited;
//!   sample size from the VC-dimension bound ([`rk_sample_size`]).
//! - [`BbSampler`] — the KADABRA primitive \[7\]: the same path estimator
//!   driven by balanced bidirectional BFS, with an empirical-Bernstein
//!   adaptive stopping rule (a documented simplification of KADABRA's
//!   union-bound schedule; see DESIGN.md "Substitutions").
//!
//! All estimators use the Eq 1 normalisation (`BC ∈ [0, 1]`), accept a
//! caller-seeded RNG, and report the work they performed so the harness can
//! compare at matched budgets.
//!
//! ```
//! use mhbc_baselines::UniformSourceSampler;
//! use mhbc_graph::generators;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // Bridge vertex of a barbell graph, estimated from 200 uniform sources.
//! let g = generators::barbell(6, 1);
//! let bridge = 6;
//! let mut rng = SmallRng::seed_from_u64(1);
//! let est = UniformSourceSampler::new(&g, bridge).run(200, &mut rng);
//! let exact = mhbc_spd::exact_betweenness_of(&g, bridge);
//! assert!((est.bc - exact).abs() < 0.05);
//! assert_eq!(est.samples, 200);
//! ```

mod bb;
mod distance;
mod linear;
mod pivots;
mod rk;
mod uniform;

pub use bb::{AdaptiveEstimate, BbSampler};
pub use distance::DistanceSampler;
pub use linear::LinearScalingSampler;
pub use pivots::{PivotSampler, PivotStrategy};
pub use rk::{rk_sample_size, RkEstimate, RkSampler};
pub use uniform::UniformSourceSampler;

/// A point estimate of a single vertex's betweenness plus the work done.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineEstimate {
    /// Estimated `BC(r)` (Eq 1 normalisation).
    pub bc: f64,
    /// Samples drawn.
    pub samples: u64,
    /// Full SPD passes performed (the unit the harness budgets by; the
    /// bb-BFS sampler reports fractional work via edges instead — see
    /// [`AdaptiveEstimate`]).
    pub spd_passes: u64,
}
