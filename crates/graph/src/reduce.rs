//! Graph reduction: degree-1 pruning, equivalent-vertex collapsing, and
//! cache-locality relabelling.
//!
//! Every Metropolis–Hastings iteration costs one SPD pass over the graph
//! (§4.1), so shrinking and reordering the graph *before* sampling cuts the
//! per-sample price of every estimator in the suite. This module builds a
//! [`ReducedGraph`]: a smaller, relabelled CSR together with the exact
//! bookkeeping needed to answer original-graph queries from it.
//!
//! # The three transformations
//!
//! **Degree-1 pruning.** A vertex of degree 1 (and, iteratively, whole
//! pendant trees) can never be an *interior* vertex of a shortest path
//! between two surviving vertices. Pruning vertex `v` (with accumulated
//! subtree weight `ω(v)`) whose sole live neighbour is `u` credits `u` with
//! the exact betweenness of every pair it separates:
//!
//! ```text
//! c(u) += 2 · ω(v) · (C − ω(v) − ω(u)),      then      ω(u) += ω(v)
//! ```
//!
//! where `C` is the size of the component and `ω(x)` counts the original
//! vertices already merged into `x` (including `x` itself). The credit is
//! the number of ordered pairs `(s, t)` with `s` in `v`'s pendant subtree
//! and `t` in the rest of the component minus `u`'s own merged set — exactly
//! the pairs for which `u` is an interior vertex and which no later prune or
//! reduced-graph pass will count again (pairs between two subtrees hanging
//! off `u` are credited when the *first* of the two is pruned, because the
//! second still counts as "rest" at that moment). Summed to fixpoint, the
//! credits `c(x)` are **exact**: a pruned vertex's betweenness is final at
//! prune time, and a retained vertex's betweenness is `c(x)` plus the
//! vertex-weighted Brandes sum over the reduced graph (every shortest path
//! between retained vertices avoids pendant trees, and a reduced pair
//! `(s, t)` stands for `ω(s)·ω(t)` original pairs).
//!
//! **Equivalent-vertex collapsing** (level [`ReduceLevel::Full`] only).
//! Vertices with identical sorted neighbourhoods are interchangeable under
//! a graph automorphism, so one super-vertex with a *multiplicity* `μ`
//! represents the whole class:
//!
//! - *false twins*: identical open neighbourhoods `N(u) = N(v)` (such
//!   vertices are necessarily non-adjacent; mutual distance 2);
//! - *true twins*: identical closed neighbourhoods `N[u] = N[v]` (such
//!   vertices are necessarily adjacent; mutual distance 1).
//!
//! Shortest-path counts on the pruned graph are recovered from the
//! collapsed graph by multiplying σ through intermediate classes — see the
//! multiplicity-aware kernels in `mhbc-spd` — with two analytic corrections
//! (same-class targets sit at distance 2 via `Σ_{u ∈ N_H(z)} μ(u)` common
//! neighbours for false twins, and contribute nothing for true twins).
//! Collapsing is refused on weighted graphs: class members would need
//! identical per-neighbour weights for the automorphism argument to hold.
//!
//! **Relabelling.** The collapsed graph is renumbered in BFS order from its
//! highest-degree vertex, so that the frontier of an SPD pass reads mostly
//! consecutive adjacency ranges — the locality the memory-bound BFS kernel
//! wants. All maps in [`ReducedGraph`] are expressed in the *final* ids.
//!
//! # Using a reduction
//!
//! `mhbc-spd` consumes [`ReducedGraph`] through its `SpdView` /
//! `ReducedCalculator` types, which map original-id dependency queries
//! `δ_{v•}(r)` through the reduction *exactly* — the samplers keep their
//! original state space and stationary distribution. See that crate for the
//! mapping formulas and their derivation.
//!
//! ```
//! use mhbc_graph::{generators, reduce};
//!
//! // A lollipop = clique + pendant path: the path prunes away entirely and
//! // the clique interior collapses to one super-vertex.
//! let g = generators::lollipop(8, 4);
//! let red = reduce::reduce(&g, reduce::ReduceLevel::Full).unwrap();
//! assert_eq!(red.stats().pruned_vertices, 4);
//! assert!(red.csr().num_vertices() <= 2);
//! ```

use crate::algo::connected_components;
use crate::{CsrGraph, GraphBuilder, Vertex};
use std::collections::{HashMap, VecDeque};

/// How much preprocessing to apply before sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceLevel {
    /// No reduction: the identity mapping (useful for uniform benching).
    Off,
    /// Iterative degree-1 pruning with exact betweenness corrections.
    Prune,
    /// Pruning plus twin collapsing plus BFS relabelling.
    Full,
}

impl ReduceLevel {
    /// Parses the CLI spelling (`off` / `prune` / `full`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(ReduceLevel::Off),
            "prune" => Some(ReduceLevel::Prune),
            "full" => Some(ReduceLevel::Full),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReduceLevel::Off => "off",
            ReduceLevel::Prune => "prune",
            ReduceLevel::Full => "full",
        }
    }
}

/// Why a reduction could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum ReduceError {
    /// [`ReduceLevel::Full`] on a weighted graph: collapsing requires equal
    /// edge weights within a class, which general weighted graphs violate.
    WeightedCollapse,
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::WeightedCollapse => write!(
                f,
                "equivalent-vertex collapsing requires an unweighted graph \
                 (use --preprocess prune for weighted graphs)"
            ),
        }
    }
}

impl std::error::Error for ReduceError {}

/// What a super-vertex of the reduced graph stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwinKind {
    /// A single retained vertex (no collapsing happened here).
    Single,
    /// A class of false twins: identical *open* neighbourhoods, mutual
    /// distance 2 through every common neighbour.
    False,
    /// A class of true twins: identical *closed* neighbourhoods, mutually
    /// adjacent (distance 1, a unique shortest path with no interior).
    True,
}

/// Where an original vertex ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexState {
    /// Survives as a member of reduced vertex `h`, carrying pendant weight
    /// `omega` (itself plus its pruned pendant trees).
    Retained {
        /// Reduced (final, relabelled) vertex id.
        h: Vertex,
        /// Original vertices this member represents (`>= 1`).
        omega: u32,
    },
    /// Pruned into the pendant forest.
    Pruned {
        /// The retained original vertex its pendant tree hangs from.
        att: Vertex,
        /// Size of the maximal pruned subtree hanging off `att` that
        /// contains this vertex (its *branch*), in original vertices.
        branch: u32,
    },
}

/// Size bookkeeping of a reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReduceStats {
    /// Vertices and edges of the original graph.
    pub orig_vertices: usize,
    /// Edges of the original graph.
    pub orig_edges: usize,
    /// Vertices removed by pruning.
    pub pruned_vertices: usize,
    /// Vertices absorbed into twin classes (`Σ (μ − 1)`).
    pub collapsed_vertices: usize,
    /// Vertices of the reduced graph.
    pub reduced_vertices: usize,
    /// Edges of the reduced graph.
    pub reduced_edges: usize,
}

impl ReduceStats {
    /// `(n + m) / (n_H + m_H)`: how much smaller one SPD pass became.
    pub fn work_ratio(&self) -> f64 {
        let orig = (self.orig_vertices + self.orig_edges) as f64;
        let red = (self.reduced_vertices + self.reduced_edges).max(1) as f64;
        orig / red
    }

    /// `n / n_H` (`>= 1`).
    pub fn vertex_ratio(&self) -> f64 {
        self.orig_vertices as f64 / self.reduced_vertices.max(1) as f64
    }
}

/// A reduced graph: the collapsed, relabelled CSR plus the exact forward
/// and inverse maps between original and reduced vertex spaces.
///
/// Built by [`reduce`]; consumed by the `mhbc-spd` reduced dependency
/// engine. All per-reduced-vertex arrays are indexed by final (relabelled)
/// reduced ids; all per-original arrays by original ids.
#[derive(Debug, Clone)]
pub struct ReducedGraph {
    level: ReduceLevel,
    csr: CsrGraph,
    orig_n: usize,
    // Per reduced vertex.
    mult: Box<[f64]>,
    weight: Box<[f64]>,
    sum_w2: Box<[f64]>,
    wdeg: Box<[f64]>,
    kind: Box<[TwinKind]>,
    comp_total: Box<[f64]>,
    member_offsets: Box<[usize]>,
    member_ids: Box<[Vertex]>,
    // Per original vertex.
    state: Box<[VertexState]>,
    corrections: Box<[f64]>,
    row_group: Box<[u32]>,
    stats: ReduceStats,
}

impl ReducedGraph {
    /// The reduction level this graph was built at.
    pub fn level(&self) -> ReduceLevel {
        self.level
    }

    /// The reduced CSR (`H`), in final relabelled ids.
    #[inline]
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Number of vertices of the *original* graph.
    #[inline]
    pub fn orig_vertices(&self) -> usize {
        self.orig_n
    }

    /// Multiplicity `μ(z)`: how many retained vertices the class collapses.
    #[inline]
    pub fn mult(&self, z: Vertex) -> f64 {
        self.mult[z as usize]
    }

    /// Raw multiplicity slice (kernel input).
    #[inline]
    pub fn mults(&self) -> &[f64] {
        &self.mult
    }

    /// Total pendant weight `Ω(z) = Σ_{x ∈ class} ω(x)`: how many *original*
    /// vertices the class represents.
    #[inline]
    pub fn weight(&self, z: Vertex) -> f64 {
        self.weight[z as usize]
    }

    /// Raw weight slice (the backward kernel's target seeds).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weight
    }

    /// `Σ_{x ∈ class} ω(x)²` (used by the exact all-vertices path).
    #[inline]
    pub fn sum_w2(&self, z: Vertex) -> f64 {
        self.sum_w2[z as usize]
    }

    /// Multiplicity-weighted degree `Σ_{u ∈ N_H(z)} μ(u)` — the number of
    /// common neighbours two false twins of class `z` share in the pruned
    /// graph.
    #[inline]
    pub fn wdeg(&self, z: Vertex) -> f64 {
        self.wdeg[z as usize]
    }

    /// What kind of class `z` is.
    #[inline]
    pub fn kind(&self, z: Vertex) -> TwinKind {
        self.kind[z as usize]
    }

    /// Original size of the connected component `z` belongs to.
    #[inline]
    pub fn comp_total(&self, z: Vertex) -> f64 {
        self.comp_total[z as usize]
    }

    /// The retained original vertices collapsed into `z`.
    #[inline]
    pub fn members(&self, z: Vertex) -> &[Vertex] {
        let z = z as usize;
        &self.member_ids[self.member_offsets[z]..self.member_offsets[z + 1]]
    }

    /// Where original vertex `v` went.
    #[inline]
    pub fn state(&self, v: Vertex) -> VertexState {
        self.state[v as usize]
    }

    /// Whether original vertex `v` survives in the reduced graph.
    #[inline]
    pub fn is_retained(&self, v: Vertex) -> bool {
        matches!(self.state[v as usize], VertexState::Retained { .. })
    }

    /// Pruning corrections `c(v)` (raw, unnormalised pair counts) per
    /// original vertex. For a *pruned* vertex this is its exact raw
    /// betweenness; for a retained vertex it is the pendant share that the
    /// reduced-graph Brandes sum must be added to.
    #[inline]
    pub fn corrections(&self) -> &[f64] {
        &self.corrections
    }

    /// Exact betweenness (Eq 1 normalisation) of a **pruned** vertex, known
    /// in closed form from the corrections; `None` if `v` was retained.
    pub fn exact_pruned_bc(&self, v: Vertex) -> Option<f64> {
        match self.state[v as usize] {
            VertexState::Pruned { .. } => {
                let n = self.orig_n as f64;
                Some(self.corrections[v as usize] / (n * (n - 1.0)))
            }
            VertexState::Retained { .. } => None,
        }
    }

    /// Row-coalescing group of `v`: original vertices with equal groups have
    /// *identical dependency rows* `δ_{v•}(·)` for any probe set that does
    /// not contain them (twins share rows; pendant vertices of the same
    /// branch shape share rows). Density caches key on this to turn whole
    /// classes into a single SPD pass.
    #[inline]
    pub fn row_group(&self, v: Vertex) -> u32 {
        self.row_group[v as usize]
    }

    /// Size bookkeeping.
    pub fn stats(&self) -> &ReduceStats {
        &self.stats
    }
}

/// Builds the reduction of `g` at `level`. See the module docs for the
/// exact semantics of each level.
///
/// Errors only on [`ReduceLevel::Full`] over a weighted graph
/// ([`ReduceError::WeightedCollapse`]); pruning alone is weight-agnostic
/// (pendant trees are forced routes whatever the edge weights).
pub fn reduce(g: &CsrGraph, level: ReduceLevel) -> Result<ReducedGraph, ReduceError> {
    if g.is_weighted() && level == ReduceLevel::Full {
        return Err(ReduceError::WeightedCollapse);
    }
    let n = g.num_vertices();

    // Component sizes (pair counting must never cross components).
    let comps = connected_components(g);
    let comp_sizes = comps.sizes();
    let comp_of = |v: usize| comps.labels[v] as usize;

    // ---- Degree-1 pruning to fixpoint --------------------------------
    let mut degree: Vec<u32> = (0..n).map(|v| g.degree(v as Vertex) as u32).collect();
    let mut omega = vec![1u64; n];
    let mut corrections = vec![0.0f64; n];
    let mut pruned = vec![false; n];
    let mut parent = vec![u32::MAX; n];
    if level != ReduceLevel::Off {
        let mut queue: VecDeque<u32> = (0..n as u32).filter(|&v| degree[v as usize] == 1).collect();
        while let Some(v) = queue.pop_front() {
            let vu = v as usize;
            if pruned[vu] || degree[vu] != 1 {
                continue;
            }
            let u = *g
                .neighbors(v)
                .iter()
                .find(|&&u| !pruned[u as usize])
                .expect("degree-1 vertex has a live neighbour");
            let uu = u as usize;
            let c = comp_sizes[comp_of(vu)] as u64;
            corrections[uu] += 2.0 * omega[vu] as f64 * (c - omega[vu] - omega[uu]) as f64;
            omega[uu] += omega[vu];
            parent[vu] = u;
            pruned[vu] = true;
            degree[vu] = 0;
            degree[uu] -= 1;
            if degree[uu] == 1 {
                queue.push_back(u);
            }
        }
    }
    let pruned_count = pruned.iter().filter(|&&p| p).count();

    // ---- Attachment / branch resolution ------------------------------
    // att(v): the first retained vertex on v's parent chain. broot(v): the
    // last pruned vertex before it (the root of v's branch).
    let mut att = vec![u32::MAX; n];
    let mut broot = vec![u32::MAX; n];
    let mut chain: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        if !pruned[v as usize] || att[v as usize] != u32::MAX {
            continue;
        }
        chain.clear();
        let mut x = v;
        while pruned[x as usize] && att[x as usize] == u32::MAX {
            chain.push(x);
            x = parent[x as usize];
        }
        let (a, root) = if pruned[x as usize] {
            (att[x as usize], broot[x as usize])
        } else {
            (x, *chain.last().expect("chain non-empty"))
        };
        for &c in &chain {
            att[c as usize] = a;
            broot[c as usize] = root;
        }
    }
    let mut branch_size = vec![0u32; n];
    for v in 0..n {
        if pruned[v] {
            branch_size[broot[v] as usize] += 1;
        }
    }

    // ---- Twin classes over the retained subgraph ----------------------
    let retained: Vec<u32> = (0..n as u32).filter(|&v| !pruned[v as usize]).collect();
    // class_pre[v]: pre-relabel class id of retained v.
    let mut class_pre = vec![u32::MAX; n];
    let mut classes_pre: Vec<Vec<u32>> = Vec::new();
    if level == ReduceLevel::Full {
        // Live (retained-only) sorted neighbour list per retained vertex.
        let live: HashMap<u32, Vec<u32>> = retained
            .iter()
            .map(|&v| {
                (v, g.neighbors(v).iter().copied().filter(|&u| !pruned[u as usize]).collect())
            })
            .collect();
        // False twins: identical open neighbourhoods (degree >= 1 only —
        // degree-0 vertices may sit in different components).
        let mut open_groups: HashMap<&[u32], Vec<u32>> = HashMap::new();
        for &v in &retained {
            let key = &live[&v][..];
            if !key.is_empty() {
                open_groups.entry(key).or_default().push(v);
            }
        }
        let mut kinds: Vec<TwinKind> = Vec::new();
        for &v in &retained {
            if class_pre[v as usize] != u32::MAX {
                continue;
            }
            if let Some(group) = open_groups.get(&live[&v][..]) {
                if group.len() >= 2 && group[0] == v {
                    let id = classes_pre.len() as u32;
                    for &m in group {
                        class_pre[m as usize] = id;
                    }
                    classes_pre.push(group.clone());
                    kinds.push(TwinKind::False);
                }
            }
        }
        // True twins among the rest: identical closed neighbourhoods. Each
        // vertex's sorted closed key is computed once; `gidx` remembers
        // which group it landed in so the (deterministic, retained-order)
        // class assignment below needs no second key construction.
        let closed_key = |v: u32| -> Vec<u32> {
            let mut k = live[&v].clone();
            let pos = k.partition_point(|&u| u < v);
            k.insert(pos, v);
            k
        };
        let mut closed_groups: Vec<Vec<u32>> = Vec::new();
        let mut group_of: HashMap<Vec<u32>, usize> = HashMap::new();
        let mut gidx = vec![usize::MAX; n];
        for &v in &retained {
            if class_pre[v as usize] == u32::MAX && !live[&v].is_empty() {
                let i = *group_of.entry(closed_key(v)).or_insert_with(|| {
                    closed_groups.push(Vec::new());
                    closed_groups.len() - 1
                });
                closed_groups[i].push(v);
                gidx[v as usize] = i;
            }
        }
        for &v in &retained {
            if class_pre[v as usize] != u32::MAX {
                continue;
            }
            if gidx[v as usize] != usize::MAX {
                let group = &closed_groups[gidx[v as usize]];
                if group.len() >= 2 && group[0] == v {
                    let id = classes_pre.len() as u32;
                    for &m in group {
                        class_pre[m as usize] = id;
                    }
                    classes_pre.push(group.clone());
                    kinds.push(TwinKind::True);
                    continue;
                }
            }
            let id = classes_pre.len() as u32;
            class_pre[v as usize] = id;
            classes_pre.push(vec![v]);
            kinds.push(TwinKind::Single);
        }
        debug_assert_eq!(kinds.len(), classes_pre.len());
        // Build the reduction below with per-class kinds.
        return assemble(
            g,
            level,
            n,
            &comps.labels,
            &comp_sizes,
            &omega,
            corrections,
            &pruned,
            pruned_count,
            &att,
            &broot,
            &branch_size,
            class_pre,
            classes_pre,
            kinds,
        );
    }
    // Off / Prune: singleton classes in ascending retained order.
    let mut kinds = Vec::with_capacity(retained.len());
    for &v in &retained {
        class_pre[v as usize] = classes_pre.len() as u32;
        classes_pre.push(vec![v]);
        kinds.push(TwinKind::Single);
    }
    assemble(
        g,
        level,
        n,
        &comps.labels,
        &comp_sizes,
        &omega,
        corrections,
        &pruned,
        pruned_count,
        &att,
        &broot,
        &branch_size,
        class_pre,
        classes_pre,
        kinds,
    )
}

/// Builds H from the class partition, relabels it, and assembles the final
/// [`ReducedGraph`].
#[allow(clippy::too_many_arguments)]
fn assemble(
    g: &CsrGraph,
    level: ReduceLevel,
    n: usize,
    comp_labels: &[u32],
    comp_sizes: &[usize],
    omega: &[u64],
    corrections: Vec<f64>,
    pruned: &[bool],
    pruned_count: usize,
    att: &[u32],
    broot: &[u32],
    branch_size: &[u32],
    class_pre: Vec<u32>,
    classes_pre: Vec<Vec<u32>>,
    kinds: Vec<TwinKind>,
) -> Result<ReducedGraph, ReduceError> {
    let h_n = classes_pre.len();

    // Class-level edge list (deduplicated; intra-class edges dropped).
    let mut h_edges: Vec<(u32, u32, f64)> = Vec::new();
    for (u, v, w) in g.edges() {
        if pruned[u as usize] || pruned[v as usize] {
            continue;
        }
        let (cu, cv) = (class_pre[u as usize], class_pre[v as usize]);
        if cu != cv {
            h_edges.push((cu.min(cv), cu.max(cv), w));
        }
    }
    h_edges.sort_by_key(|e| (e.0, e.1));
    h_edges.dedup_by_key(|e| (e.0, e.1));

    // Relabel: BFS order from the highest-degree vertex of each component
    // (components visited by descending root degree, ties by smaller id),
    // keeping pre-id order inside each frontier. Applied only when it
    // pays: the SPD kernel is memory-bound on *traversal-order locality* —
    // a pass walks the frontier in BFS order, and consecutive frontier
    // vertices with near-consecutive ids stream consecutive CSR rows and
    // dist/σ cache lines (hardware-prefetch friendly), while fragmented
    // orders jump between distant rows on every step. The guard measures
    // the natural layout's traversal locality (fraction of consecutive BFS
    // visits within 16 ids of each other; the BFS layout scores ~1 by
    // construction) and relabels only when the natural order is fragmented
    // (< half local). Ring-ordered and already-relabelled graphs keep
    // their ids — making the relabel idempotent — while chronological,
    // scrambled, or cluster-interleaved layouts are rewritten. No-op for
    // `Off`.
    let perm: Vec<u32> = if level == ReduceLevel::Off {
        (0..h_n as u32).collect()
    } else {
        let pre =
            CsrGraph::from_edges(h_n, &h_edges.iter().map(|&(a, b, _)| (a, b)).collect::<Vec<_>>())
                .expect("class edges are valid");
        let mut order: Vec<u32> = Vec::with_capacity(h_n);
        let mut seen = vec![false; h_n];
        let mut roots: Vec<u32> = (0..h_n as u32).collect();
        roots.sort_by_key(|&z| (usize::MAX - pre.degree(z), z));
        let mut queue = VecDeque::new();
        for root in roots {
            if seen[root as usize] {
                continue;
            }
            seen[root as usize] = true;
            queue.push_back(root);
            while let Some(z) = queue.pop_front() {
                order.push(z);
                for &w in pre.neighbors(z) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        let local_steps = order.windows(2).filter(|w| w[0].abs_diff(w[1]) <= 16).count();
        let fragmented = 2 * local_steps < h_n.saturating_sub(1);
        if fragmented {
            let mut perm = vec![0u32; h_n];
            for (new, &old) in order.iter().enumerate() {
                perm[old as usize] = new as u32;
            }
            perm
        } else {
            (0..h_n as u32).collect()
        }
    };

    // Final CSR.
    let mut b = GraphBuilder::new(h_n);
    let weighted = g.is_weighted();
    for &(cu, cv, w) in &h_edges {
        let (a, c) = (perm[cu as usize], perm[cv as usize]);
        if weighted {
            b.add_weighted_edge(a, c, w).expect("reduced edge valid");
        } else {
            b.add_edge(a, c).expect("reduced edge valid");
        }
    }
    let csr = b.build().expect("reduced graph valid");

    // Per-reduced-vertex arrays (final ids).
    let mut mult = vec![0.0f64; h_n];
    let mut weight = vec![0.0f64; h_n];
    let mut sum_w2 = vec![0.0f64; h_n];
    let mut kind = vec![TwinKind::Single; h_n];
    let mut comp_total = vec![0.0f64; h_n];
    let mut member_offsets = vec![0usize; h_n + 1];
    let mut member_ids = vec![0u32; n - pruned_count];
    // Members sorted by final class id, then original id (classes_pre lists
    // are ascending already).
    let mut by_final: Vec<(u32, &Vec<u32>, TwinKind)> =
        classes_pre.iter().enumerate().map(|(pre, ms)| (perm[pre], ms, kinds[pre])).collect();
    by_final.sort_by_key(|&(z, _, _)| z);
    let mut cursor = 0usize;
    for (z, ms, k) in by_final {
        let zu = z as usize;
        member_offsets[zu] = cursor;
        kind[zu] = k;
        mult[zu] = ms.len() as f64;
        comp_total[zu] = comp_sizes[comp_labels[ms[0] as usize] as usize] as f64;
        for &m in ms {
            let w = omega[m as usize] as f64;
            weight[zu] += w;
            sum_w2[zu] += w * w;
            member_ids[cursor] = m;
            cursor += 1;
        }
    }
    member_offsets[h_n] = cursor;
    let mut wdeg = vec![0.0f64; h_n];
    for (z, w) in wdeg.iter_mut().enumerate() {
        *w = csr.neighbors(z as u32).iter().map(|&u| mult[u as usize]).sum();
    }

    // Per-original state and row groups.
    let mut state = vec![VertexState::Retained { h: 0, omega: 1 }; n];
    let mut row_group = vec![0u32; n];
    let mut groups: HashMap<(u32, u32, u32), u32> = HashMap::new();
    for v in 0..n {
        let (st, key) = if pruned[v] {
            let a = att[v];
            let bsz = branch_size[broot[v] as usize];
            (VertexState::Pruned { att: a, branch: bsz }, (1u32, a, bsz))
        } else {
            let h = perm[class_pre[v] as usize];
            let w = omega[v] as u32;
            (VertexState::Retained { h, omega: w }, (0u32, h, w))
        };
        state[v] = st;
        let next = groups.len() as u32;
        row_group[v] = *groups.entry(key).or_insert(next);
    }

    let stats = ReduceStats {
        orig_vertices: n,
        orig_edges: g.num_edges(),
        pruned_vertices: pruned_count,
        collapsed_vertices: (n - pruned_count) - h_n,
        reduced_vertices: h_n,
        reduced_edges: csr.num_edges(),
    };
    Ok(ReducedGraph {
        level,
        csr,
        orig_n: n,
        mult: mult.into_boxed_slice(),
        weight: weight.into_boxed_slice(),
        sum_w2: sum_w2.into_boxed_slice(),
        wdeg: wdeg.into_boxed_slice(),
        kind: kind.into_boxed_slice(),
        comp_total: comp_total.into_boxed_slice(),
        member_offsets: member_offsets.into_boxed_slice(),
        member_ids: member_ids.into_boxed_slice(),
        state: state.into_boxed_slice(),
        corrections: corrections.into_boxed_slice(),
        row_group: row_group.into_boxed_slice(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_prunes_to_one_vertex_with_exact_corrections() {
        // Path 0-1-2-3: raw BC = [0, 4, 4, 0].
        let g = generators::path(4);
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        assert_eq!(red.csr().num_vertices(), 1);
        assert_eq!(red.stats().pruned_vertices, 3);
        let c = red.corrections();
        assert_eq!(c, &[0.0, 4.0, 4.0, 0.0]);
        // Pruned vertex 1's exact normalised BC: 4 / (4*3).
        assert_eq!(red.exact_pruned_bc(1), Some(4.0 / 12.0));
    }

    #[test]
    fn star_prunes_to_centre() {
        let g = generators::star(5);
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        assert_eq!(red.csr().num_vertices(), 1);
        assert_eq!(red.corrections()[0], 12.0); // 4 * 3 ordered leaf pairs
        match red.state(0) {
            VertexState::Retained { omega, .. } => assert_eq!(omega, 5),
            s => panic!("centre should be retained, got {s:?}"),
        }
        // Each leaf hangs alone off the centre: branch of size 1.
        for leaf in 1..5 {
            match red.state(leaf) {
                VertexState::Pruned { att, branch } => {
                    assert_eq!(att, 0);
                    assert_eq!(branch, 1);
                }
                s => panic!("leaf should be pruned, got {s:?}"),
            }
        }
    }

    #[test]
    fn spider_corrections_match_hand_count() {
        // Centre 0 with three legs 0-1-4, 0-2-5, 0-3-6 (legs of length 2).
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 4), (0, 2), (2, 5), (0, 3), (3, 6)]).unwrap();
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        assert_eq!(red.csr().num_vertices(), 1);
        let c = red.corrections();
        assert_eq!(c[0], 24.0); // cross-leg ordered pairs through the centre
        for (mid, &corr) in c.iter().enumerate().take(4).skip(1) {
            assert_eq!(corr, 10.0, "mid vertex {mid}"); // leaf <-> 5 others
        }
        for &corr in &c[4..=6] {
            assert_eq!(corr, 0.0);
        }
        // 4's branch (via 1) has 2 members; branch sizes count members.
        match red.state(4) {
            VertexState::Pruned { att, branch } => {
                assert_eq!(att, 0);
                assert_eq!(branch, 2);
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn diamond_collapses_false_twins() {
        // 0-1, 0-2, 1-3, 2-3: {1, 2} are false twins — and so are {0, 3}.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        assert_eq!(red.csr().num_vertices(), 2);
        assert_eq!(red.stats().collapsed_vertices, 2);
        let VertexState::Retained { h: h1, .. } = red.state(1) else { panic!() };
        let VertexState::Retained { h: h2, .. } = red.state(2) else { panic!() };
        assert_eq!(h1, h2);
        assert_eq!(red.kind(h1), TwinKind::False);
        assert_eq!(red.mult(h1), 2.0);
        assert_eq!(red.weight(h1), 2.0);
        assert_eq!(red.wdeg(h1), 2.0); // neighbours 0 and 3, multiplicity 1 each
        assert_eq!(red.members(h1), &[1, 2]);
        // Vertices 1 and 2 share a dependency-row group.
        assert_eq!(red.row_group(1), red.row_group(2));
        assert_ne!(red.row_group(0), red.row_group(1));
    }

    #[test]
    fn clique_collapses_true_twins() {
        let g = generators::complete(5);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        assert_eq!(red.csr().num_vertices(), 1);
        assert_eq!(red.kind(0), TwinKind::True);
        assert_eq!(red.mult(0), 5.0);
        assert_eq!(red.csr().num_edges(), 0);
    }

    #[test]
    fn lollipop_reduces_to_an_edge() {
        // Clique of 8 + path of 4: the path prunes, after which *all* eight
        // clique vertices (including the attachment, whose path neighbour is
        // gone from the live neighbourhood) are mutual true twins.
        let g = generators::lollipop(8, 4);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        assert_eq!(red.stats().pruned_vertices, 4);
        assert_eq!(red.csr().num_vertices(), 1);
        assert_eq!(red.kind(0), TwinKind::True);
        assert_eq!(red.mult(0), 8.0);
        assert_eq!(red.weight(0), 12.0); // 8 members + 4 pruned path vertices
    }

    #[test]
    fn off_level_is_the_identity() {
        let g = generators::barbell(4, 2);
        let red = reduce(&g, ReduceLevel::Off).unwrap();
        assert_eq!(red.csr().num_vertices(), g.num_vertices());
        assert_eq!(red.csr().num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            match red.state(v) {
                VertexState::Retained { h, omega } => {
                    assert_eq!(h, v);
                    assert_eq!(omega, 1);
                }
                s => panic!("{s:?}"),
            }
            assert_eq!(red.csr().neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn weighted_collapse_is_refused_but_prune_works() {
        let g = generators::path(5).map_weights(|_, _| 2.0).unwrap();
        assert_eq!(reduce(&g, ReduceLevel::Full).err(), Some(ReduceError::WeightedCollapse));
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        assert_eq!(red.csr().num_vertices(), 1);
        assert_eq!(red.corrections()[2], 8.0); // centre of the 5-path
    }

    #[test]
    fn disconnected_components_count_pairs_separately() {
        // Two 3-paths: the middle of each has raw BC 2 within its own
        // component (pairs across components do not exist).
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        assert_eq!(red.corrections()[1], 2.0);
        assert_eq!(red.corrections()[4], 2.0);
        assert_eq!(red.csr().num_vertices(), 2);
    }

    #[test]
    fn degree_zero_vertices_never_collapse_together() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]).unwrap(); // 2 and 3 isolated
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        // 0-1 prunes to one vertex; 2 and 3 stay separate classes.
        assert_eq!(red.csr().num_vertices(), 3);
    }

    #[test]
    fn relabel_is_a_bijection_and_stats_add_up() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::barabasi_albert(200, 2, &mut rng);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let s = red.stats();
        assert_eq!(s.orig_vertices, 200);
        assert_eq!(s.pruned_vertices + s.collapsed_vertices + s.reduced_vertices, 200);
        // Every reduced id is hit by at least one member, weights total n.
        let total: f64 = (0..red.csr().num_vertices() as u32).map(|z| red.weight(z)).sum();
        assert_eq!(total, 200.0);
        let members: usize =
            (0..red.csr().num_vertices() as u32).map(|z| red.members(z).len()).sum();
        assert_eq!(members, 200 - s.pruned_vertices);
        assert!(s.work_ratio() >= 1.0);
        assert!(s.vertex_ratio() >= 1.0);
    }

    #[test]
    fn level_parsing_round_trips() {
        for l in [ReduceLevel::Off, ReduceLevel::Prune, ReduceLevel::Full] {
            assert_eq!(ReduceLevel::parse(l.as_str()), Some(l));
        }
        assert_eq!(ReduceLevel::parse("bogus"), None);
    }
}
