//! Validating graph construction.

use crate::{CsrGraph, GraphError, Vertex};

/// Incremental, validating builder for [`CsrGraph`].
///
/// Enforces the structural assumptions of the paper (§2): no self-loops, no
/// multi-edges (identical duplicates are silently merged; duplicates with
/// different weights are an error), and strictly positive finite weights.
/// A single builder is either entirely weighted or entirely unweighted.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
    weights: Vec<f64>,
    weighted: Option<bool>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new(), weights: Vec::new(), weighted: None }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder { n, edges: Vec::with_capacity(m), weights: Vec::new(), weighted: None }
    }

    /// Number of vertices this builder targets.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn num_edges_added(&self) -> usize {
        self.edges.len()
    }

    fn check_endpoints(&self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        for x in [u, v] {
            if x as usize >= self.n {
                return Err(GraphError::VertexOutOfRange { vertex: x, num_vertices: self.n });
            }
        }
        Ok(())
    }

    /// Adds an undirected, unweighted edge `{u, v}`.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> Result<&mut Self, GraphError> {
        self.check_endpoints(u, v)?;
        match self.weighted {
            Some(true) => return Err(GraphError::MixedWeightedness),
            Some(false) => {}
            None => self.weighted = Some(false),
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(self)
    }

    /// Adds an undirected edge `{u, v}` with strictly positive weight `w`.
    pub fn add_weighted_edge(
        &mut self,
        u: Vertex,
        v: Vertex,
        w: f64,
    ) -> Result<&mut Self, GraphError> {
        self.check_endpoints(u, v)?;
        if !(w.is_finite() && w > 0.0) {
            return Err(GraphError::InvalidWeight { u, v, weight: w });
        }
        match self.weighted {
            Some(false) => return Err(GraphError::MixedWeightedness),
            Some(true) => {}
            None => self.weighted = Some(true),
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        self.weights.push(w);
        Ok(self)
    }

    /// Finalises into CSR form.
    ///
    /// Runs in `O(n + m log m)`: normalised edges are sorted, identical
    /// duplicates merged, and the doubled adjacency arrays filled by prefix
    /// sums. Duplicate edges with differing weights produce
    /// [`GraphError::InconsistentDuplicate`]. The compact-index invariant of
    /// [`CsrGraph`] (`u32` offsets) is checked here: graphs whose doubled
    /// edge-endpoint count `2m` exceeds `u32::MAX` are refused with
    /// [`GraphError::TooManyEdges`] instead of overflowing.
    pub fn build(self) -> Result<CsrGraph, GraphError> {
        if self.n >= u32::MAX as usize {
            return Err(GraphError::TooManyVertices { requested: self.n });
        }
        let weighted = self.weighted == Some(true);

        // Sort (edge, weight) jointly, then merge duplicates.
        let mut order: Vec<u32> = (0..self.edges.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.edges[i as usize]);

        let mut dedup: Vec<(Vertex, Vertex)> = Vec::with_capacity(self.edges.len());
        let mut dedup_w: Vec<f64> = Vec::with_capacity(if weighted { self.edges.len() } else { 0 });
        for &i in &order {
            let e = self.edges[i as usize];
            if dedup.last() == Some(&e) {
                if weighted {
                    let w_new = self.weights[i as usize];
                    let w_old = *dedup_w.last().unwrap();
                    if w_new != w_old {
                        return Err(GraphError::InconsistentDuplicate {
                            u: e.0,
                            v: e.1,
                            w1: w_old,
                            w2: w_new,
                        });
                    }
                }
                continue;
            }
            dedup.push(e);
            if weighted {
                dedup_w.push(self.weights[i as usize]);
            }
        }

        let m = dedup.len();
        if 2 * m > u32::MAX as usize {
            return Err(GraphError::TooManyEdges { edges: m });
        }
        let mut offsets = vec![0u32; self.n + 1];
        for &(u, v) in &dedup {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        let degrees: Vec<u32> = offsets[1..].to_vec();
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }

        let mut targets = vec![0 as Vertex; 2 * m];
        let mut weights = if weighted { vec![0.0f64; 2 * m] } else { Vec::new() };
        let mut cursor = offsets.clone();
        for (k, &(u, v)) in dedup.iter().enumerate() {
            let (cu, cv) = (cursor[u as usize] as usize, cursor[v as usize] as usize);
            targets[cu] = v;
            targets[cv] = u;
            if weighted {
                weights[cu] = dedup_w[k];
                weights[cv] = dedup_w[k];
            }
            cursor[u as usize] += 1;
            cursor[v as usize] += 1;
        }

        // Edges were inserted in sorted order of (min, max); each adjacency
        // slice receives its targets in increasing order of the *other*
        // endpoint only for the `u < v` direction. Sort each slice (cheap:
        // slices are typically short and nearly sorted).
        if weighted {
            for v in 0..self.n {
                let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
                let mut idx: Vec<usize> = (s..e).collect();
                idx.sort_unstable_by_key(|&i| targets[i]);
                let t_sorted: Vec<Vertex> = idx.iter().map(|&i| targets[i]).collect();
                let w_sorted: Vec<f64> = idx.iter().map(|&i| weights[i]).collect();
                targets[s..e].copy_from_slice(&t_sorted);
                weights[s..e].copy_from_slice(&w_sorted);
            }
        } else {
            for v in 0..self.n {
                let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
                targets[s..e].sort_unstable();
            }
        }

        Ok(CsrGraph {
            offsets: offsets.into_boxed_slice(),
            degrees: degrees.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            weights: if weighted { Some(weights.into_boxed_slice()) } else { None },
            num_edges: m,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1).unwrap_err(), GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(0, 2).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 2, num_vertices: 2 }
        );
    }

    #[test]
    fn rejects_mixed_weightedness() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.add_weighted_edge(1, 2, 1.0).unwrap_err(), GraphError::MixedWeightedness);

        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 1.0).unwrap();
        assert_eq!(b.add_edge(1, 2).unwrap_err(), GraphError::MixedWeightedness);
    }

    #[test]
    fn rejects_bad_weights() {
        let mut b = GraphBuilder::new(2);
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                b.add_weighted_edge(0, 1, w).unwrap_err(),
                GraphError::InvalidWeight { .. }
            ));
        }
    }

    #[test]
    fn merges_identical_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn merges_identical_weighted_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.0).unwrap();
        b.add_weighted_edge(1, 0, 2.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn rejects_inconsistent_duplicate_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.0).unwrap();
        b.add_weighted_edge(1, 0, 3.0).unwrap();
        assert!(matches!(b.build().unwrap_err(), GraphError::InconsistentDuplicate { .. }));
    }

    #[test]
    fn builds_isolated_vertices() {
        let g = GraphBuilder::new(4).build().unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn weighted_adjacency_stays_aligned_after_sorting() {
        // Insert edges in an order that forces per-slice sorting.
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(3, 1, 3.0).unwrap();
        b.add_weighted_edge(1, 0, 1.0).unwrap();
        b.add_weighted_edge(2, 1, 2.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbor_weights(1).unwrap(), &[1.0, 2.0, 3.0]);
    }
}
