//! A reusable dense bitset for traversal bookkeeping.

/// A fixed-capacity bitset over vertex ids `0..n`, packed 64 per word.
///
/// Traversal kernels (notably the bottom-up phase of the hybrid BFS in
/// `mhbc-spd`) need an O(1)-per-query membership structure whose working set
/// is as small as possible: one bit per vertex is 32x denser than the
/// packed-distance array, so frontier-membership tests stay cache-resident
/// on frontiers where the distance array would thrash. The bitset is a
/// plain reusable workspace — allocate once per graph, [`VisitBitset::clear`]
/// or remove bits between uses.
///
/// ```
/// use mhbc_graph::VisitBitset;
///
/// let mut bits = VisitBitset::new(100);
/// bits.insert(3);
/// bits.insert(64);
/// assert!(bits.contains(3) && bits.contains(64) && !bits.contains(4));
/// bits.remove(3);
/// assert!(!bits.contains(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VisitBitset {
    words: Vec<u64>,
}

impl VisitBitset {
    /// An all-clear bitset with capacity for ids `0..n`.
    pub fn new(n: usize) -> Self {
        VisitBitset { words: vec![0; n.div_ceil(64)] }
    }

    /// Number of ids this bitset can hold (a multiple of 64).
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Sets bit `v`.
    #[inline(always)]
    pub fn insert(&mut self, v: u32) {
        self.words[v as usize / 64] |= 1u64 << (v % 64);
    }

    /// Clears bit `v`.
    #[inline(always)]
    pub fn remove(&mut self, v: u32) {
        self.words[v as usize / 64] &= !(1u64 << (v % 64));
    }

    /// Whether bit `v` is set.
    #[inline(always)]
    pub fn contains(&self, v: u32) -> bool {
        (self.words[v as usize / 64] >> (v % 64)) & 1 != 0
    }

    /// Whether bit `v` is set, without the bounds check.
    ///
    /// # Safety
    /// `v` must be below [`VisitBitset::capacity`].
    #[inline(always)]
    pub unsafe fn contains_unchecked(&self, v: u32) -> bool {
        (self.words.get_unchecked(v as usize / 64) >> (v % 64)) & 1 != 0
    }

    /// Clears every bit (O(n / 64)).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Visits every set bit in ascending order, clearing each as it goes —
    /// the whole bitset is empty afterwards. `O(capacity / 64)` word scans
    /// plus `O(count)` bit extractions: for batches larger than a few dozen
    /// ids this beats sorting the batch, which is how the hybrid BFS
    /// canonicalises large push frontiers.
    pub fn drain_ascending(&mut self, mut f: impl FnMut(u32)) {
        for (wi, word) in self.words.iter_mut().enumerate() {
            let mut w = *word;
            if w == 0 {
                continue;
            }
            *word = 0;
            while w != 0 {
                f(wi as u32 * 64 + w.trailing_zeros());
                w &= w - 1;
            }
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut b = VisitBitset::new(130);
        assert_eq!(b.capacity(), 192);
        for v in [0u32, 63, 64, 127, 129] {
            assert!(!b.contains(v));
            b.insert(v);
            assert!(b.contains(v));
        }
        assert_eq!(b.count(), 5);
        b.remove(64);
        assert!(!b.contains(64) && b.contains(63) && b.contains(127));
        b.clear();
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn zero_capacity_is_fine() {
        let b = VisitBitset::new(0);
        assert_eq!(b.capacity(), 0);
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn drain_ascending_visits_sorted_and_empties() {
        let mut b = VisitBitset::new(200);
        for v in [199u32, 0, 64, 63, 65, 130] {
            b.insert(v);
        }
        let mut seen = Vec::new();
        b.drain_ascending(|v| seen.push(v));
        assert_eq!(seen, vec![0, 63, 64, 65, 130, 199]);
        assert_eq!(b.count(), 0);
    }
}
