//! Whitespace-separated edge-list reading and writing.
//!
//! Format: one edge per line, `u v` (unweighted) or `u v w` (weighted);
//! blank lines and lines starting with `#` or `%` are ignored (the comment
//! conventions of SNAP and KONECT dumps). Vertex ids are arbitrary
//! non-negative integers; the graph is sized to `max id + 1`.

use crate::{CsrGraph, GraphBuilder, GraphError, Vertex};
use std::io::{BufRead, Write};

/// Reads an edge list from `reader`. Weightedness is inferred from the first
/// data line and must then be consistent on all lines.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut weighted: Option<bool> = None;
    let mut max_v: Vertex = 0;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| GraphError::Parse { line: lineno, message: e.to_string() })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: Vertex = parse_field(parts.next(), lineno, "source vertex")?;
        let v: Vertex = parse_field(parts.next(), lineno, "target vertex")?;
        let w_field = parts.next();
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno,
                message: "too many fields (expected `u v` or `u v w`)".into(),
            });
        }
        match (weighted, w_field) {
            (None, None) => weighted = Some(false),
            (None, Some(_)) => weighted = Some(true),
            (Some(false), Some(_)) | (Some(true), None) => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: "inconsistent weight columns across lines".into(),
                })
            }
            _ => {}
        }
        if let Some(ws) = w_field {
            let w: f64 = ws.parse().map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("invalid weight `{ws}`"),
            })?;
            weights.push(w);
        }
        max_v = max_v.max(u).max(v);
        edges.push((u, v));
    }

    let n = if edges.is_empty() { 0 } else { max_v as usize + 1 };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    if weighted == Some(true) {
        for (&(u, v), &w) in edges.iter().zip(&weights) {
            b.add_weighted_edge(u, v, w)?;
        }
    } else {
        for &(u, v) in &edges {
            b.add_edge(u, v)?;
        }
    }
    b.build()
}

fn parse_field(field: Option<&str>, line: usize, what: &str) -> Result<Vertex, GraphError> {
    let s = field.ok_or_else(|| GraphError::Parse { line, message: format!("missing {what}") })?;
    s.parse().map_err(|_| GraphError::Parse { line, message: format!("invalid {what} `{s}`") })
}

/// Writes `g` as an edge list (each undirected edge once, `u < v`).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# mhbc edge list: n={} m={}", g.num_vertices(), g.num_edges())?;
    if g.is_weighted() {
        for (u, v, w) in g.edges() {
            writeln!(writer, "{u} {v} {w}")?;
        }
    } else {
        for (u, v, _) in g.edges() {
            writeln!(writer, "{u} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_unweighted_with_comments() {
        let text = "# comment\n% other comment\n0 1\n\n1 2\n2 0\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn reads_weighted() {
        let g = read_edge_list(Cursor::new("0 1 2.5\n1 2 0.5\n")).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn rejects_mixed_weight_columns() {
        let err = read_edge_list(Cursor::new("0 1\n1 2 3.0\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_edge_list(Cursor::new("0 x\n")).unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            read_edge_list(Cursor::new("0 1 2.0 9\n")).unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            read_edge_list(Cursor::new("3\n")).unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = crate::generators::barbell(3, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v, _) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn roundtrip_weighted() {
        let g = crate::CsrGraph::from_weighted_edges(3, &[(0, 1, 1.25), (1, 2, 4.0)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g2.edge_weight(0, 1), Some(1.25));
        assert_eq!(g2.edge_weight(1, 2), Some(4.0));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn self_loop_in_file_is_rejected() {
        assert!(matches!(
            read_edge_list(Cursor::new("1 1\n")).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        ));
    }
}
