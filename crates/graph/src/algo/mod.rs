//! Graph algorithms: traversal, connectivity, distance estimation.

mod components;
mod distance;
mod traversal;
mod union_find;

pub use components::{
    components_after_removal, connected_components, is_connected, largest_component,
    ComponentLabels,
};
pub use distance::{double_sweep_lower_bound, eccentricity, vertex_diameter_bounds};
pub use traversal::{bfs_distances, bfs_distances_into, bfs_order, dfs_preorder, UNREACHED};
pub use union_find::UnionFind;
