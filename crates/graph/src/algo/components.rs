//! Connected components and vertex-removal component analysis.

use crate::{CsrGraph, GraphBuilder, Vertex};
use std::collections::VecDeque;

/// Result of [`connected_components`].
#[derive(Debug, Clone)]
pub struct ComponentLabels {
    /// Number of connected components.
    pub count: usize,
    /// `labels[v]` is the component id of `v`, in `0..count`, assigned in
    /// order of discovery from vertex 0 upward.
    pub labels: Vec<u32>,
}

impl ComponentLabels {
    /// Sizes of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }
}

/// Labels connected components by BFS in `O(n + m)`.
pub fn connected_components(g: &CsrGraph) -> ComponentLabels {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if labels[s] != u32::MAX {
            continue;
        }
        labels[s] = count;
        queue.push_back(s as Vertex);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    ComponentLabels { count: count as usize, labels }
}

/// Whether `g` is connected (the paper's standing assumption). Empty graphs
/// count as connected.
pub fn is_connected(g: &CsrGraph) -> bool {
    connected_components(g).count <= 1
}

/// Extracts the largest connected component as a new graph.
///
/// Returns the subgraph and a mapping `new_id -> old_id`. Weights are
/// preserved. Standard preprocessing step for generated graphs that came out
/// disconnected.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<Vertex>) {
    let comps = connected_components(g);
    if comps.count <= 1 {
        return (g.clone(), (0..g.num_vertices() as Vertex).collect());
    }
    let sizes = comps.sizes();
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("at least one component exists");

    let mut new_of_old = vec![u32::MAX; g.num_vertices()];
    let mut old_of_new = Vec::new();
    for (v, slot) in new_of_old.iter_mut().enumerate() {
        if comps.labels[v] == best {
            *slot = old_of_new.len() as u32;
            old_of_new.push(v as Vertex);
        }
    }
    let mut b = GraphBuilder::new(old_of_new.len());
    for (u, v, w) in g.edges() {
        let (nu, nv) = (new_of_old[u as usize], new_of_old[v as usize]);
        if nu == u32::MAX || nv == u32::MAX {
            continue;
        }
        if g.is_weighted() {
            b.add_weighted_edge(nu, nv, w).expect("subgraph edge valid");
        } else {
            b.add_edge(nu, nv).expect("subgraph edge valid");
        }
    }
    (b.build().expect("subgraph is valid"), old_of_new)
}

/// Sizes of the connected components of `G \ r` (the paper's notation for
/// the graphs obtained by removing `r`), sorted descending.
///
/// This is the quantity Theorem 2 reasons about: `r` is a *balanced vertex
/// separator* when at least two of these components have `Θ(n)` vertices.
pub fn components_after_removal(g: &CsrGraph, r: Vertex) -> Vec<usize> {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    labels[r as usize] = u32::MAX - 1; // mark removed
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for s in 0..n {
        if labels[s] != u32::MAX {
            continue;
        }
        let mut size = 0usize;
        labels[s] = sizes.len() as u32;
        queue.push_back(s as Vertex);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if v != r && labels[v as usize] == u32::MAX {
                    labels[v as usize] = sizes.len() as u32;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_component() {
        let g = generators::cycle(6);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn multiple_components_and_sizes() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2, 3]);
    }

    #[test]
    fn largest_component_extraction_preserves_structure() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        let mut old: Vec<_> = map.clone();
        old.sort_unstable();
        assert_eq!(old, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_weighted() {
        let g = CsrGraph::from_weighted_edges(5, &[(0, 1, 2.0), (1, 2, 3.0), (3, 4, 1.0)]).unwrap();
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert!(sub.is_weighted());
        // Find the new ids of old 0 and 1 via the map.
        let new_of = |old: Vertex| map.iter().position(|&o| o == old).unwrap() as Vertex;
        assert_eq!(sub.edge_weight(new_of(0), new_of(1)), Some(2.0));
    }

    #[test]
    fn removal_of_cut_vertex() {
        // Two triangles joined by an edge; vertex 2 is in clique A and on
        // the bridge (2-3).
        let g = generators::barbell(3, 0);
        let sizes = components_after_removal(&g, 2);
        assert_eq!(sizes, vec![3, 2]);
    }

    #[test]
    fn removal_of_non_cut_vertex() {
        let g = generators::complete(5);
        let sizes = components_after_removal(&g, 0);
        assert_eq!(sizes, vec![4]);
    }

    #[test]
    fn removal_from_star_shatters() {
        let g = generators::star(6);
        let sizes = components_after_removal(&g, 0);
        assert_eq!(sizes, vec![1, 1, 1, 1, 1]);
    }
}
