//! Eccentricity and diameter estimation.
//!
//! The RK baseline \[30\] needs an upper bound on the *vertex diameter* (the
//! number of vertices on the longest shortest path) to size its sample via
//! the VC-dimension argument. For unweighted connected graphs the vertex
//! diameter equals `diam(G) + 1`, and `diam(G) <= 2 * ecc(v)` for every `v`,
//! giving a cheap 2-approximation from any single BFS. The double sweep
//! heuristic supplies a matching lower bound that is typically tight.

use super::traversal::{bfs_distances, UNREACHED};
use crate::{CsrGraph, Vertex};

/// Eccentricity of `v`: the maximum BFS distance from `v` to any reachable
/// vertex.
pub fn eccentricity(g: &CsrGraph, v: Vertex) -> u32 {
    bfs_distances(g, v).into_iter().filter(|&d| d != UNREACHED).max().unwrap_or(0)
}

/// Double-sweep diameter lower bound: BFS from `start`, then BFS again from
/// the farthest vertex found; returns the largest distance seen.
pub fn double_sweep_lower_bound(g: &CsrGraph, start: Vertex) -> u32 {
    let d1 = bfs_distances(g, start);
    let (far, _) = d1
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHED)
        .max_by_key(|&(_, &d)| d)
        .map(|(v, &d)| (v as Vertex, d))
        .unwrap_or((start, 0));
    eccentricity(g, far)
}

/// `(lower, upper)` bounds on the vertex diameter of a connected graph:
/// `lower = double_sweep + 1`, `upper = 2 * ecc(start) + 1`.
pub fn vertex_diameter_bounds(g: &CsrGraph, start: Vertex) -> (u32, u32) {
    let lo = double_sweep_lower_bound(g, start) + 1;
    let hi = 2 * eccentricity(g, start) + 1;
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_eccentricity() {
        let g = generators::path(7);
        assert_eq!(eccentricity(&g, 0), 6);
        assert_eq!(eccentricity(&g, 3), 3);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let g = generators::path(9);
        assert_eq!(double_sweep_lower_bound(&g, 4), 8);
    }

    #[test]
    fn double_sweep_exact_on_cycle() {
        let g = generators::cycle(10);
        assert_eq!(double_sweep_lower_bound(&g, 0), 5);
    }

    #[test]
    fn vertex_diameter_bounds_bracket_truth() {
        // Path of 6: diameter 5, vertex diameter 6.
        let g = generators::path(6);
        let (lo, hi) = vertex_diameter_bounds(&g, 2);
        assert!(lo <= 6 && 6 <= hi, "bounds ({lo}, {hi}) must bracket 6");
        // Double sweep from anywhere on a path finds the true diameter.
        assert_eq!(lo, 6);
    }

    #[test]
    fn star_bounds() {
        let g = generators::star(10);
        let (lo, hi) = vertex_diameter_bounds(&g, 0);
        assert_eq!(lo, 3); // leaf-centre-leaf
        assert!(hi >= 3);
    }
}
