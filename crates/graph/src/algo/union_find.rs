//! Disjoint-set forest with path halving and union by size.

/// Union-find over `0..n`, used by generators and incremental-connectivity
/// checks.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_size(3), 4);
    }

    #[test]
    fn empty_and_singleton() {
        let uf = UnionFind::new(0);
        assert_eq!(uf.num_components(), 0);
        let mut uf1 = UnionFind::new(1);
        assert_eq!(uf1.find(0), 0);
        assert_eq!(uf1.component_size(0), 1);
    }
}
