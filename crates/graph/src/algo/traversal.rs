//! Breadth- and depth-first traversal primitives.

use crate::{CsrGraph, Vertex};
use std::collections::VecDeque;

/// Sentinel distance for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS distances from `src`; unreachable vertices get [`UNREACHED`].
pub fn bfs_distances(g: &CsrGraph, src: Vertex) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.num_vertices()];
    bfs_distances_into(g, src, &mut dist);
    dist
}

/// BFS distances written into a caller-provided buffer (resized to `n`),
/// avoiding per-call allocation in hot loops.
pub fn bfs_distances_into(g: &CsrGraph, src: Vertex, dist: &mut Vec<u32>) {
    let n = g.num_vertices();
    dist.clear();
    dist.resize(n, UNREACHED);
    if n == 0 {
        return;
    }
    let mut queue = VecDeque::with_capacity(n.min(1024));
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
}

/// Vertices in BFS visitation order from `src` (only the reachable ones).
pub fn bfs_order(g: &CsrGraph, src: Vertex) -> Vec<Vertex> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    seen[src as usize] = true;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Vertices in DFS preorder from `src` (iterative; only reachable ones).
pub fn dfs_preorder(g: &CsrGraph, src: Vertex) -> Vec<Vertex> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![src];
    while let Some(u) = stack.pop() {
        if seen[u as usize] {
            continue;
        }
        seen[u as usize] = true;
        order.push(u);
        // Push in reverse so that the smallest neighbour is visited first.
        for &v in g.neighbors(u).iter().rev() {
            if !seen[v as usize] {
                stack.push(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_distances() {
        let g = generators::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_marked() {
        let g = crate::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn buffer_reuse_resets_state() {
        let g = generators::path(4);
        let mut buf = Vec::new();
        bfs_distances_into(&g, 0, &mut buf);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        bfs_distances_into(&g, 3, &mut buf);
        assert_eq!(buf, vec![3, 2, 1, 0]);
    }

    #[test]
    fn bfs_order_is_level_consistent() {
        let g = generators::star(5);
        let order = bfs_order(&g, 0);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn dfs_preorder_visits_all_reachable() {
        let g = generators::balanced_tree(2, 3);
        let order = dfs_preorder(&g, 0);
        assert_eq!(order.len(), g.num_vertices());
        assert_eq!(order[0], 0);
        // Preorder on the left-first tree: root then leftmost child.
        assert_eq!(order[1], 1);
    }
}
