//! Rectangular lattices (road-network stand-ins).

use crate::{CsrGraph, GraphBuilder, Vertex};

/// `rows x cols` 4-neighbour lattice; with `periodic = true` the lattice
/// wraps into a torus.
///
/// Vertex `(r, c)` has id `r * cols + c`. Grids approximate road networks —
/// the second application domain the paper's introduction motivates (Daly &
/// Haahr routing, traffic networks) — with large diameter and flat degree
/// distribution, the opposite regime from Barabási–Albert.
pub fn grid(rows: usize, cols: usize, periodic: bool) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as Vertex;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1)).expect("grid edge valid");
            } else if periodic && cols > 2 {
                b.add_edge(id(r, c), id(r, 0)).expect("torus edge valid");
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c)).expect("grid edge valid");
            } else if periodic && rows > 2 {
                b.add_edge(id(r, c), id(0, c)).expect("torus edge valid");
            }
        }
    }
    b.build().expect("grid edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn open_grid_edge_count() {
        let g = grid(4, 5, false);
        assert_eq!(g.num_vertices(), 20);
        // Horizontal: 4 * 4, vertical: 3 * 5.
        assert_eq!(g.num_edges(), 16 + 15);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn corner_and_interior_degrees() {
        let g = grid(3, 3, false);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // edge midpoint
        assert_eq!(g.degree(4), 4); // centre
    }

    #[test]
    fn torus_is_regular() {
        let g = grid(4, 5, true);
        for v in 0..20u32 {
            assert_eq!(g.degree(v), 4, "torus vertex {v} should have degree 4");
        }
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    fn degenerate_line() {
        let g = grid(1, 6, false);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(3), 2);
    }
}
