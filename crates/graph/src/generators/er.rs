//! Erdős–Rényi random graphs.

use crate::{CsrGraph, GraphBuilder, Vertex};
use rand::{Rng, RngExt};
use std::collections::HashSet;

/// `G(n, p)`: each of the `n(n-1)/2` possible edges appears independently
/// with probability `p`.
///
/// Uses geometric skipping (Batagelj–Brandes) so the running time is
/// `O(n + m)` rather than `O(n^2)`, which matters for the sparse graphs the
/// evaluation uses. May be disconnected; pass through
/// [`super::ensure_connected`] when the experiment requires connectivity.
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build().expect("empty graph is valid");
    }
    if p >= 1.0 {
        for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                b.add_edge(u, v).expect("complete-graph edges are valid");
            }
        }
        return b.build().expect("complete graph is valid");
    }

    // Iterate over the strictly-upper-triangular cells in row-major order,
    // jumping geometrically between successes.
    let log_q = (1.0 - p).ln();
    let (mut u, mut v) = (0usize, 0usize); // v is the column; v > u invariant kept below
    loop {
        let r: f64 = rng.random();
        // Number of cells skipped; r in [0,1): floor(ln(1-r')/ln(1-p)).
        let skip = ((1.0 - r).ln() / log_q).floor() as usize;
        v += skip + 1;
        while v >= n {
            u += 1;
            if u >= n - 1 {
                return b.build().expect("sampled edges are valid");
            }
            v = u + 1 + (v - n);
        }
        b.add_edge(u as Vertex, v as Vertex).expect("sampled edge in range");
    }
}

/// `G(n, m)`: exactly `m` distinct edges chosen uniformly among all pairs.
///
/// Rejection-samples pairs, which is efficient whenever `m` is at most a
/// constant fraction of `n(n-1)/2` (always true in our sparse workloads).
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_m, "m = {m} exceeds the {max_m} possible edges");
    let mut seen: HashSet<(Vertex, Vertex)> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.random_range(0..n) as Vertex;
        let v = rng.random_range(0..n) as Vertex;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1).expect("sampled edge in range");
        }
    }
    b.build().expect("sampled edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn gnp_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty = erdos_renyi_gnp(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi_gnp(10, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (n, p) = (400, 0.05);
        let g = erdos_renyi_gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 6.0 * sd,
            "edge count {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnm_exact_edge_count_and_simple() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = erdos_renyi_gnm(50, 200, &mut rng);
        assert_eq!(g.num_edges(), 200);
        // Simplicity is guaranteed by the builder; spot-check no self-loop.
        for (u, v, _) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn gnm_can_fill_complete_graph() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = erdos_renyi_gnm(8, 28, &mut rng);
        assert_eq!(g.num_edges(), 28);
    }

    #[test]
    fn tiny_n_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(erdos_renyi_gnp(0, 0.5, &mut rng).num_vertices(), 0);
        assert_eq!(erdos_renyi_gnp(1, 0.5, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi_gnm(1, 0, &mut rng).num_edges(), 0);
    }
}
