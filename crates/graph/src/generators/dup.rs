//! Duplication–divergence graphs: the standard generative model for
//! networks whose vertices copy each other's neighbourhoods.

use crate::{CsrGraph, GraphBuilder, Vertex};
use rand::{Rng, RngExt};

/// Duplication–divergence graph: starting from a triangle, each new vertex
/// picks a uniform random *anchor*, copies each of the anchor's edges
/// independently with probability `retain`, and falls back to a single edge
/// to the anchor itself when no edge was copied (which keeps the graph
/// connected).
///
/// This is the classic model for protein-interaction and social/co-purchase
/// networks built by replication: low-degree anchors are often copied
/// *whole*, leaving pairs with identical neighbourhoods (false twins), and
/// single-edge fallbacks leave pendant vertices — exactly the structural
/// redundancy real SNAP graphs carry and that uniform random models
/// (ER/BA/WS) cannot produce. Used by the evaluation suite as the stand-in
/// for duplication-heavy real datasets.
///
/// # Panics
/// If `n < 3` or `retain` is not a probability.
pub fn duplication_divergence<R: Rng + ?Sized>(n: usize, retain: f64, rng: &mut R) -> CsrGraph {
    assert!(n >= 3, "need at least the seed triangle (n >= 3)");
    assert!((0.0..=1.0).contains(&retain), "retain must be a probability");

    // Adjacency grown incrementally; the builder gets the final edge list.
    let mut adj: Vec<Vec<Vertex>> = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
    adj.reserve(n - 3);
    let mut copied: Vec<Vertex> = Vec::new();
    for new in 3..n as Vertex {
        let anchor = rng.random_range(0..new);
        copied.clear();
        for &w in &adj[anchor as usize] {
            if rng.random_bool(retain) {
                copied.push(w);
            }
        }
        if copied.is_empty() {
            copied.push(anchor);
        }
        for &w in &copied {
            adj[w as usize].push(new);
        }
        adj.push(copied.clone());
    }
    let mut b = GraphBuilder::with_capacity(n, adj.iter().map(Vec::len).sum::<usize>() / 2);
    for (v, nbrs) in adj.iter().enumerate() {
        for &w in nbrs {
            if (v as Vertex) < w {
                b.add_edge(v as Vertex, w).expect("duplication edge valid");
            }
        }
    }
    b.build().expect("duplication edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::{rngs::SmallRng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn connected_with_twins_and_pendants() {
        let mut rng = SmallRng::seed_from_u64(31);
        let n = 1500;
        let g = duplication_divergence(n, 0.5, &mut rng);
        assert!(algo::is_connected(&g));
        let pendants = (0..n as Vertex).filter(|&v| g.degree(v) == 1).count();
        assert!(pendants > 50, "expected pendant mass, got {pendants}");
        // Count false-twin classes: identical sorted neighbourhoods.
        let mut groups: HashMap<&[Vertex], usize> = HashMap::new();
        for v in 0..n as Vertex {
            *groups.entry(g.neighbors(v)).or_insert(0) += 1;
        }
        let twins: usize = groups.values().filter(|&&c| c >= 2).map(|&c| c - 1).sum();
        assert!(twins > 20, "expected twin classes, got {twins} collapsible vertices");
    }

    #[test]
    fn tiny_sizes_are_valid() {
        let mut rng = SmallRng::seed_from_u64(32);
        let g = duplication_divergence(3, 0.5, &mut rng);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "seed triangle")]
    fn rejects_too_small() {
        let mut rng = SmallRng::seed_from_u64(33);
        let _ = duplication_divergence(2, 0.5, &mut rng);
    }
}
