//! Planted-partition (stochastic block) graphs.

use crate::{generators::ensure_connected, CsrGraph, GraphBuilder, Vertex};
use rand::{Rng, RngExt};

/// Planted-partition graph: `blocks` groups of `per_block` vertices; each
/// intra-block pair is an edge with probability `p_in`, each inter-block
/// pair with probability `p_out`.
///
/// Models the community structure motivating the Girvan–Newman use case in
/// the paper's introduction (community "core" vertices are natural probe
/// vertices `r`). The result is post-processed to be connected (bridging
/// random components; see [`ensure_connected`]).
pub fn planted_partition<R: Rng + ?Sized>(
    blocks: usize,
    per_block: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n = blocks * per_block;
    let block_of = |v: usize| v / per_block;
    let mut b = GraphBuilder::new(n);
    // n is experiment-scale (tens of thousands at most); the O(n^2) pair scan
    // is acceptable here because p_out pairs dominate and the generator runs
    // once per experiment. A skip-sampling variant (as in `erdos_renyi_gnp`)
    // is used for the heavy inter-block region.
    for u in 0..n {
        // Intra-block pairs: dense, scan directly.
        let start = block_of(u) * per_block;
        for v in (u + 1)..(start + per_block).min(n) {
            if rng.random_bool(p_in) {
                b.add_edge(u as Vertex, v as Vertex).expect("intra edge valid");
            }
        }
    }
    // Inter-block pairs via geometric skipping over the (u, v) cells with
    // block(u) != block(v), u < v.
    if p_out > 0.0 {
        let log_q = (1.0 - p_out).ln();
        let mut cell: usize = 0; // linear index over all u < v pairs
        let total = n * (n - 1) / 2;
        // Map linear index -> (u, v) pair, skipping intra-block cells lazily.
        let unrank = |mut k: usize| -> (usize, usize) {
            // Row lengths are n-1, n-2, ...; find row u.
            let mut u = 0usize;
            let mut row = n - 1;
            while k >= row {
                k -= row;
                u += 1;
                row -= 1;
            }
            (u, u + 1 + k)
        };
        loop {
            if p_out >= 1.0 {
                break; // handled by the dense fallback below
            }
            let r: f64 = rng.random();
            let skip = ((1.0 - r).ln() / log_q).floor() as usize;
            cell = cell.saturating_add(skip).saturating_add(1);
            if cell > total {
                break;
            }
            let (u, v) = unrank(cell - 1);
            if block_of(u) != block_of(v) {
                b.add_edge(u as Vertex, v as Vertex).expect("inter edge valid");
            }
        }
        if p_out >= 1.0 {
            for u in 0..n {
                for v in (u + 1)..n {
                    if block_of(u) != block_of(v) {
                        b.add_edge(u as Vertex, v as Vertex).expect("inter edge valid");
                    }
                }
            }
        }
    }
    let g = b.build().expect("planted-partition edge list is valid");
    ensure_connected(g, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn communities_are_denser_inside() {
        let mut rng = SmallRng::seed_from_u64(31);
        let (blocks, per_block) = (4, 50);
        let g = planted_partition(blocks, per_block, 0.3, 0.01, &mut rng);
        let n = blocks * per_block;
        assert_eq!(g.num_vertices(), n);
        assert!(algo::is_connected(&g));

        let block_of = |v: Vertex| (v as usize) / per_block;
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v, _) in g.edges() {
            if block_of(u) == block_of(v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Expected intra ~ 4 * C(50,2) * 0.3 = 1470, inter ~ C(200,2)*0.75*0.01 ~ 149.
        assert!(intra > inter * 3, "intra {intra} should dominate inter {inter}");
    }

    #[test]
    fn zero_p_out_still_connected_via_bridges() {
        let mut rng = SmallRng::seed_from_u64(32);
        let g = planted_partition(3, 30, 0.5, 0.0, &mut rng);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn full_p_out_links_all_blocks() {
        let mut rng = SmallRng::seed_from_u64(33);
        let g = planted_partition(2, 5, 1.0, 1.0, &mut rng);
        assert_eq!(g.num_edges(), 45); // K_10
    }
}
