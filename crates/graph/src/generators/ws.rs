//! Watts–Strogatz small-world graphs.

use crate::{CsrGraph, GraphBuilder, Vertex};
use rand::{Rng, RngExt};
use std::collections::HashSet;

/// Watts–Strogatz small-world graph: a ring lattice where each vertex links
/// to its `k / 2` nearest neighbours on each side, with every edge rewired
/// (its far endpoint resampled uniformly) independently with probability
/// `beta`.
///
/// Rewiring never creates self-loops or duplicate edges; an edge whose
/// rewire target would collide keeps resampling (and is left in place if the
/// vertex is saturated). `beta = 0` yields the pure lattice, `beta = 1` an
/// ER-like graph with the same degree sum. May be disconnected for large
/// `beta`; combine with [`super::ensure_connected`] if needed.
///
/// # Panics
/// If `k` is odd, `k < 2`, or `k >= n`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> CsrGraph {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k >= 2 && k < n, "need 2 <= k < n (got k = {k}, n = {n})");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");

    let mut edges: HashSet<(Vertex, Vertex)> = HashSet::with_capacity(n * k / 2 * 2);
    let norm = |u: Vertex, v: Vertex| if u < v { (u, v) } else { (v, u) };
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            edges.insert(norm(u as Vertex, v as Vertex));
        }
    }

    // Rewire in a deterministic sweep over the original lattice edges.
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = ((u + j) % n) as Vertex;
            let u = u as Vertex;
            if !rng.random_bool(beta) {
                continue;
            }
            let key = norm(u, v);
            if !edges.contains(&key) {
                continue; // already rewired away by an earlier sweep step
            }
            // Try a bounded number of times to find a fresh endpoint; a
            // saturated vertex keeps its lattice edge.
            for _ in 0..32 {
                let w = rng.random_range(0..n) as Vertex;
                if w == u || edges.contains(&norm(u, w)) {
                    continue;
                }
                edges.remove(&key);
                edges.insert(norm(u, w));
                break;
            }
        }
    }

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v).expect("rewired edges are valid");
    }
    b.build().expect("WS edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn beta_zero_is_ring_lattice() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 20 * 2);
        for v in 0..20u32 {
            assert_eq!(g.degree(v), 4);
            assert!(g.has_edge(v, (v + 1) % 20));
            assert!(g.has_edge(v, (v + 2) % 20));
        }
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn edge_count_preserved_under_rewiring() {
        let mut rng = SmallRng::seed_from_u64(22);
        let g = watts_strogatz(100, 6, 0.3, &mut rng);
        assert_eq!(g.num_edges(), 100 * 3);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let mut rng = SmallRng::seed_from_u64(23);
        let lattice = watts_strogatz(400, 4, 0.0, &mut rng);
        let small_world = watts_strogatz(400, 4, 0.2, &mut rng);
        let d0 = algo::double_sweep_lower_bound(&lattice, 0);
        let d1 = algo::double_sweep_lower_bound(&small_world, 0);
        assert!(d1 < d0, "rewiring should shorten paths (lattice {d0}, small-world {d1})");
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn rejects_odd_k() {
        let mut rng = SmallRng::seed_from_u64(24);
        let _ = watts_strogatz(10, 3, 0.1, &mut rng);
    }
}
