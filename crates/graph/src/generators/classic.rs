//! Classic deterministic graphs with analytically known betweenness.
//!
//! These are used throughout the test suites as ground truth: the exact
//! betweenness of paths, stars, barbells, etc. has closed forms against which
//! both the exact Brandes implementation and the samplers are checked.

use crate::{CsrGraph, GraphBuilder, Vertex};

/// Path graph `0 - 1 - ... - n-1`.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as Vertex {
        b.add_edge(v - 1, v).expect("path edge valid");
    }
    b.build().expect("path is valid")
}

/// Cycle graph on `n >= 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 1..n as Vertex {
        b.add_edge(v - 1, v).expect("cycle edge valid");
    }
    b.add_edge(n as Vertex - 1, 0).expect("closing edge valid");
    b.build().expect("cycle is valid")
}

/// Star with centre `0` and `n - 1` leaves.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 1, "star needs at least 1 vertex");
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as Vertex {
        b.add_edge(0, v).expect("star edge valid");
    }
    b.build().expect("star is valid")
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n as Vertex {
        for v in (u + 1)..n as Vertex {
            b.add_edge(u, v).expect("complete edge valid");
        }
    }
    b.build().expect("complete graph is valid")
}

/// Complete bipartite graph `K_{a,b}`: part A is `0..a`, part B is `a..a+b`.
pub fn complete_bipartite(a: usize, b_size: usize) -> CsrGraph {
    let n = a + b_size;
    let mut b = GraphBuilder::with_capacity(n, a * b_size);
    for u in 0..a as Vertex {
        for v in a as Vertex..n as Vertex {
            b.add_edge(u, v).expect("bipartite edge valid");
        }
    }
    b.build().expect("bipartite graph is valid")
}

/// Wheel: cycle on vertices `1..n` plus hub `0` adjacent to all of them.
pub fn wheel(n: usize) -> CsrGraph {
    assert!(n >= 4, "wheel needs at least 4 vertices");
    let mut b = GraphBuilder::with_capacity(n, 2 * (n - 1));
    for v in 1..n as Vertex {
        b.add_edge(0, v).expect("spoke valid");
    }
    for v in 2..n as Vertex {
        b.add_edge(v - 1, v).expect("rim valid");
    }
    b.add_edge(n as Vertex - 1, 1).expect("rim closing edge valid");
    b.build().expect("wheel is valid")
}

/// Perfectly balanced rooted tree with branching factor `r` and height `h`
/// (height 0 is a single root). Vertices are numbered level by level.
pub fn balanced_tree(r: usize, h: usize) -> CsrGraph {
    assert!(r >= 1, "branching factor must be at least 1");
    // n = 1 + r + r^2 + ... + r^h
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..h {
        level *= r;
        n += level;
    }
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    // Parent of vertex v (v >= 1) is (v - 1) / r.
    for v in 1..n as Vertex {
        b.add_edge((v - 1) / r as Vertex, v).expect("tree edge valid");
    }
    b.build().expect("tree is valid")
}

/// Barbell: two `K_k` cliques joined by a path of `path_len` intermediate
/// vertices. `path_len = 0` joins the cliques by a single edge.
///
/// The path vertices are the canonical high-µ(r) probe: every inter-clique
/// shortest path crosses them, and removing one splits the graph into two
/// Θ(n) components — exactly the balanced-separator situation of Theorem 2.
pub fn barbell(k: usize, path_len: usize) -> CsrGraph {
    assert!(k >= 2, "cliques need at least 2 vertices");
    let n = 2 * k + path_len;
    let mut b = GraphBuilder::with_capacity(n, k * (k - 1) + path_len + 1);
    // Clique A: 0..k, clique B: k + path_len .. n, path: k .. k + path_len.
    for u in 0..k as Vertex {
        for v in (u + 1)..k as Vertex {
            b.add_edge(u, v).expect("clique A edge valid");
        }
    }
    let b_start = (k + path_len) as Vertex;
    for u in b_start..n as Vertex {
        for v in (u + 1)..n as Vertex {
            b.add_edge(u, v).expect("clique B edge valid");
        }
    }
    // Chain: last clique-A vertex -> path -> first clique-B vertex.
    let mut prev = (k - 1) as Vertex;
    for p in 0..path_len {
        let cur = (k + p) as Vertex;
        b.add_edge(prev, cur).expect("path edge valid");
        prev = cur;
    }
    b.add_edge(prev, b_start).expect("bridge edge valid");
    b.build().expect("barbell is valid")
}

/// Lollipop: a `K_k` clique with a pendant path of `path_len` vertices.
pub fn lollipop(k: usize, path_len: usize) -> CsrGraph {
    assert!(k >= 2, "clique needs at least 2 vertices");
    let n = k + path_len;
    let mut b = GraphBuilder::with_capacity(n, k * (k - 1) / 2 + path_len);
    for u in 0..k as Vertex {
        for v in (u + 1)..k as Vertex {
            b.add_edge(u, v).expect("clique edge valid");
        }
    }
    let mut prev = (k - 1) as Vertex;
    for p in 0..path_len {
        let cur = (k + p) as Vertex;
        b.add_edge(prev, cur).expect("path edge valid");
        prev = cur;
    }
    b.build().expect("lollipop is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        for v in 0..7u32 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn star_degrees() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6u32 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        for v in 0..6u32 {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.num_edges(), 6);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn wheel_structure() {
        let g = wheel(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6u32 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn balanced_tree_sizes() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.degree(0), 2);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4, 2);
        assert_eq!(g.num_vertices(), 10);
        // 2 * C(4,2) cliques + 3 chain edges.
        assert_eq!(g.num_edges(), 12 + 3);
        assert!(algo::is_connected(&g));
        // Removing a path vertex disconnects the graph.
        let comps = algo::components_after_removal(&g, 4);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(5, 3);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 10 + 3);
        assert_eq!(g.degree(7), 1);
    }
}
