//! The balanced-separator family realising Theorem 2's hypothesis.

use crate::{CsrGraph, GraphBuilder, Vertex};
use rand::{Rng, RngExt};

/// A graph built by [`hub_separator`] together with its distinguished hub.
#[derive(Debug, Clone)]
pub struct HubSeparator {
    /// The generated graph.
    pub graph: CsrGraph,
    /// The hub vertex `r`; removing it splits the graph into exactly
    /// `clusters` components.
    pub hub: Vertex,
    /// Vertex ranges (start, end) of each cluster, hub excluded.
    pub cluster_ranges: Vec<(Vertex, Vertex)>,
}

/// Builds the *balanced vertex separator* family of Theorem 2: `clusters`
/// internally connected ER(`cluster_size`, `p_in`) clusters whose only
/// inter-cluster connection is a single hub vertex `r` (the last vertex id),
/// attached to `links_per_cluster` distinct vertices inside each cluster.
///
/// Removing the hub leaves exactly `clusters` components of `cluster_size`
/// vertices each, so every `V_i = (clusters - 1) * cluster_size = Θ(n)`,
/// which is precisely the hypothesis under which the paper proves `µ(r)` is
/// a constant (≤ 1 + 1/K with K = 1 for equal sizes, i.e. µ(r) ≤ 2).
///
/// Cluster-internal connectivity is guaranteed by overlaying a Hamiltonian
/// path on each cluster before the ER edges.
pub fn hub_separator<R: Rng + ?Sized>(
    clusters: usize,
    cluster_size: usize,
    p_in: f64,
    links_per_cluster: usize,
    rng: &mut R,
) -> HubSeparator {
    assert!(clusters >= 2, "need at least 2 clusters");
    assert!(cluster_size >= 1, "clusters must be non-empty");
    assert!(
        links_per_cluster >= 1 && links_per_cluster <= cluster_size,
        "links_per_cluster must be in 1..=cluster_size"
    );
    let n = clusters * cluster_size + 1;
    let hub = (n - 1) as Vertex;
    let mut b = GraphBuilder::new(n);
    let mut ranges = Vec::with_capacity(clusters);
    for c in 0..clusters {
        let start = (c * cluster_size) as Vertex;
        let end = start + cluster_size as Vertex;
        ranges.push((start, end));
        // Hamiltonian path keeps the cluster connected.
        for v in (start + 1)..end {
            b.add_edge(v - 1, v).expect("cluster path edge valid");
        }
        // ER overlay inside the cluster.
        for u in start..end {
            for v in (u + 1)..end {
                if v == u + 1 {
                    continue; // already in the path
                }
                if rng.random_bool(p_in) {
                    b.add_edge(u, v).expect("cluster ER edge valid");
                }
            }
        }
        // Hub attachments: `links_per_cluster` distinct cluster vertices.
        let mut chosen: Vec<Vertex> = Vec::with_capacity(links_per_cluster);
        while chosen.len() < links_per_cluster {
            let v = start + rng.random_range(0..cluster_size) as Vertex;
            if !chosen.contains(&v) {
                chosen.push(v);
                b.add_edge(hub, v).expect("hub link valid");
            }
        }
    }
    HubSeparator {
        graph: b.build().expect("separator edge list is valid"),
        hub,
        cluster_ranges: ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn removing_hub_splits_into_clusters() {
        let mut rng = SmallRng::seed_from_u64(41);
        let hs = hub_separator(4, 25, 0.1, 2, &mut rng);
        assert!(algo::is_connected(&hs.graph));
        let sizes = algo::components_after_removal(&hs.graph, hs.hub);
        assert_eq!(sizes.len(), 4);
        for s in sizes {
            assert_eq!(s, 25);
        }
    }

    #[test]
    fn hub_degree_matches_links() {
        let mut rng = SmallRng::seed_from_u64(42);
        let hs = hub_separator(3, 10, 0.0, 4, &mut rng);
        assert_eq!(hs.graph.degree(hs.hub), 12);
    }

    #[test]
    fn cluster_ranges_partition_vertices() {
        let mut rng = SmallRng::seed_from_u64(43);
        let hs = hub_separator(5, 8, 0.2, 1, &mut rng);
        let mut covered = vec![false; hs.graph.num_vertices()];
        for &(s, e) in &hs.cluster_ranges {
            for v in s..e {
                assert!(!covered[v as usize]);
                covered[v as usize] = true;
            }
        }
        covered[hs.hub as usize] = true;
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn no_direct_inter_cluster_edges() {
        let mut rng = SmallRng::seed_from_u64(44);
        let hs = hub_separator(3, 20, 0.3, 3, &mut rng);
        let cluster_of = |v: Vertex| -> Option<usize> {
            hs.cluster_ranges.iter().position(|&(s, e)| (s..e).contains(&v))
        };
        for (u, v, _) in hs.graph.edges() {
            if u == hs.hub || v == hs.hub {
                continue;
            }
            assert_eq!(cluster_of(u), cluster_of(v), "edge ({u},{v}) crosses clusters");
        }
    }
}
