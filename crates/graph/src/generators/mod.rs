//! Synthetic graph families used by the evaluation harness.
//!
//! Real-world SNAP datasets are not available offline, so the experiments
//! substitute generated families whose shortest-path structure matches the
//! regimes the paper discusses (see DESIGN.md "Substitutions"):
//!
//! - [`barabasi_albert`] — scale-free graphs with power-law betweenness
//!   (the paper cites Barabási–Albert \[3\] and Barthelemy \[4\]), and
//!   [`preferential_attachment_mixed`] — the same growth process with a
//!   realistic degree-1 mass (real SNAP graphs are 15–40% pendant
//!   vertices, which fixed-`m` BA forbids);
//! - [`erdos_renyi_gnp`] / [`erdos_renyi_gnm`] — homogeneous random graphs;
//! - [`watts_strogatz`] — small-world ring lattices;
//! - [`grid`] — road-network-like lattices;
//! - classic graphs ([`path`], [`star`], [`barbell`], …) with analytically
//!   known betweenness, used heavily in tests;
//! - [`planted_partition`] — community structure (Girvan–Newman motivation);
//! - [`duplication_divergence`] — replication-built networks carrying the
//!   twin (identical-neighbourhood) redundancy of protein/co-purchase data;
//! - [`hub_separator`] — the balanced-vertex-separator family realising the
//!   hypothesis of Theorem 2 (µ(r) constant).
//!
//! Every generator takes a caller-supplied RNG; experiments derive all graphs
//! from fixed seeds.

mod ba;
mod classic;
mod community;
mod dup;
mod er;
mod grid;
mod separator;
mod ws;

pub use ba::{barabasi_albert, preferential_attachment_mixed};
pub use classic::{
    balanced_tree, barbell, complete, complete_bipartite, cycle, lollipop, path, star, wheel,
};
pub use community::planted_partition;
pub use dup::duplication_divergence;
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use grid::grid;
pub use separator::{hub_separator, HubSeparator};
pub use ws::watts_strogatz;

use crate::{algo, CsrGraph, GraphBuilder, Vertex};
use rand::{Rng, RngExt};

/// Attaches independent `Uniform(lo, hi)` weights to every edge of `g`
/// (same weight in both directions). Used by the weighted experiments (T5).
pub fn assign_uniform_weights<R: Rng + ?Sized>(
    g: &CsrGraph,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> CsrGraph {
    assert!(lo > 0.0 && hi >= lo, "weights must be positive with lo <= hi");
    g.map_weights(|_, _| rng.random_range(lo..=hi))
        .expect("uniform weights in (0, inf) are always valid")
}

/// Makes `g` connected by linking consecutive components with a random edge.
///
/// The paper assumes connected graphs; sparse ER/WS draws occasionally come
/// out disconnected. Augmenting with `c - 1` bridge edges (for `c`
/// components) perturbs the degree distribution negligibly and is standard
/// practice in BC evaluation setups. Returns `g` unchanged when already
/// connected.
pub fn ensure_connected<R: Rng + ?Sized>(g: CsrGraph, rng: &mut R) -> CsrGraph {
    let comps = algo::connected_components(&g);
    if comps.count <= 1 {
        return g;
    }
    // Collect one random representative list per component.
    let n = g.num_vertices();
    let mut members: Vec<Vec<Vertex>> = vec![Vec::new(); comps.count];
    for v in 0..n {
        members[comps.labels[v] as usize].push(v as Vertex);
    }
    let mut b = GraphBuilder::with_capacity(n, g.num_edges() + comps.count - 1);
    for (u, v, _) in g.edges() {
        b.add_edge(u, v).expect("existing edges are valid");
    }
    for i in 1..comps.count {
        let a = members[i - 1][rng.random_range(0..members[i - 1].len())];
        let c = members[i][rng.random_range(0..members[i].len())];
        b.add_edge(a, c).expect("bridge endpoints are valid");
    }
    b.build().expect("augmented edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn ensure_connected_adds_bridges() {
        // Two disjoint triangles.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        assert!(!algo::is_connected(&g));
        let mut rng = SmallRng::seed_from_u64(1);
        let g2 = ensure_connected(g, &mut rng);
        assert!(algo::is_connected(&g2));
        assert_eq!(g2.num_edges(), 7);
    }

    #[test]
    fn ensure_connected_noop_when_connected() {
        let g = path(5);
        let mut rng = SmallRng::seed_from_u64(1);
        let g2 = ensure_connected(g.clone(), &mut rng);
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn uniform_weights_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = assign_uniform_weights(&complete(10), 1.0, 10.0, &mut rng);
        assert!(g.is_weighted());
        for (_, _, w) in g.edges() {
            assert!((1.0..=10.0).contains(&w));
        }
    }
}
