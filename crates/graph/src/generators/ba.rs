//! Barabási–Albert preferential attachment.

use crate::{CsrGraph, GraphBuilder, Vertex};
use rand::{Rng, RngExt};

/// Barabási–Albert scale-free graph: starts from a star on `m + 1` vertices
/// and attaches each subsequent vertex to `m` distinct existing vertices
/// chosen with probability proportional to their current degree.
///
/// Connected by construction. Produces the heavy-tailed betweenness
/// distributions typical of social networks (paper refs \[3, 4\]), making it
/// the primary stand-in for SNAP social graphs in the evaluation.
///
/// # Panics
/// If `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    assert!(m >= 1, "attachment count m must be at least 1");
    assert!(n > m, "need n > m (got n = {n}, m = {m})");

    let mut b = GraphBuilder::with_capacity(n, m + (n - m - 1) * m);
    // `endpoints` holds one entry per edge endpoint, so sampling a uniform
    // element is degree-proportional sampling.
    let mut endpoints: Vec<Vertex> = Vec::with_capacity(2 * (m + (n - m - 1) * m));

    // Seed: star centred at vertex 0 over vertices 0..=m.
    for v in 1..=m as Vertex {
        b.add_edge(0, v).expect("seed star edges are valid");
        endpoints.push(0);
        endpoints.push(v);
    }

    let mut chosen: Vec<Vertex> = Vec::with_capacity(m);
    for new in (m + 1)..n {
        chosen.clear();
        while chosen.len() < m {
            let pick = endpoints[rng.random_range(0..endpoints.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            b.add_edge(new as Vertex, t).expect("attachment edges are valid");
            endpoints.push(new as Vertex);
            endpoints.push(t);
        }
    }
    b.build().expect("BA edge list is valid")
}

/// Preferential attachment with a *mixed* attachment count: each arriving
/// vertex attaches to `m_small` existing vertices with probability
/// `p_small`, and to `m_large` otherwise (both degree-proportionally, as in
/// [`barabasi_albert`]).
///
/// With `m_small = 1` this reproduces the heavy degree-1 mass of real web,
/// co-purchase, and collaboration networks (15–40% pendant vertices in the
/// SNAP datasets the paper evaluates on) that the fixed-`m` model
/// structurally forbids (its minimum degree is `m`). Connected by
/// construction.
///
/// # Panics
/// If `m_small == 0`, `m_small > m_large`, `n <= m_large`, or `p_small` is
/// not a probability.
pub fn preferential_attachment_mixed<R: Rng + ?Sized>(
    n: usize,
    m_small: usize,
    m_large: usize,
    p_small: f64,
    rng: &mut R,
) -> CsrGraph {
    assert!(m_small >= 1, "attachment count m_small must be at least 1");
    assert!(m_small <= m_large, "need m_small <= m_large");
    assert!(n > m_large, "need n > m_large (got n = {n}, m_large = {m_large})");
    assert!((0.0..=1.0).contains(&p_small), "p_small must be a probability");

    let mut b = GraphBuilder::with_capacity(n, m_large + (n - m_large - 1) * m_large);
    let mut endpoints: Vec<Vertex> =
        Vec::with_capacity(2 * (m_large + (n - m_large - 1) * m_large));
    for v in 1..=m_large as Vertex {
        b.add_edge(0, v).expect("seed star edges are valid");
        endpoints.push(0);
        endpoints.push(v);
    }
    let mut chosen: Vec<Vertex> = Vec::with_capacity(m_large);
    for new in (m_large + 1)..n {
        let m = if rng.random_bool(p_small) { m_small } else { m_large };
        chosen.clear();
        while chosen.len() < m {
            let pick = endpoints[rng.random_range(0..endpoints.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            b.add_edge(new as Vertex, t).expect("attachment edges are valid");
            endpoints.push(new as Vertex);
            endpoints.push(t);
        }
    }
    b.build().expect("mixed-PA edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn mixed_attachment_has_pendant_mass_and_stays_connected() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = preferential_attachment_mixed(2000, 1, 4, 0.45, &mut rng);
        assert!(algo::is_connected(&g));
        let pendants = (0..2000).filter(|&v| g.degree(v) == 1).count();
        // Roughly p_small * n arrivals attach once and mostly stay degree-1.
        assert!(pendants > 400, "expected heavy pendant mass, got {pendants}");
        let max_deg = (0..2000).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg > 40, "expected a hub, max degree was {max_deg}");
    }

    #[test]
    fn mixed_attachment_with_equal_ms_is_plain_ba_shape() {
        let mut rng = SmallRng::seed_from_u64(22);
        let g = preferential_attachment_mixed(300, 3, 3, 0.5, &mut rng);
        assert_eq!(g.num_edges(), 3 + (300 - 3 - 1) * 3);
        let min_deg = (0..300).map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg >= 3);
    }

    #[test]
    fn edge_count_is_exact() {
        let mut rng = SmallRng::seed_from_u64(11);
        let (n, m) = (500, 4);
        let g = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.num_vertices(), n);
        assert_eq!(g.num_edges(), m + (n - m - 1) * m);
    }

    #[test]
    fn always_connected() {
        let mut rng = SmallRng::seed_from_u64(12);
        for &(n, m) in &[(10, 1), (100, 2), (300, 5)] {
            assert!(algo::is_connected(&barabasi_albert(n, m, &mut rng)));
        }
    }

    #[test]
    fn minimum_degree_is_m() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = barabasi_albert(200, 3, &mut rng);
        let min_deg = (0..200).map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg >= 3);
    }

    #[test]
    fn hubs_emerge() {
        let mut rng = SmallRng::seed_from_u64(14);
        let g = barabasi_albert(2000, 2, &mut rng);
        let max_deg = (0..2000).map(|v| g.degree(v)).max().unwrap();
        // A scale-free graph of this size reliably grows a hub far above the
        // mean degree of ~4.
        assert!(max_deg > 40, "expected a hub, max degree was {max_deg}");
    }

    #[test]
    #[should_panic(expected = "n > m")]
    fn rejects_degenerate_sizes() {
        let mut rng = SmallRng::seed_from_u64(15);
        let _ = barabasi_albert(3, 3, &mut rng);
    }
}
