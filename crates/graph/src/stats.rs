//! Degree statistics used by the dataset-summary table (T1).

use crate::CsrGraph;

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2m / n`).
    pub mean: f64,
    /// Sample standard deviation of degrees.
    pub std_dev: f64,
}

impl DegreeStats {
    /// Computes degree statistics for `g`. Returns all-zero stats for the
    /// empty graph.
    pub fn of(g: &CsrGraph) -> DegreeStats {
        let n = g.num_vertices();
        if n == 0 {
            return DegreeStats { min: 0, max: 0, mean: 0.0, std_dev: 0.0 };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut sum_sq = 0f64;
        for v in 0..n as u32 {
            let d = g.degree(v);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            sum_sq += (d * d) as f64;
        }
        let mean = sum as f64 / n as f64;
        let var = (sum_sq / n as f64 - mean * mean).max(0.0);
        DegreeStats { min, max, mean, std_dev: var.sqrt() }
    }
}

/// Histogram of degrees: `hist[d]` is the number of vertices with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let max_d = (0..n as u32).map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_d + 1];
    for v in 0..n as u32 {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_star() {
        let s = DegreeStats::of(&generators::star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_regular_graph_have_zero_std() {
        let s = DegreeStats::of(&generators::cycle(9));
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = generators::barbell(4, 2);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), g.num_vertices());
        // Path interior vertices have degree 2.
        assert!(h[2] >= 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::CsrGraph::from_edges(0, &[]).unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s, DegreeStats { min: 0, max: 0, mean: 0.0, std_dev: 0.0 });
        assert_eq!(degree_histogram(&g), vec![0]);
    }
}
