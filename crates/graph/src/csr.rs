//! Immutable compressed-sparse-row adjacency storage.

use crate::{GraphBuilder, GraphError, Vertex};

/// An immutable, undirected graph in compressed-sparse-row form.
///
/// Each undirected edge `{u, v}` is stored twice (once in each endpoint's
/// adjacency slice); adjacency slices are sorted by target, enabling
/// `O(log deg)` membership tests. Weights, when present, are stored parallel
/// to the targets so that `neighbors` and `neighbor_weights` zip directly.
///
/// Construction goes through [`GraphBuilder`], which enforces the paper's
/// structural assumptions (no self-loops, no multi-edges, positive weights).
///
/// # Compact index invariants
///
/// The index is deliberately *compact*: offsets are `u32` (not `usize`), so
/// the per-pass streaming footprint of the SPD kernels is 4 bytes per
/// offset load beside the 4-byte vertex ids — half of what `usize` offsets
/// cost on 64-bit hosts, on the arrays every traversal streams end to end.
/// This caps the doubled edge-endpoint count `2m` at `u32::MAX`;
/// [`GraphBuilder::build`] checks the bound and refuses larger graphs with
/// [`GraphError::TooManyEdges`](crate::GraphError::TooManyEdges) rather than
/// silently truncating (≈2.1 billion undirected edges — beyond any graph
/// this suite targets). A prebuilt [`CsrGraph::degrees`] array is stored
/// alongside, so frontier-size heuristics (the hybrid BFS α/β switch) read
/// one `u32` per vertex instead of two offset loads. Invariants:
///
/// - `offsets.len() == n + 1`, `offsets[0] == 0`, nondecreasing, and
///   `offsets[n] as usize == targets.len() == 2m <= u32::MAX`;
/// - `degrees[v] == offsets[v + 1] - offsets[v]` for every `v`;
/// - every entry of `targets` is a valid vertex id `< n`.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    pub(crate) offsets: Box<[u32]>,
    pub(crate) degrees: Box<[u32]>,
    pub(crate) targets: Box<[Vertex]>,
    pub(crate) weights: Option<Box<[f64]>>,
    pub(crate) num_edges: usize,
}

impl CsrGraph {
    /// Builds an unweighted graph from `n` vertices and an undirected edge list.
    ///
    /// Convenience wrapper over [`GraphBuilder`]; see it for validation rules.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        b.build()
    }

    /// Builds a weighted graph from `n` vertices and `(u, v, w)` triples.
    pub fn from_weighted_edges(
        n: usize,
        edges: &[(Vertex, Vertex, f64)],
    ) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in edges {
            b.add_weighted_edge(u, v, w)?;
        }
        b.build()
    }

    /// Number of vertices `n = |V(G)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E(G)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether edge weights are attached.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Degree of `v` (one load from the prebuilt degree array).
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Sorted adjacency slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Weights parallel to [`CsrGraph::neighbors`], if the graph is weighted.
    #[inline]
    pub fn neighbor_weights(&self, v: Vertex) -> Option<&[f64]> {
        let w = self.weights.as_deref()?;
        let v = v as usize;
        Some(&w[self.offsets[v] as usize..self.offsets[v + 1] as usize])
    }

    /// Iterator over `(neighbor, weight)` pairs; weight defaults to `1.0`
    /// on unweighted graphs so weighted algorithms can run uniformly.
    pub fn neighbors_weighted(&self, v: Vertex) -> impl Iterator<Item = (Vertex, f64)> + '_ {
        let nbrs = self.neighbors(v);
        let ws = self.neighbor_weights(v);
        nbrs.iter().enumerate().map(move |(i, &t)| {
            let w = ws.map_or(1.0, |w| w[i]);
            (t, w)
        })
    }

    /// `O(log deg(u))` undirected adjacency test.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        if u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of edge `{u, v}` (1.0 on unweighted graphs), or `None` if absent.
    pub fn edge_weight(&self, u: Vertex, v: Vertex) -> Option<f64> {
        if u as usize >= self.num_vertices() {
            return None;
        }
        let idx = self.neighbors(u).binary_search(&v).ok()?;
        Some(match &self.weights {
            Some(w) => w[self.offsets[u as usize] as usize + idx],
            None => 1.0,
        })
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.num_vertices() as Vertex
    }

    /// Iterator over each undirected edge exactly once, as `(u, v, w)` with
    /// `u < v` (`w = 1.0` when unweighted).
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter { g: self, u: 0, i: 0 }
    }

    /// Sum of all degrees (`2m`).
    #[inline]
    pub fn degree_sum(&self) -> usize {
        self.targets.len()
    }

    /// Raw compact CSR view `(offsets, targets)` for kernel-style loops.
    ///
    /// `offsets` has length `n + 1` and the adjacency of `v` is
    /// `targets[offsets[v] as usize..offsets[v + 1] as usize]`. Offsets are
    /// `u32` by the compact-index invariant (see the type docs), so per-edge
    /// loops stream 4-byte loads for both halves of the index. Hoisting the
    /// slices once lets tight per-edge loops (the SPD kernels) avoid
    /// re-deriving the slice per vertex; for everything else prefer
    /// [`CsrGraph::neighbors`].
    #[inline]
    pub fn csr(&self) -> (&[u32], &[Vertex]) {
        (&self.offsets, &self.targets)
    }

    /// Prebuilt per-vertex degrees (`degrees()[v] == degree(v)`), for loops
    /// that tally degree sums without touching two offset entries per vertex
    /// (the hybrid-BFS frontier-edge heuristic).
    #[inline]
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0) as usize
    }

    /// Returns a copy of this graph with the given per-edge weight function
    /// applied; `f` receives each undirected edge `(u, v)` with `u < v` and
    /// must return a strictly positive, finite weight.
    pub fn map_weights(
        &self,
        mut f: impl FnMut(Vertex, Vertex) -> f64,
    ) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(self.num_vertices());
        for (u, v, _) in self.edges() {
            b.add_weighted_edge(u, v, f(u, v))?;
        }
        b.build()
    }

    /// Returns the unweighted skeleton of this graph (drops weights).
    pub fn unweighted(&self) -> Self {
        CsrGraph {
            offsets: self.offsets.clone(),
            degrees: self.degrees.clone(),
            targets: self.targets.clone(),
            weights: None,
            num_edges: self.num_edges,
        }
    }
}

impl std::fmt::Display for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CsrGraph(n={}, m={}{})",
            self.num_vertices(),
            self.num_edges(),
            if self.is_weighted() { ", weighted" } else { "" }
        )
    }
}

/// Iterator yielding each undirected edge once; see [`CsrGraph::edges`].
pub struct EdgeIter<'a> {
    g: &'a CsrGraph,
    u: usize,
    i: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (Vertex, Vertex, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.g.num_vertices();
        while self.u < n {
            let end = self.g.offsets[self.u + 1] as usize;
            while self.g.offsets[self.u] as usize + self.i < end {
                let pos = self.g.offsets[self.u] as usize + self.i;
                self.i += 1;
                let v = self.g.targets[pos];
                if (self.u as Vertex) < v {
                    let w = self.g.weights.as_ref().map_or(1.0, |ws| ws[pos]);
                    return Some((self.u as Vertex, v, w));
                }
            }
            self.u += 1;
            self.i = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree_sum(), 6);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = CsrGraph::from_edges(5, &[(4, 0), (2, 0), (0, 3), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(4), 1);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let es: Vec<_> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn weighted_graph_roundtrip() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 0.5)]).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
        assert_eq!(g.edge_weight(1, 0), Some(2.5));
        assert_eq!(g.edge_weight(2, 1), Some(0.5));
        assert_eq!(g.edge_weight(0, 2), None);
    }

    #[test]
    fn unweighted_edge_weight_defaults_to_one() {
        let g = triangle();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        let pairs: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(pairs, vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn map_weights_and_unweighted_skeleton() {
        let g = triangle();
        let w = g.map_weights(|u, v| (u + v + 1) as f64).unwrap();
        assert_eq!(w.edge_weight(0, 1), Some(2.0));
        assert_eq!(w.edge_weight(1, 2), Some(4.0));
        let back = w.unweighted();
        assert!(!back.is_weighted());
        assert_eq!(back.num_edges(), 3);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
        let g1 = CsrGraph::from_edges(1, &[]).unwrap();
        assert_eq!(g1.num_vertices(), 1);
        assert_eq!(g1.degree(0), 0);
    }

    #[test]
    fn raw_csr_view_matches_neighbors() {
        let g = CsrGraph::from_edges(5, &[(4, 0), (2, 0), (0, 3), (0, 1)]).unwrap();
        let (offsets, targets) = g.csr();
        assert_eq!(offsets.len(), 6);
        for v in 0..5u32 {
            assert_eq!(
                &targets[offsets[v as usize] as usize..offsets[v as usize + 1] as usize],
                g.neighbors(v),
                "vertex {v}"
            );
        }
        assert_eq!(g.max_degree(), 4);
        assert_eq!(CsrGraph::from_edges(0, &[]).unwrap().max_degree(), 0);
        assert_eq!(g.degrees(), &[4, 1, 1, 1, 1]);
        assert_eq!(*offsets.last().unwrap() as usize, targets.len());
    }

    #[test]
    fn display_summary() {
        let g = triangle();
        assert_eq!(format!("{g}"), "CsrGraph(n=3, m=3)");
        let w = g.map_weights(|_, _| 1.0).unwrap();
        assert_eq!(format!("{w}"), "CsrGraph(n=3, m=3, weighted)");
    }
}
