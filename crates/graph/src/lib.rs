//! # mhbc-graph
//!
//! Compact undirected graphs for the `mhbc` workspace.
//!
//! The paper (Chehreghani et al., EDBT 2019) assumes *undirected, connected,
//! loop-free graphs without multi-edges*, optionally weighted with positive
//! weights (§2). This crate provides:
//!
//! - [`CsrGraph`] — an immutable compressed-sparse-row adjacency structure,
//!   optionally carrying positive edge weights;
//! - [`GraphBuilder`] — a validating builder (rejects self-loops, out-of-range
//!   endpoints, inconsistent duplicate weights);
//! - [`generators`] — the synthetic families used by the evaluation harness
//!   (Erdős–Rényi, Barabási–Albert, Watts–Strogatz, grids, classic graphs,
//!   planted communities, and the balanced-separator family of Theorem 2);
//! - [`algo`] — traversals, connected components, and diameter estimation;
//! - [`reduce`] — preprocessing for the samplers: degree-1 pruning with
//!   exact betweenness corrections, twin collapsing into weighted
//!   super-vertices, and BFS relabelling for cache locality;
//! - [`io`] — whitespace-separated edge-list reading/writing.
//!
//! Vertices are dense `u32` indices in `0..n`. All random generators take a
//! caller-supplied [`rand::Rng`] so every experiment is reproducible from a
//! seed.
//!
//! ```
//! use mhbc_graph::{generators, GraphBuilder};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let g = generators::barabasi_albert(1000, 3, &mut rng);
//! assert_eq!(g.num_vertices(), 1000);
//! assert!(mhbc_graph::algo::is_connected(&g));
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1).unwrap();
//! b.add_edge(1, 2).unwrap();
//! let path = b.build().unwrap();
//! assert_eq!(path.degree(1), 2);
//! ```

pub mod algo;
mod bitset;
mod builder;
mod csr;
pub mod generators;
pub mod io;
pub mod reduce;
mod stats;

pub use bitset::VisitBitset;
pub use builder::GraphBuilder;
pub use csr::{CsrGraph, EdgeIter};
pub use stats::{degree_histogram, DegreeStats};

/// Dense vertex identifier. Graphs are limited to `u32::MAX - 1` vertices,
/// which comfortably covers laptop-scale experiments while halving adjacency
/// memory versus `usize` indices.
pub type Vertex = u32;

/// Errors produced when constructing or parsing graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    VertexOutOfRange { vertex: Vertex, num_vertices: usize },
    /// Self-loops are rejected (the paper assumes loop-free graphs).
    SelfLoop { vertex: Vertex },
    /// The same undirected edge was added twice with different weights.
    InconsistentDuplicate { u: Vertex, v: Vertex, w1: f64, w2: f64 },
    /// Weighted and unweighted `add_edge` calls were mixed on one builder.
    MixedWeightedness,
    /// Edge weights must be strictly positive and finite (§2.1).
    InvalidWeight { u: Vertex, v: Vertex, weight: f64 },
    /// More than `u32::MAX - 1` vertices were requested.
    TooManyVertices { requested: usize },
    /// The doubled edge-endpoint count `2m` would overflow the compact
    /// `u32` CSR offsets (see [`CsrGraph`]'s compact-index invariants).
    TooManyEdges { edges: usize },
    /// An operation that requires a connected graph was given a disconnected one.
    Disconnected,
    /// Edge-list parsing failed.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range for graph with {num_vertices} vertices")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::InconsistentDuplicate { u, v, w1, w2 } => {
                write!(f, "edge ({u},{v}) added twice with different weights {w1} and {w2}")
            }
            GraphError::MixedWeightedness => {
                write!(f, "cannot mix weighted and unweighted edges in one builder")
            }
            GraphError::InvalidWeight { u, v, weight } => {
                write!(f, "edge ({u},{v}) has non-positive or non-finite weight {weight}")
            }
            GraphError::TooManyVertices { requested } => {
                write!(f, "{requested} vertices exceed the u32 vertex-id space")
            }
            GraphError::TooManyEdges { edges } => {
                write!(f, "{edges} edges exceed the compact u32 CSR offset space (2m > u32::MAX)")
            }
            GraphError::Disconnected => write!(f, "operation requires a connected graph"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}
