//! Property-based tests for the graph substrate.

use mhbc_graph::{algo, generators, CsrGraph, GraphBuilder, Vertex};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

/// Strategy: arbitrary simple edge list over `n` vertices.
fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(Vertex, Vertex)>)> {
    (2usize..=max_n).prop_flat_map(move |n| {
        let edge = (0..n as Vertex, 0..n as Vertex).prop_filter("no self-loop", |(u, v)| u != v);
        (Just(n), proptest::collection::vec(edge, 0..=max_m))
    })
}

proptest! {
    /// CSR invariants hold for arbitrary edge lists: sorted adjacency,
    /// symmetric edges, degree sum = 2m, no self-loops or duplicates.
    #[test]
    fn csr_invariants((n, edges) in arb_edges(40, 200)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build().unwrap();

        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(g.degree_sum(), 2 * g.num_edges());
        for v in 0..n as Vertex {
            let nbrs = g.neighbors(v);
            // Sorted strictly (no duplicates), no self-loop.
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &u in nbrs {
                prop_assert_ne!(u, v);
                prop_assert!(g.has_edge(u, v), "symmetry violated for ({}, {})", u, v);
            }
        }
    }

    /// Every edge added is present, and nothing else is.
    #[test]
    fn membership_matches_input((n, edges) in arb_edges(25, 80)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build().unwrap();
        use std::collections::HashSet;
        let set: HashSet<(Vertex, Vertex)> =
            edges.iter().map(|&(u, v)| if u < v { (u, v) } else { (v, u) }).collect();
        prop_assert_eq!(g.num_edges(), set.len());
        for u in 0..n as Vertex {
            for v in 0..n as Vertex {
                let expect = u != v && set.contains(&if u < v { (u, v) } else { (v, u) });
                prop_assert_eq!(g.has_edge(u, v), expect);
            }
        }
    }

    /// Connected components partition the vertex set and are edge-closed.
    #[test]
    fn components_partition((n, edges) in arb_edges(30, 60)) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let comps = algo::connected_components(&g);
        prop_assert_eq!(comps.labels.len(), n);
        prop_assert!(comps.labels.iter().all(|&l| (l as usize) < comps.count));
        prop_assert_eq!(comps.sizes().iter().sum::<usize>(), n);
        for (u, v, _) in g.edges() {
            prop_assert_eq!(comps.labels[u as usize], comps.labels[v as usize]);
        }
    }

    /// `ensure_connected` always yields a connected graph containing the
    /// original edges.
    #[test]
    fn ensure_connected_connects((n, edges) in arb_edges(30, 40), seed in any::<u64>()) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let m_before = g.num_edges();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g2 = generators::ensure_connected(g.clone(), &mut rng);
        prop_assert!(algo::is_connected(&g2));
        prop_assert!(g2.num_edges() >= m_before);
        for (u, v, _) in g.edges() {
            prop_assert!(g2.has_edge(u, v));
        }
    }

    /// BFS distances satisfy the edge-relaxation (triangle) property and the
    /// source has distance zero.
    #[test]
    fn bfs_distance_triangle((n, edges) in arb_edges(30, 120), src_raw in 0u32..30) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let src = src_raw % n as u32;
        let d = algo::bfs_distances(&g, src);
        prop_assert_eq!(d[src as usize], 0);
        for (u, v, _) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != u32::MAX {
                prop_assert!(dv != u32::MAX && dv <= du + 1, "edge ({}, {})", u, v);
            }
            if dv != u32::MAX {
                prop_assert!(du != u32::MAX && du <= dv + 1);
            }
        }
    }

    /// Generators produce the promised vertex counts and connectivity.
    #[test]
    fn ba_generator_invariants(n in 5usize..60, m in 1usize..4, seed in any::<u64>()) {
        prop_assume!(n > m);
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n, m, &mut rng);
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(g.num_edges(), m + (n - m - 1) * m);
        prop_assert!(algo::is_connected(&g));
    }

    /// Separator family: hub removal gives exactly `clusters` equal parts.
    #[test]
    fn separator_invariants(clusters in 2usize..5, size in 1usize..12, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let links = 1 + seed as usize % size.min(3);
        let hs = generators::hub_separator(clusters, size, 0.2, links, &mut rng);
        prop_assert!(algo::is_connected(&hs.graph));
        let sizes = algo::components_after_removal(&hs.graph, hs.hub);
        prop_assert_eq!(sizes.len(), clusters);
        prop_assert!(sizes.iter().all(|&s| s == size));
    }

    /// Edge-list IO roundtrips arbitrary graphs.
    #[test]
    fn io_roundtrip((n, edges) in arb_edges(20, 50)) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let mut buf = Vec::new();
        mhbc_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = mhbc_graph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v, _) in g.edges() {
            prop_assert!(g2.has_edge(u, v));
        }
    }

    /// Union-find agrees with BFS connectivity.
    #[test]
    fn union_find_matches_bfs((n, edges) in arb_edges(25, 60)) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let mut uf = algo::UnionFind::new(n);
        for (u, v, _) in g.edges() {
            uf.union(u, v);
        }
        let comps = algo::connected_components(&g);
        prop_assert_eq!(uf.num_components(), comps.count);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    uf.connected(u, v),
                    comps.labels[u as usize] == comps.labels[v as usize]
                );
            }
        }
    }
}
