//! Criterion micro-benchmarks for the per-sample kernels.
//!
//! Backs the §4.1 cost claims: one SPD pass (BFS or Dijkstra) plus one
//! backward accumulation per sample, `O(|E|)` on unweighted graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mhbc_graph::{generators, CsrGraph};
use mhbc_spd::{
    exact_betweenness_par, legacy::LegacyBfsSpd, BfsSpd, DependencyCalculator, DijkstraSpd,
};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    let mut rng = SmallRng::seed_from_u64(42);
    vec![
        ("ba-5k", generators::barabasi_albert(5_000, 4, &mut rng)),
        ("grid-70x70", generators::grid(70, 70, false)),
    ]
}

fn bench_bfs_spd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_spd");
    for (name, g) in graphs() {
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        let mut spd = BfsSpd::new(g.num_vertices());
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            let mut s = 0u32;
            b.iter(|| {
                spd.compute(g, s % g.num_vertices() as u32);
                s = s.wrapping_add(97);
                black_box(spd.reached())
            });
        });
    }
    group.finish();
}

/// The pre-rewrite `VecDeque` kernel, benchmarked under the same workload so
/// every run re-measures the frontier kernel's speedup.
fn bench_legacy_bfs_spd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_spd_legacy");
    for (name, g) in graphs() {
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        let mut spd = LegacyBfsSpd::new(g.num_vertices());
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            let mut s = 0u32;
            b.iter(|| {
                spd.compute(g, s % g.num_vertices() as u32);
                s = s.wrapping_add(97);
                black_box(spd.order.len())
            });
        });
    }
    group.finish();
}

fn bench_dependency_accumulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_accumulation");
    for (name, g) in graphs() {
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        let mut calc = DependencyCalculator::new(&g);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            let mut s = 0u32;
            b.iter(|| {
                let d = calc.dependencies(g, s % g.num_vertices() as u32);
                s = s.wrapping_add(101);
                black_box(d[0])
            });
        });
    }
    group.finish();
}

fn bench_dijkstra_spd(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(43);
    let g = generators::assign_uniform_weights(
        &generators::barabasi_albert(5_000, 4, &mut rng),
        1.0,
        10.0,
        &mut rng,
    );
    let mut spd = DijkstraSpd::new(g.num_vertices());
    c.bench_function("dijkstra_spd/ba-5k-weighted", |b| {
        let mut s = 0u32;
        b.iter(|| {
            spd.compute(&g, s % g.num_vertices() as u32);
            s = s.wrapping_add(97);
            black_box(spd.reached())
        });
    });
}

fn bench_exact_brandes(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(44);
    let g = generators::barabasi_albert(2_000, 4, &mut rng);
    let mut group = c.benchmark_group("exact_brandes");
    group.sample_size(10);
    group.bench_function("ba-2k-serial", |b| b.iter(|| black_box(mhbc_spd::exact_betweenness(&g))));
    group.bench_function("ba-2k-parallel", |b| b.iter(|| black_box(exact_betweenness_par(&g, 0))));
    group.finish();
}

criterion_group!(
    kernels,
    bench_bfs_spd,
    bench_legacy_bfs_spd,
    bench_dependency_accumulation,
    bench_dijkstra_spd,
    bench_exact_brandes
);
criterion_main!(kernels);
