//! Criterion benchmarks of per-sample estimator cost (backs T3): one MH
//! iteration vs one sample of each baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use mhbc_baselines::{BbSampler, DistanceSampler, RkSampler, UniformSourceSampler};
use mhbc_core::{SingleSpaceConfig, SingleSpaceSampler};
use mhbc_graph::{generators, CsrGraph, Vertex};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn test_graph() -> (CsrGraph, Vertex) {
    let mut rng = SmallRng::seed_from_u64(7);
    let g = generators::barabasi_albert(5_000, 4, &mut rng);
    let hub = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).expect("non-empty");
    (g, hub)
}

fn bench_mh_step(c: &mut Criterion) {
    let (g, hub) = test_graph();
    // Cold chain: every step may hit a fresh source (worst case, one BFS).
    c.bench_function("sampler_step/mh-cold", |b| {
        let mut sampler = SingleSpaceSampler::new(&g, hub, SingleSpaceConfig::new(u64::MAX, 3))
            .expect("valid config");
        b.iter(|| black_box(sampler.step().estimate));
    });
    // Warm chain: oracle cache populated, steps are mostly hash lookups.
    c.bench_function("sampler_step/mh-warm", |b| {
        let mut sampler = SingleSpaceSampler::new(&g, hub, SingleSpaceConfig::new(u64::MAX, 3))
            .expect("valid config");
        for _ in 0..20_000 {
            sampler.step();
        }
        b.iter(|| black_box(sampler.step().estimate));
    });
}

fn bench_baseline_samples(c: &mut Criterion) {
    let (g, hub) = test_graph();
    c.bench_function("sampler_step/uniform", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut s = UniformSourceSampler::new(&g, hub);
        b.iter(|| black_box(s.sample(&mut rng)));
    });
    c.bench_function("sampler_step/distance", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut s = DistanceSampler::new(&g, hub);
        b.iter(|| black_box(s.sample(&mut rng)));
    });
    c.bench_function("sampler_step/rk", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = RkSampler::new(&g);
        b.iter(|| {
            s.sample(&mut rng);
            black_box(s.estimate(hub))
        });
    });
    c.bench_function("sampler_step/bb-bfs", |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut s = BbSampler::new(&g, hub);
        b.iter(|| {
            s.sample(&mut rng);
            black_box(s.estimate())
        });
    });
}

fn bench_joint_step(c: &mut Criterion) {
    let (g, _) = test_graph();
    let probes: Vec<u32> = vec![5, 17, 100, 1000];
    c.bench_function("sampler_step/joint-warm", |b| {
        let mut sampler = mhbc_core::JointSpaceSampler::new(
            &g,
            &probes,
            mhbc_core::JointSpaceConfig::new(u64::MAX, 5),
        )
        .expect("valid probes");
        for _ in 0..20_000 {
            sampler.step();
        }
        b.iter(|| black_box(sampler.step().iteration));
    });
}

criterion_group!(samplers, bench_mh_step, bench_baseline_samples, bench_joint_step);
criterion_main!(samplers);
