//! Evaluation datasets (synthetic substitutes; see DESIGN.md).

use mhbc_graph::{generators, CsrGraph, Vertex};
use rand::{rngs::SmallRng, SeedableRng};

/// A named evaluation graph, with the designated separator probe when the
/// family has one.
pub struct Dataset {
    /// Short name used in tables and file names.
    pub name: &'static str,
    /// The graph (connected, unweighted).
    pub graph: CsrGraph,
    /// The hub vertex for the separator family.
    pub separator_probe: Option<Vertex>,
}

/// The standard seven-family suite (T1/T2/T3/F1/F2): five uniform models
/// plus two realistic-redundancy families (see below). `quick` shrinks sizes
/// so the whole harness runs in CI time.
pub fn standard_suite(quick: bool) -> Vec<Dataset> {
    let scale = if quick { 1_500 } else { 4_000 };
    let mut out = Vec::new();

    let mut rng = SmallRng::seed_from_u64(crate::SEED);
    out.push(Dataset {
        name: "ba",
        graph: generators::barabasi_albert(scale, 4, &mut rng),
        separator_probe: None,
    });

    let mut rng = SmallRng::seed_from_u64(crate::SEED + 1);
    let er = generators::erdos_renyi_gnm(scale, scale * 4, &mut rng);
    out.push(Dataset {
        name: "er",
        graph: generators::ensure_connected(er, &mut rng),
        separator_probe: None,
    });

    let mut rng = SmallRng::seed_from_u64(crate::SEED + 2);
    let ws = generators::watts_strogatz(scale, 8, 0.1, &mut rng);
    out.push(Dataset {
        name: "ws",
        graph: generators::ensure_connected(ws, &mut rng),
        separator_probe: None,
    });

    let side = (scale as f64).sqrt() as usize;
    out.push(Dataset {
        name: "grid",
        graph: generators::grid(side, side, false),
        separator_probe: None,
    });

    let mut rng = SmallRng::seed_from_u64(crate::SEED + 3);
    let clusters = 4;
    let hs = generators::hub_separator(clusters, scale / clusters, 8.0 / scale as f64, 3, &mut rng);
    out.push(Dataset { name: "sep", graph: hs.graph, separator_probe: Some(hs.hub) });

    // Realistic-redundancy families: real SNAP graphs (the web, co-purchase,
    // and collaboration networks the paper evaluates on) carry 15–40%
    // degree-1 vertices and many identical-neighbourhood twins, which the
    // five uniform models above structurally forbid (min degree >= 2 by
    // construction). `web` reproduces the pendant mass via mixed
    // preferential attachment; `dup` reproduces the twin redundancy via
    // duplication–divergence.
    let mut rng = SmallRng::seed_from_u64(crate::SEED + 4);
    out.push(Dataset {
        name: "web",
        graph: generators::preferential_attachment_mixed(scale, 1, 4, 0.45, &mut rng),
        separator_probe: None,
    });

    let mut rng = SmallRng::seed_from_u64(crate::SEED + 5);
    out.push(Dataset {
        name: "dup",
        graph: generators::duplication_divergence(scale, 0.5, &mut rng),
        separator_probe: None,
    });

    out
}

/// Barabási–Albert graphs of increasing size (F7 scaling sweep).
pub fn ba_size_sweep(quick: bool) -> Vec<(usize, CsrGraph)> {
    let sizes: &[usize] =
        if quick { &[1_000, 2_000, 4_000] } else { &[1_000, 2_000, 4_000, 8_000, 16_000, 32_000] };
    sizes
        .iter()
        .map(|&n| {
            let mut rng = SmallRng::seed_from_u64(crate::SEED + n as u64);
            (n, generators::barabasi_albert(n, 4, &mut rng))
        })
        .collect()
}

/// Separator graphs of increasing size (F3: µ(r) flatness vs n).
pub fn separator_size_sweep(quick: bool, clusters: usize) -> Vec<(usize, CsrGraph, Vertex)> {
    let sizes: &[usize] = if quick { &[500, 1_000, 2_000] } else { &[1_000, 2_000, 4_000, 8_000] };
    sizes
        .iter()
        .map(|&n| {
            let per = n / clusters;
            let mut rng = SmallRng::seed_from_u64(crate::SEED + (clusters * 1000 + n) as u64);
            let hs =
                generators::hub_separator(clusters, per, (8.0 / n as f64).min(0.5), 3, &mut rng);
            (hs.graph.num_vertices(), hs.graph, hs.hub)
        })
        .collect()
}

/// Weighted variants for T5.
pub fn weighted_suite(quick: bool) -> Vec<Dataset> {
    let scale = if quick { 1_000 } else { 4_000 };
    let mut rng = SmallRng::seed_from_u64(crate::SEED + 77);
    let side = (scale as f64).sqrt() as usize;
    let grid = generators::assign_uniform_weights(
        &generators::grid(side, side, false),
        1.0,
        10.0,
        &mut rng,
    );
    let ba = generators::assign_uniform_weights(
        &generators::barabasi_albert(scale, 4, &mut rng),
        1.0,
        10.0,
        &mut rng,
    );
    vec![
        Dataset { name: "grid-w", graph: grid, separator_probe: None },
        Dataset { name: "ba-w", graph: ba, separator_probe: None },
    ]
}
