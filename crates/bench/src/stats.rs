//! Small statistics helpers for multi-run experiments.

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 with < 2 points).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Maximum (0 when empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(0.0, f64::max)
}

/// Median (0 when empty); averages the middle pair for even lengths.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Interquartile range endpoints `(q1, q3)` by nearest-rank.
pub fn quartiles(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    (v[v.len() / 4], v[(v.len() * 3) / 4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(max(&xs), 4.0);
        assert!((std_dev(&xs) - 1.2909944).abs() < 1e-6);
        assert_eq!(quartiles(&xs), (2.0, 4.0));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
    }
}
