//! Probe-vertex selection for the estimation experiments.

use mhbc_graph::Vertex;

/// The three probe classes T2/F1/F2 sweep: the top-betweenness hub, a
/// median-betweenness vertex, and a low-but-positive one.
#[derive(Debug, Clone, Copy)]
pub struct ProbeSet {
    /// Highest exact betweenness.
    pub hub: Vertex,
    /// Median among positive-betweenness vertices.
    pub median: Vertex,
    /// 90th-percentile rank among positive-betweenness vertices (small but
    /// non-zero — the hardest regime for dependency-proportional samplers).
    pub low: Vertex,
}

/// Selects probes from the exact betweenness vector.
///
/// # Panics
/// If no vertex has positive betweenness.
pub fn select_probes(exact_bc: &[f64]) -> ProbeSet {
    let mut positive: Vec<(usize, f64)> =
        exact_bc.iter().copied().enumerate().filter(|&(_, b)| b > 0.0).collect();
    assert!(!positive.is_empty(), "graph has no positive-betweenness vertex");
    positive.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite betweenness"));
    let hub = positive[0].0 as Vertex;
    let median = positive[positive.len() / 2].0 as Vertex;
    let low = positive[(positive.len() * 9) / 10].0 as Vertex;
    ProbeSet { hub, median, low }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_distinct_ranks() {
        let bc = vec![0.0, 0.9, 0.5, 0.3, 0.2, 0.1, 0.05, 0.01, 0.0, 0.4];
        let p = select_probes(&bc);
        assert_eq!(p.hub, 1);
        assert!(bc[p.median as usize] > 0.0);
        assert!(bc[p.low as usize] > 0.0);
        assert!(bc[p.hub as usize] >= bc[p.median as usize]);
        assert!(bc[p.median as usize] >= bc[p.low as usize]);
    }

    #[test]
    #[should_panic(expected = "positive-betweenness")]
    fn rejects_all_zero() {
        select_probes(&[0.0, 0.0]);
    }
}
