//! Markdown + CSV result emission.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A result table that renders to markdown (stdout) and CSV (`results/`).
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as github markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("\n### {}\n\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}", w = w)).collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints markdown to stdout and writes `results/<file_stem>.csv`.
    pub fn emit(&self, out_dir: &Path, file_stem: &str) -> std::io::Result<PathBuf> {
        print!("{}", self.to_markdown());
        fs::create_dir_all(out_dir)?;
        let path = out_dir.join(format!("{file_stem}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.columns.join(","))?;
        for row in &self.rows {
            // Cells are numeric or simple identifiers; quote anything with a comma.
            let cells: Vec<String> = row
                .iter()
                .map(|c| if c.contains(',') { format!("\"{c}\"") } else { c.clone() })
                .collect();
            writeln!(f, "{}", cells.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a float compactly for tables.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

/// Formats a value in units of 1e-5 (the error scale BC papers report).
pub fn e5(x: f64) -> String {
    format!("{:.2}", x * 1e5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("| 1 | 2  |"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("mhbc_report_test");
        let mut t = Table::new("demo", &["x", "y"]);
        t.push(vec!["1".into(), "has,comma".into()]);
        let path = t.emit(&dir, "demo").expect("csv written");
        let text = std::fs::read_to_string(path).expect("readable");
        assert!(text.contains("x,y"));
        assert!(text.contains("\"has,comma\""));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(2.5), "2.500");
        assert_eq!(f(0.01234), "0.01234");
        assert_eq!(e5(0.00002), "2.00");
    }
}
