//! Experiment harness: regenerates every table and figure in DESIGN.md's
//! experiment index.
//!
//! ```text
//! cargo run --release -p mhbc-bench --bin experiments -- all --quick
//! cargo run --release -p mhbc-bench --bin experiments -- t2 f3 f9
//! cargo run --release -p mhbc-bench --bin experiments -- perf --quick
//! ```
//!
//! Results print as markdown and are mirrored to `results/<id>.csv`. The
//! `perf` subcommand (not part of `all`) additionally writes the
//! performance-trajectory artifacts to the current directory:
//! `BENCH_kernels.json` (schema v2: per-kernel-mode ns/edge —
//! legacy/topdown/hybrid/auto — on the T3 workload, and sampler
//! samples/sec at 1/2/4 threads through the prefetch pipeline on every
//! family) and `BENCH_preproc.json` (graph-reduction ratio, reduced-pass
//! ns/edge, and sampler samples/sec at `--preprocess off/prune/full` per
//! T3 graph).

use mhbc_baselines::{BbSampler, DistanceSampler, RkSampler, UniformSourceSampler};
use mhbc_bench::report::{e5, f, Table};
use mhbc_bench::{probes, stats, workloads, SEED};
use mhbc_core::planner::{plan_single, MuSource};
use mhbc_core::{
    optimal, JointSpaceConfig, JointSpaceSampler, SingleSpaceConfig, SingleSpaceSampler,
};
use mhbc_graph::{algo, CsrGraph, DegreeStats, Vertex};
use mhbc_mcmc::{bounds, diagnostics};
use mhbc_spd::{dependency_profile_par, exact_betweenness_par};
use rand::{rngs::SmallRng, RngExt, SeedableRng};
use std::path::PathBuf;
use std::time::Instant;

struct Ctx {
    quick: bool,
    out: PathBuf,
}

impl Ctx {
    fn runs(&self) -> u64 {
        if self.quick {
            3
        } else {
            5
        }
    }

    fn budget(&self, n: usize) -> u64 {
        if self.quick {
            (n as u64 / 2).clamp(500, 2_000)
        } else {
            (n as u64 / 2).clamp(1_000, 4_000)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--") && Some(a.as_str()) != out.to_str())
        .map(|a| a.as_str())
        .collect();
    let ctx = Ctx { quick, out };

    let all = ["t1", "t2", "t3", "t4", "t5", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9"];
    let selected: Vec<&str> =
        if ids.is_empty() || ids.contains(&"all") { all.to_vec() } else { ids };

    for id in selected {
        let started = Instant::now();
        match id {
            "t1" => t1(&ctx),
            "t2" => t2(&ctx),
            "t3" => t3(&ctx),
            "t4" => t4(&ctx),
            "t5" => t5(&ctx),
            "f1" => f1(&ctx),
            "f2" => f2(&ctx),
            "f3" => f3(&ctx),
            "f4" => f4(&ctx),
            "f5" => f5(&ctx),
            "f6" => f6(&ctx),
            "f7" => f7(&ctx),
            "f8" => f8(&ctx),
            "f9" => f9(&ctx),
            "perf" => perf(&ctx),
            other => {
                eprintln!("unknown experiment `{other}` (known: {all:?}, `perf`, or `all`)");
                std::process::exit(2);
            }
        }
        eprintln!("[{id} done in {:.1?}]", started.elapsed());
    }
}

/// Probe classes evaluated by most experiments.
fn probe_list(g: &CsrGraph, exact: &[f64], sep: Option<Vertex>) -> Vec<(&'static str, Vertex)> {
    let p = probes::select_probes(exact);
    let mut out = vec![("hub", p.hub), ("median", p.median), ("low", p.low)];
    if let Some(s) = sep {
        out.push(("separator", s));
    }
    let _ = g;
    out
}

/// Geometrically spaced checkpoints up to `max`.
fn checkpoints(max: u64) -> Vec<u64> {
    let mut cs = Vec::new();
    let mut c = 16u64;
    while c < max {
        cs.push(c);
        c *= 2;
    }
    cs.push(max);
    cs
}

// ---------------------------------------------------------------- T1 ----

fn t1(ctx: &Ctx) {
    let mut t = Table::new(
        "T1 - dataset statistics (synthetic substitutes; see DESIGN.md)",
        &["graph", "n", "m", "diam>=", "deg max", "deg mean", "BC(hub)", "BC(median)", "BC(low)"],
    );
    for ds in workloads::standard_suite(ctx.quick) {
        let g = &ds.graph;
        let exact = exact_betweenness_par(g, 0);
        let p = probes::select_probes(&exact);
        let deg = DegreeStats::of(g);
        let diam = algo::double_sweep_lower_bound(g, 0);
        t.push(vec![
            ds.name.into(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            diam.to_string(),
            deg.max.to_string(),
            format!("{:.2}", deg.mean),
            f(exact[p.hub as usize]),
            f(exact[p.median as usize]),
            f(exact[p.low as usize]),
        ]);
    }
    t.emit(&ctx.out, "t1").expect("emit t1");
}

// ---------------------------------------------------------------- T2 ----

fn t2(ctx: &Ctx) {
    let mut t = Table::new(
        "T2 - single-vertex error at matched sample budgets (mean |err| x1e-5 over runs; rel = mean |err|/BC)",
        &["graph", "probe", "BC(r)", "T", "mh-eq7", "mh-corr", "uniform", "distance", "rk", "bb", "mh rel", "corr rel"],
    );
    for ds in workloads::standard_suite(ctx.quick) {
        let g = &ds.graph;
        let exact = exact_betweenness_par(g, 0);
        let budget = ctx.budget(g.num_vertices());
        for (label, r) in probe_list(g, &exact, ds.separator_probe) {
            let truth = exact[r as usize];
            let mut errs: [Vec<f64>; 6] = Default::default();
            for run in 0..ctx.runs() {
                let seed = SEED ^ (run * 7919);
                let mh = SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(budget, seed))
                    .expect("valid config")
                    .run();
                errs[0].push((mh.bc - truth).abs());
                errs[1].push((mh.bc_corrected - truth).abs());
                let mut rng = SmallRng::seed_from_u64(seed + 1);
                errs[2]
                    .push((UniformSourceSampler::new(g, r).run(budget, &mut rng).bc - truth).abs());
                let mut rng = SmallRng::seed_from_u64(seed + 2);
                errs[3].push((DistanceSampler::new(g, r).run(budget, &mut rng).bc - truth).abs());
                let mut rng = SmallRng::seed_from_u64(seed + 3);
                errs[4].push((RkSampler::new(g).run(budget, &mut rng).of(r) - truth).abs());
                let mut rng = SmallRng::seed_from_u64(seed + 4);
                errs[5].push((BbSampler::new(g, r).run_fixed(budget, &mut rng).bc - truth).abs());
            }
            t.push(vec![
                ds.name.into(),
                label.into(),
                f(truth),
                budget.to_string(),
                e5(stats::mean(&errs[0])),
                e5(stats::mean(&errs[1])),
                e5(stats::mean(&errs[2])),
                e5(stats::mean(&errs[3])),
                e5(stats::mean(&errs[4])),
                e5(stats::mean(&errs[5])),
                f(stats::mean(&errs[0]) / truth),
                f(stats::mean(&errs[1]) / truth),
            ]);
        }
    }
    t.emit(&ctx.out, "t2").expect("emit t2");
}

// ---------------------------------------------------------------- T3 ----

fn t3(ctx: &Ctx) {
    let mut t = Table::new(
        "T3 - runtime: ms per 1000 samples, exact Brandes ms, speedup at the T2 budget",
        &[
            "graph",
            "brandes ms",
            "mh/1k",
            "uniform/1k",
            "distance/1k",
            "rk/1k",
            "bb/1k",
            "mh speedup",
            "mh passes",
        ],
    );
    for ds in workloads::standard_suite(ctx.quick) {
        let g = &ds.graph;
        let started = Instant::now();
        let exact = exact_betweenness_par(g, 0);
        let brandes_ms = started.elapsed().as_secs_f64() * 1e3;
        let p = probes::select_probes(&exact);
        let r = p.hub;
        let budget = ctx.budget(g.num_vertices());
        let per_1k = 1_000.0 / budget as f64;

        let started = Instant::now();
        let mh = SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(budget, SEED))
            .expect("valid config")
            .run();
        let mh_ms = started.elapsed().as_secs_f64() * 1e3;

        let time_baseline = |which: usize| -> f64 {
            let mut rng = SmallRng::seed_from_u64(SEED + which as u64);
            let started = Instant::now();
            match which {
                0 => drop(UniformSourceSampler::new(g, r).run(budget, &mut rng)),
                1 => drop(DistanceSampler::new(g, r).run(budget, &mut rng)),
                2 => drop(RkSampler::new(g).run(budget, &mut rng)),
                _ => drop(BbSampler::new(g, r).run_fixed(budget, &mut rng)),
            }
            started.elapsed().as_secs_f64() * 1e3
        };
        let (uni_ms, dist_ms, rk_ms, bb_ms) =
            (time_baseline(0), time_baseline(1), time_baseline(2), time_baseline(3));

        t.push(vec![
            ds.name.into(),
            format!("{brandes_ms:.0}"),
            format!("{:.1}", mh_ms * per_1k),
            format!("{:.1}", uni_ms * per_1k),
            format!("{:.1}", dist_ms * per_1k),
            format!("{:.1}", rk_ms * per_1k),
            format!("{:.1}", bb_ms * per_1k),
            format!("{:.1}x", brandes_ms / mh_ms),
            mh.spd_passes.to_string(),
        ]);
    }
    t.emit(&ctx.out, "t3").expect("emit t3");
}

// ---------------------------------------------------------------- T4 ----

fn t4(ctx: &Ctx) {
    let mut t = Table::new(
        "T4 - joint-space sampler: relative scores and ratios vs exact (Theorem 3/4)",
        &[
            "graph",
            "|R|",
            "T",
            "ratio mean rel err",
            "ratio max rel err",
            "rel-score mean |err|",
            "min |M(i)|",
        ],
    );
    for ds in workloads::standard_suite(ctx.quick)
        .into_iter()
        .filter(|d| d.name == "ba" || d.name == "sep")
    {
        let g = &ds.graph;
        let exact = exact_betweenness_par(g, 0);
        let mut order: Vec<usize> = (0..g.num_vertices()).collect();
        order.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).expect("finite"));
        for k in [2usize, 4, 8] {
            // Probes: top-BC ranks with small spacing. The joint chain's
            // visit counts are proportional to BC mass (Eq 18), so probes
            // of comparable importance keep every multiset M(i) populated —
            // the paper's use case is comparing *important* vertices.
            let probes: Vec<Vertex> = (0..k).map(|i| order[i * 2] as Vertex).collect();
            let iterations = ctx.budget(g.num_vertices()) * 16;
            let est = JointSpaceSampler::new(g, &probes, JointSpaceConfig::new(iterations, SEED))
                .expect("valid probes")
                .run();
            let stationary = optimal::stationary_relative_matrix(g, &probes, 0);

            let mut ratio_errs = Vec::new();
            let mut rel_errs = Vec::new();
            for i in 0..k {
                for j in 0..k {
                    if i == j {
                        continue;
                    }
                    let truth = exact[probes[i] as usize] / exact[probes[j] as usize];
                    let got = est.ratio(i, j);
                    if got.is_finite() {
                        ratio_errs.push((got - truth).abs() / truth);
                    }
                    if est.relative[i][j].is_finite() {
                        rel_errs.push((est.relative[i][j] - stationary[i][j]).abs());
                    }
                }
            }
            t.push(vec![
                ds.name.into(),
                k.to_string(),
                iterations.to_string(),
                f(stats::mean(&ratio_errs)),
                f(stats::max(&ratio_errs)),
                f(stats::mean(&rel_errs)),
                est.counts.iter().min().expect("non-empty").to_string(),
            ]);
        }
    }
    t.emit(&ctx.out, "t4").expect("emit t4");
}

// ---------------------------------------------------------------- T5 ----

fn t5(ctx: &Ctx) {
    let mut t = Table::new(
        "T5 - weighted graphs (Dijkstra kernel): error and time vs weighted Brandes",
        &[
            "graph",
            "n",
            "BC(r)",
            "T",
            "eq7 |err|x1e-5",
            "corr |err|x1e-5",
            "uniform |err|x1e-5",
            "brandes ms",
            "mh ms",
        ],
    );
    for ds in workloads::weighted_suite(ctx.quick) {
        let g = &ds.graph;
        let started = Instant::now();
        let exact = exact_betweenness_par(g, 0);
        let brandes_ms = started.elapsed().as_secs_f64() * 1e3;
        let p = probes::select_probes(&exact);
        let r = p.hub;
        let truth = exact[r as usize];
        let budget = ctx.budget(g.num_vertices());

        let mut eq7 = Vec::new();
        let mut corr = Vec::new();
        let mut uni = Vec::new();
        let mut mh_ms = 0.0;
        for run in 0..ctx.runs() {
            let seed = SEED ^ (run * 31);
            let started = Instant::now();
            let est = SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(budget, seed))
                .expect("valid config")
                .run();
            mh_ms += started.elapsed().as_secs_f64() * 1e3;
            eq7.push((est.bc - truth).abs());
            corr.push((est.bc_corrected - truth).abs());
            let mut rng = SmallRng::seed_from_u64(seed + 1);
            uni.push((UniformSourceSampler::new(g, r).run(budget, &mut rng).bc - truth).abs());
        }
        t.push(vec![
            ds.name.into(),
            g.num_vertices().to_string(),
            f(truth),
            budget.to_string(),
            e5(stats::mean(&eq7)),
            e5(stats::mean(&corr)),
            e5(stats::mean(&uni)),
            format!("{brandes_ms:.0}"),
            format!("{:.0}", mh_ms / ctx.runs() as f64),
        ]);
    }
    t.emit(&ctx.out, "t5").expect("emit t5");
}

// ---------------------------------------------------------------- F1 ----

fn f1(ctx: &Ctx) {
    let mut t = Table::new(
        "F1 - convergence: median |err| (and IQR) vs iterations T (per graph, hub probe)",
        &["graph", "estimator", "T", "median |err|", "q1", "q3"],
    );
    for ds in workloads::standard_suite(ctx.quick)
        .into_iter()
        .filter(|d| d.name == "ba" || d.name == "grid" || d.name == "sep")
    {
        let g = &ds.graph;
        let exact = exact_betweenness_par(g, 0);
        let r = ds.separator_probe.unwrap_or(probes::select_probes(&exact).hub);
        let truth = exact[r as usize];
        let max_t = ctx.budget(g.num_vertices()) * 2;
        let cps = checkpoints(max_t);

        // errs[estimator][checkpoint][run]
        let mut errs = vec![vec![Vec::new(); cps.len()]; 3];
        for run in 0..ctx.runs() {
            let seed = SEED ^ (run * 131);
            // MH with trace.
            let est =
                SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(max_t, seed).with_trace())
                    .expect("valid config")
                    .run();
            let trace = est.trace.as_deref().expect("traced");
            // Uniform with trace.
            let mut rng = SmallRng::seed_from_u64(seed + 1);
            let mut uni = UniformSourceSampler::new(g, r).with_trace();
            for _ in 0..max_t {
                uni.sample(&mut rng);
            }
            // RK running estimate by manual checkpointing.
            let mut rng = SmallRng::seed_from_u64(seed + 2);
            let mut rk = RkSampler::new(g);
            let mut rk_at = Vec::with_capacity(cps.len());
            let mut done = 0u64;
            for &cp in &cps {
                while done < cp {
                    rk.sample(&mut rng);
                    done += 1;
                }
                rk_at.push(rk.estimate(r));
            }
            for (ci, &cp) in cps.iter().enumerate() {
                errs[0][ci].push((trace[cp as usize] - truth).abs());
                errs[1][ci].push((uni.trace().expect("traced")[cp as usize - 1] - truth).abs());
                errs[2][ci].push((rk_at[ci] - truth).abs());
            }
        }
        for (ei, name) in ["mh-eq7", "uniform", "rk"].iter().enumerate() {
            for (ci, &cp) in cps.iter().enumerate() {
                let (q1, q3) = stats::quartiles(&errs[ei][ci]);
                t.push(vec![
                    ds.name.into(),
                    (*name).into(),
                    cp.to_string(),
                    e5(stats::median(&errs[ei][ci])),
                    e5(q1),
                    e5(q3),
                ]);
            }
        }
    }
    t.emit(&ctx.out, "f1").expect("emit f1");
}

// ---------------------------------------------------------------- F2 ----

fn f2(ctx: &Ctx) {
    let mut t = Table::new(
        "F2 - mixing: acceptance rate, integrated autocorrelation time, ESS/T, Geweke z",
        &["graph", "probe", "acceptance", "tau", "ESS/T", "geweke |z|"],
    );
    for ds in workloads::standard_suite(ctx.quick) {
        let g = &ds.graph;
        let exact = exact_betweenness_par(g, 0);
        for (label, r) in probe_list(g, &exact, ds.separator_probe) {
            let t_iters = ctx.budget(g.num_vertices()) * 2;
            let est =
                SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(t_iters, SEED).with_trace())
                    .expect("valid config")
                    .run();
            let series = est.density_series.as_deref().expect("traced");
            let tau = diagnostics::integrated_autocorrelation_time(series);
            let ess = diagnostics::effective_sample_size(series);
            let z = diagnostics::geweke_z(series, 0.1, 0.5);
            t.push(vec![
                ds.name.into(),
                label.into(),
                f(est.acceptance_rate),
                format!("{tau:.1}"),
                f(ess / series.len() as f64),
                format!("{:.2}", z.abs()),
            ]);
        }
    }
    t.emit(&ctx.out, "f2").expect("emit f2");
}

// ---------------------------------------------------------------- F3 ----

fn f3(ctx: &Ctx) {
    // Part A: mu(r) per dataset and probe class.
    let mut ta = Table::new(
        "F3a - mu(r) by probe position (exact, from dependency profiles)",
        &["graph", "probe", "mu(r)", "theorem2 bound", "planned T (eps=0.05, delta=0.05)"],
    );
    for ds in workloads::standard_suite(ctx.quick) {
        let g = &ds.graph;
        let exact = exact_betweenness_par(g, 0);
        for (label, r) in probe_list(g, &exact, ds.separator_probe) {
            let profile = dependency_profile_par(g, r, 0);
            let mu = profile.mu();
            let rep = optimal::theorem2_report(g, r, 0.1);
            let planned = mu.map(|m| bounds::required_samples(m.max(1.0), 0.05, 0.05));
            ta.push(vec![
                ds.name.into(),
                label.into(),
                mu.map_or("-".into(), |m| format!("{m:.2}")),
                rep.mu_bound.map_or("-".into(), |b| format!("{b:.2}")),
                planned.map_or("-".into(), |t| t.to_string()),
            ]);
        }
    }
    ta.emit(&ctx.out, "f3a").expect("emit f3a");

    // Part B: separator family - mu(hub) flat in n (Theorem 2); BA hub grows.
    let mut tb = Table::new(
        "F3b - mu vs graph size: separator hubs stay constant (Theorem 2); BA hubs drift",
        &["family", "n", "mu(r)"],
    );
    for clusters in [2usize, 4] {
        for (n, g, hub) in workloads::separator_size_sweep(ctx.quick, clusters) {
            let mu = dependency_profile_par(&g, hub, 0).mu().expect("hub has positive BC");
            tb.push(vec![format!("sep-l{clusters}"), n.to_string(), format!("{mu:.3}")]);
        }
    }
    for (n, g) in workloads::ba_size_sweep(true) {
        let exact = exact_betweenness_par(&g, 0);
        let hub = probes::select_probes(&exact).hub;
        let mu = dependency_profile_par(&g, hub, 0).mu().expect("hub has positive BC");
        tb.push(vec!["ba".into(), n.to_string(), format!("{mu:.3}")]);
    }
    tb.emit(&ctx.out, "f3b").expect("emit f3b");

    // Part C: planner overshoot - planned T vs empirical T to reach eps.
    let mut tc = Table::new(
        "F3c - Ineq 14 planner vs empirical iterations to reach eps (vs the Eq 7 limit)",
        &["graph", "eps", "planned T", "empirical T (90% runs within eps)", "overshoot"],
    );
    let mut rng = SmallRng::seed_from_u64(SEED + 5);
    let hs = mhbc_graph::generators::hub_separator(
        4,
        if ctx.quick { 250 } else { 1_000 },
        0.02,
        3,
        &mut rng,
    );
    let g = &hs.graph;
    let limit = optimal::eq7_limit(&dependency_profile_par(g, hs.hub, 0));
    for eps in [0.1, 0.05, 0.025] {
        let plan = plan_single(g, hs.hub, eps, 0.05, MuSource::Exact { threads: 0 })
            .expect("hub has positive BC");
        let runs: Vec<Vec<f64>> = (0..10)
            .map(|seed| {
                SingleSpaceSampler::new(
                    g,
                    hs.hub,
                    SingleSpaceConfig::new(plan.iterations, seed).with_trace(),
                )
                .expect("valid config")
                .run()
                .trace
                .expect("traced")
            })
            .collect();
        // Empirical T: first checkpoint where >= 90% of runs are within eps
        // of the Eq 7 limit (the quantity the guarantee actually concerns).
        let mut empirical = plan.iterations;
        'outer: for cp in checkpoints(plan.iterations) {
            let ok = runs
                .iter()
                .filter(|tr| ((tr[(cp as usize).min(tr.len() - 1)]) - limit).abs() <= eps)
                .count();
            if ok * 10 >= runs.len() * 9 {
                empirical = cp;
                break 'outer;
            }
        }
        tc.push(vec![
            "sep".into(),
            format!("{eps}"),
            plan.iterations.to_string(),
            empirical.to_string(),
            format!("{:.0}x", plan.iterations as f64 / empirical as f64),
        ]);
    }
    tc.emit(&ctx.out, "f3c").expect("emit f3c");
}

// ---------------------------------------------------------------- F4 ----

fn f4(ctx: &Ctx) {
    let mut t = Table::new(
        "F4 - joint-space convergence: |rel-score err| vs T, with the Ineq 27 epsilon overlay",
        &["graph", "T", "median |err|", "q3 |err|", "eps(T) from Ineq 27"],
    );
    let ds = workloads::standard_suite(ctx.quick).remove(0); // ba
    let g = &ds.graph;
    let exact = exact_betweenness_par(g, 0);
    let mut order: Vec<usize> = (0..g.num_vertices()).collect();
    order.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).expect("finite"));
    let probes: Vec<Vertex> = (0..4).map(|i| order[i * 8] as Vertex).collect();
    let stationary = optimal::stationary_relative_matrix(g, &probes, 0);
    let mu_j = dependency_profile_par(g, probes[1], 0).mu().expect("positive BC");

    let max_t = ctx.budget(g.num_vertices()) * 4;
    let cps = checkpoints(max_t);
    let mut errs = vec![Vec::new(); cps.len()];
    let mut mj_at = vec![Vec::new(); cps.len()];
    for run in 0..ctx.runs() {
        let cfg = JointSpaceConfig::new(max_t, SEED ^ (run * 17)).with_trace_pair(0, 1);
        let est = JointSpaceSampler::new(g, &probes, cfg).expect("valid probes").run();
        let trace = est.trace.as_deref().expect("traced");
        for (ci, &cp) in cps.iter().enumerate() {
            let v = trace[cp as usize];
            if v.is_finite() {
                errs[ci].push((v - stationary[0][1]).abs());
            }
            // |M(j)| grows roughly proportionally with T.
            mj_at[ci].push(est.counts[1] as f64 * cp as f64 / max_t as f64);
        }
    }
    for (ci, &cp) in cps.iter().enumerate() {
        let (_, q3) = stats::quartiles(&errs[ci]);
        let mj = stats::mean(&mj_at[ci]).max(2.0);
        t.push(vec![
            "ba".into(),
            cp.to_string(),
            e5(stats::median(&errs[ci])),
            e5(q3),
            f(bounds::achievable_epsilon(mj as u64, mu_j, 0.05)),
        ]);
    }
    t.emit(&ctx.out, "f4").expect("emit f4");
}

// ---------------------------------------------------------------- F5 ----

fn f5(ctx: &Ctx) {
    let mut t = Table::new(
        "F5 - Eq 7 multiset reading ablation: all-iterations (time-average) vs accepted-only",
        &[
            "graph",
            "probe",
            "BC(r)",
            "eq7 limit",
            "all-iter estimate",
            "accepted-only estimate",
            "acceptance",
        ],
    );
    for ds in workloads::standard_suite(ctx.quick)
        .into_iter()
        .filter(|d| d.name == "ba" || d.name == "sep")
    {
        let g = &ds.graph;
        let exact = exact_betweenness_par(g, 0);
        let r = ds.separator_probe.unwrap_or(probes::select_probes(&exact).hub);
        let limit = optimal::eq7_limit(&dependency_profile_par(g, r, 0));
        let budget = ctx.budget(g.num_vertices()) * 2;
        let mut std_est = Vec::new();
        let mut lit_est = Vec::new();
        let mut acc = Vec::new();
        for run in 0..ctx.runs() {
            let seed = SEED ^ (run * 13);
            let a = SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(budget, seed))
                .expect("valid config")
                .run();
            let b =
                SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(budget, seed).accepted_only())
                    .expect("valid config")
                    .run();
            std_est.push(a.bc);
            lit_est.push(b.bc);
            acc.push(a.acceptance_rate);
        }
        t.push(vec![
            ds.name.into(),
            if ds.separator_probe.is_some() { "separator".into() } else { "hub".to_string() },
            f(exact[r as usize]),
            f(limit),
            f(stats::mean(&std_est)),
            f(stats::mean(&lit_est)),
            f(stats::mean(&acc)),
        ]);
    }
    t.emit(&ctx.out, "f5").expect("emit f5");
}

// ---------------------------------------------------------------- F6 ----

fn f6(ctx: &Ctx) {
    let mut t = Table::new(
        "F6 - burn-in and initial-state ablation (mean |err| vs Eq 7 limit, x1e-5)",
        &["graph", "init", "burn-in", "mean |err|", "std"],
    );
    for ds in workloads::standard_suite(ctx.quick)
        .into_iter()
        .filter(|d| d.name == "ba" || d.name == "sep")
    {
        let g = &ds.graph;
        let exact = exact_betweenness_par(g, 0);
        let r = ds.separator_probe.unwrap_or(probes::select_probes(&exact).hub);
        let limit = optimal::eq7_limit(&dependency_profile_par(g, r, 0));
        let budget = ctx.budget(g.num_vertices()) * 2;
        // Worst-case initial state: minimum positive dependency... the
        // probe itself (zero dependency) is even harsher.
        let inits: Vec<(&str, Option<Vertex>)> = vec![("uniform", None), ("probe-itself", Some(r))];
        for (ilabel, init) in inits {
            for frac in [0u64, 1, 10] {
                let burn = budget * frac / 100;
                let mut errs = Vec::new();
                for run in 0..ctx.runs() {
                    let mut cfg =
                        SingleSpaceConfig::new(budget, SEED ^ (run * 37)).with_burn_in(burn);
                    if let Some(v) = init {
                        cfg = cfg.with_initial(v);
                    }
                    let est = SingleSpaceSampler::new(g, r, cfg).expect("valid config").run();
                    errs.push((est.bc - limit).abs());
                }
                t.push(vec![
                    ds.name.into(),
                    ilabel.into(),
                    format!("{frac}%"),
                    e5(stats::mean(&errs)),
                    e5(stats::std_dev(&errs)),
                ]);
            }
        }
    }
    t.emit(&ctx.out, "f6").expect("emit f6");
}

// ---------------------------------------------------------------- F7 ----

fn f7(ctx: &Ctx) {
    let mut t = Table::new(
        "F7 - scaling: exact Brandes vs MH sampling (fixed T = 2000) as n grows",
        &["n", "m", "brandes ms", "mh ms", "speedup", "corr |err|"],
    );
    for (n, g) in workloads::ba_size_sweep(ctx.quick) {
        // Cap exact Brandes cost on the big end.
        let brandes_ms = if n <= 16_000 || ctx.quick {
            let started = Instant::now();
            let _ = exact_betweenness_par(&g, 0);
            Some(started.elapsed().as_secs_f64() * 1e3)
        } else {
            None
        };
        let r = (0..n as Vertex).max_by_key(|&v| g.degree(v)).expect("non-empty");
        let truth =
            if brandes_ms.is_some() { Some(mhbc_spd::exact_betweenness_of(&g, r)) } else { None };
        let started = Instant::now();
        let est = SingleSpaceSampler::new(&g, r, SingleSpaceConfig::new(2_000, SEED))
            .expect("valid config")
            .run();
        let mh_ms = started.elapsed().as_secs_f64() * 1e3;
        t.push(vec![
            n.to_string(),
            g.num_edges().to_string(),
            brandes_ms.map_or("-".into(), |b| format!("{b:.0}")),
            format!("{mh_ms:.0}"),
            brandes_ms.map_or("-".into(), |b| format!("{:.1}x", b / mh_ms)),
            truth.map_or("-".into(), |tr| e5((est.bc_corrected - tr).abs())),
        ]);
    }
    t.emit(&ctx.out, "f7").expect("emit f7");
}

// ---------------------------------------------------------------- F8 ----

fn f8(ctx: &Ctx) {
    use mhbc_core::oracle::ProbeOracle;
    use mhbc_mcmc::{fn_target, MetropolisHastings, Proposal, UniformProposal, WeightedProposal};
    use std::cell::RefCell;

    /// Neighbour random-walk proposal (Hastings ratio deg(v)/deg(v')).
    struct WalkProposal<'g> {
        g: &'g CsrGraph,
    }
    impl Proposal<u32> for WalkProposal<'_> {
        fn propose<R: rand::Rng + ?Sized>(&mut self, current: &u32, rng: &mut R) -> u32 {
            let nbrs = self.g.neighbors(*current);
            nbrs[rng.random_range(0..nbrs.len())]
        }
        fn ratio(&self, current: &u32, proposed: &u32) -> f64 {
            self.g.degree(*current) as f64 / self.g.degree(*proposed) as f64
        }
    }

    let mut t = Table::new(
        "F8 - proposal ablation (hub probe): acceptance and |err| vs the Eq 7 limit",
        &["graph", "proposal", "acceptance", "|err| x1e-5"],
    );
    for ds in
        workloads::standard_suite(true).into_iter().filter(|d| d.name == "ba" || d.name == "grid")
    {
        let g = &ds.graph;
        let n = g.num_vertices();
        let exact = exact_betweenness_par(g, 0);
        let r = probes::select_probes(&exact).hub;
        let limit = optimal::eq7_limit(&dependency_profile_par(g, r, 0));
        let budget = ctx.budget(n) * 2;

        // Generic runner over any proposal: time-average of delta/(n-1).
        let run_with = |which: &str| -> (f64, f64) {
            let oracle = RefCell::new(ProbeOracle::new(g, &[r]));
            let target = fn_target(|v: &u32| oracle.borrow_mut().dep(*v, 0));
            let rng = SmallRng::seed_from_u64(SEED + 4242);
            let mut sum = 0.0;
            let (mut steps, mut accepted) = (0u64, 0u64);
            macro_rules! drive {
                ($prop:expr) => {{
                    let mut chain = MetropolisHastings::new(target, $prop, 0u32, rng);
                    sum += chain.current_density();
                    for _ in 0..budget {
                        let out = chain.step();
                        sum += out.density;
                        steps += 1;
                        if out.accepted {
                            accepted += 1;
                        }
                    }
                }};
            }
            match which {
                "uniform" => drive!(UniformProposal::new(n)),
                "degree" => {
                    let w: Vec<f64> = (0..n as u32).map(|v| g.degree(v) as f64).collect();
                    drive!(WeightedProposal::new(&w))
                }
                _ => drive!(WalkProposal { g }),
            }
            let est = sum / ((budget + 1) as f64 * (n as f64 - 1.0));
            (accepted as f64 / steps as f64, (est - limit).abs())
        };

        for which in ["uniform", "degree", "walk"] {
            let (acc, err) = run_with(which);
            t.push(vec![ds.name.into(), which.into(), f(acc), e5(err)]);
        }
    }
    t.emit(&ctx.out, "f8").expect("emit f8");
}

// -------------------------------------------------------------- PERF ----

/// Kernel + pipeline + preprocessing throughput trajectory: emits
/// `BENCH_kernels.json` (schema v2: per-kernel-mode columns, sampler
/// sweep over every workload family) and `BENCH_preproc.json` to the
/// current directory (the repo root in CI) so successive PRs accumulate
/// comparable numbers. Also prints the same figures as markdown tables.
fn perf(ctx: &Ctx) {
    use mhbc_core::{pipeline, PrefetchConfig};
    use mhbc_spd::{legacy::LegacyBfsSpd, BfsSpd, KernelMode};

    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let passes: u32 = if ctx.quick { 30 } else { 100 };
    // Interleaved min-of-rounds: scheduler noise inflates whichever kernel
    // happens to be measured during a busy slice, so each kernel's figure
    // is the best of several alternating rounds.
    let rounds = 5;
    /// The low-diameter families where bottom-up levels should engage.
    const LOW_DIAMETER: [&str; 3] = ["ba", "er", "web"];

    // --- Kernel: legacy vs top-down vs hybrid vs auto, one full pass
    // (SPD + accumulation) per measurement, sources cycling, on the T3
    // workload graphs.
    let mut tk = Table::new(
        "PERF/kernel - ns per edge per pass (SPD + dependency accumulation) by kernel mode",
        &[
            "graph",
            "n",
            "m",
            "legacy",
            "topdown",
            "hybrid",
            "auto",
            "hyb/td",
            "auto/td",
            "pull lvls",
        ],
    );
    let mut kernel_json = String::new();
    let (mut log_hybrid_sum, mut log_low_sum, mut log_legacy_sum) = (0.0, 0.0, 0.0);
    // Topdown's own position vs the fixed legacy baseline: the canonical-
    // order sorting makes this PR's topdown slightly slower than the PR 2
    // frontier kernel, so cross-PR comparisons must go through legacy (the
    // one baseline that never changes), not through topdown.
    let mut log_td_legacy_sum = 0.0;
    let mut auto_min = f64::INFINITY;
    let suite = workloads::standard_suite(ctx.quick);
    for ds in &suite {
        let g = &ds.graph;
        let (n, m) = (g.num_vertices(), g.num_edges());
        let mut delta = Vec::new();

        let mut legacy = LegacyBfsSpd::new(n);
        let mut modes = [
            BfsSpd::with_mode(n, KernelMode::TopDown),
            BfsSpd::with_mode(n, KernelMode::Hybrid),
            BfsSpd::with_mode(n, KernelMode::Auto),
        ];
        for w in 0..3u32 {
            legacy.compute(g, (w * 97) % n as u32); // warm-up
            for spd in modes.iter_mut() {
                spd.compute(g, (w * 97) % n as u32);
            }
        }
        // How many bottom-up levels the hybrid heuristics actually take,
        // averaged over the cycled sources (diagnostic, not a timing).
        let pull_lvls = {
            let spd = &mut modes[1];
            let mut total = 0u64;
            for i in 0..16u32 {
                spd.compute(g, (i * 97) % n as u32);
                total += spd.pull_levels() as u64;
            }
            total as f64 / 16.0
        };
        let mut legacy_ns = f64::MAX;
        let mut mode_ns = [f64::MAX; 3];
        for _ in 0..rounds {
            let started = Instant::now();
            let mut s = 0u32;
            for _ in 0..passes {
                legacy.compute(g, s % n as u32);
                legacy.accumulate_dependencies(g, &mut delta);
                s = s.wrapping_add(97);
            }
            legacy_ns =
                legacy_ns.min(started.elapsed().as_secs_f64() * 1e9 / (passes as f64 * m as f64));

            for (k, spd) in modes.iter_mut().enumerate() {
                let started = Instant::now();
                let mut s = 0u32;
                for _ in 0..passes {
                    spd.compute(g, s % n as u32);
                    spd.accumulate_dependencies(g, &mut delta);
                    s = s.wrapping_add(97);
                }
                mode_ns[k] = mode_ns[k]
                    .min(started.elapsed().as_secs_f64() * 1e9 / (passes as f64 * m as f64));
            }
        }

        let [topdown_ns, hybrid_ns, auto_ns] = mode_ns;
        let hybrid_speedup = topdown_ns / hybrid_ns;
        let auto_speedup = topdown_ns / auto_ns;
        let legacy_speedup = legacy_ns / hybrid_ns;
        let td_legacy_speedup = legacy_ns / topdown_ns;
        log_hybrid_sum += hybrid_speedup.ln();
        log_legacy_sum += legacy_speedup.ln();
        log_td_legacy_sum += td_legacy_speedup.ln();
        if LOW_DIAMETER.contains(&ds.name) {
            log_low_sum += hybrid_speedup.ln();
        }
        auto_min = auto_min.min(auto_speedup);
        tk.push(vec![
            ds.name.into(),
            n.to_string(),
            m.to_string(),
            format!("{legacy_ns:.2}"),
            format!("{topdown_ns:.2}"),
            format!("{hybrid_ns:.2}"),
            format!("{auto_ns:.2}"),
            format!("{hybrid_speedup:.2}x"),
            format!("{auto_speedup:.2}x"),
            format!("{pull_lvls:.1}"),
        ]);
        if !kernel_json.is_empty() {
            kernel_json.push_str(",\n");
        }
        kernel_json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"vertices\": {n}, \"edges\": {m}, \
             \"legacy_ns_per_edge\": {legacy_ns:.3}, \"topdown_ns_per_edge\": {topdown_ns:.3}, \
             \"hybrid_ns_per_edge\": {hybrid_ns:.3}, \"auto_ns_per_edge\": {auto_ns:.3}, \
             \"hybrid_speedup_vs_topdown\": {hybrid_speedup:.3}, \
             \"auto_speedup_vs_topdown\": {auto_speedup:.3}, \
             \"hybrid_speedup_vs_legacy\": {legacy_speedup:.3}, \
             \"topdown_speedup_vs_legacy\": {td_legacy_speedup:.3}, \
             \"hybrid_pull_levels_mean\": {pull_lvls:.2}}}",
            ds.name
        ));
    }
    let hybrid_geomean = (log_hybrid_sum / suite.len() as f64).exp();
    let low_geomean = (log_low_sum / LOW_DIAMETER.len() as f64).exp();
    let legacy_geomean = (log_legacy_sum / suite.len() as f64).exp();
    let td_legacy_geomean = (log_td_legacy_sum / suite.len() as f64).exp();
    tk.emit(&ctx.out, "perf_kernel").expect("emit perf_kernel");

    // --- Pipeline: samples/sec at 1/2/4 threads on *every* workload
    // family (min-of-interleaved-rounds), each with a bit-identity check
    // across thread counts.
    let mut tp = Table::new(
        "PERF/pipeline - single-space sampler throughput by thread count (hub probe, per family)",
        &["graph", "threads", "samples/sec", "speedup vs 1t", "hit rate", "spd passes"],
    );
    let sampler_rounds = 3;
    let thread_counts = [1usize, 2, 4];
    let mut sampler_json = String::new();
    let mut all_deterministic = true;
    for ds in &suite {
        let g = &ds.graph;
        let r = (0..g.num_vertices() as Vertex).max_by_key(|&v| g.degree(v)).expect("non-empty");
        let iterations = ctx.budget(g.num_vertices()) * 2;
        let config = SingleSpaceConfig::new(iterations, SEED);
        // Interleave thread counts inside each round so scheduler noise
        // hits every configuration alike; round 0 is the warm-up.
        let mut best = [f64::MAX; 3];
        // Chain-observed hit rate per thread count (the threaded figures
        // differ from sequential because prefetch warming converts would-be
        // misses into hits; last round's observation is reported).
        let mut hit_rates = [0.0f64; 3];
        let mut fingerprint: Option<(u64, u64, u64)> = None;
        let mut deterministic = true;
        let mut spd_passes = 0u64;
        for round in 0..=sampler_rounds {
            for (ti, &threads) in thread_counts.iter().enumerate() {
                let prefetch = PrefetchConfig::with_threads(threads);
                let started = Instant::now();
                let est = pipeline::run_single(g, r, &config, &prefetch).expect("valid config");
                let secs = started.elapsed().as_secs_f64();
                if round > 0 {
                    best[ti] = best[ti].min(secs);
                }
                let fp = (est.bc.to_bits(), est.bc_corrected.to_bits(), est.spd_passes);
                match &fingerprint {
                    None => fingerprint = Some(fp),
                    Some(expect) => deterministic &= *expect == fp,
                }
                hit_rates[ti] = est.oracle_stats.hit_rate();
                if threads == 1 {
                    spd_passes = est.spd_passes;
                }
            }
        }
        all_deterministic &= deterministic;
        let hit_rate_1t = hit_rates[0];
        let rates: Vec<f64> = best.iter().map(|b| iterations as f64 / b).collect();
        for (ti, &threads) in thread_counts.iter().enumerate() {
            tp.push(vec![
                ds.name.into(),
                threads.to_string(),
                format!("{:.0}", rates[ti]),
                format!("{:.2}x", rates[ti] / rates[0]),
                format!("{:.3}", hit_rates[ti]),
                spd_passes.to_string(),
            ]);
        }
        if !sampler_json.is_empty() {
            sampler_json.push_str(",\n");
        }
        sampler_json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"probe\": {r}, \"iterations\": {iterations}, \
             \"samples_per_sec\": {{\"1\": {:.1}, \"2\": {:.1}, \"4\": {:.1}}}, \
             \"speedup_2t\": {:.3}, \"speedup_4t\": {:.3}, \
             \"oracle_hit_rate_sequential\": {hit_rate_1t:.4}, \
             \"bit_identical_across_threads\": {deterministic}}}",
            ds.name,
            rates[0],
            rates[1],
            rates[2],
            rates[1] / rates[0],
            rates[2] / rates[0],
        ));
    }
    tp.emit(&ctx.out, "perf_pipeline").expect("emit perf_pipeline");
    assert!(all_deterministic, "pipeline output diverged across thread counts");

    let json = format!(
        "{{\n  \"schema\": \"mhbc-bench-kernels-v2\",\n  \"generated_by\": \"experiments perf\",\n  \
         \"quick\": {},\n  \"host_cores\": {cores},\n  \"kernel\": [\n{kernel_json}\n  ],\n  \
         \"hybrid_vs_topdown_geomean\": {hybrid_geomean:.3},\n  \
         \"hybrid_vs_topdown_low_diameter_geomean\": {low_geomean:.3},\n  \
         \"auto_vs_topdown_min\": {auto_min:.3},\n  \
         \"hybrid_vs_legacy_geomean\": {legacy_geomean:.3},\n  \
         \"topdown_vs_legacy_geomean\": {td_legacy_geomean:.3},\n  \
         \"sampler\": [\n{sampler_json}\n  ],\n  \
         \"sampler_bit_identical_all\": {all_deterministic}\n}}\n",
        ctx.quick,
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    eprintln!(
        "[perf] wrote BENCH_kernels.json (hybrid/topdown geomean {hybrid_geomean:.3}, \
         low-diameter {low_geomean:.3}, auto min {auto_min:.3}, host cores {cores})"
    );

    // --- Preprocessing: reduction ratio, reduced-kernel ns/edge, and
    // sampler throughput at --preprocess off/prune/full, per T3 graph.
    // Emits `BENCH_preproc.json` next to `BENCH_kernels.json`.
    use mhbc_graph::reduce::{reduce, ReduceLevel, ReducedGraph};
    use mhbc_spd::{SpdView, ViewCalculator};

    let levels = [ReduceLevel::Off, ReduceLevel::Prune, ReduceLevel::Full];
    let mut tpre = Table::new(
        "PERF/preproc - graph reduction: size, reduced-pass ns per original edge, sampler samples/sec",
        &["graph", "level", "n_H", "m_H", "work ratio", "ns/edge", "samples/sec", "vs off"],
    );
    let mut pre_json = String::new();
    let mut log_full_sum = 0.0;
    let mut sep_full_speedup = f64::NAN;
    for ds in &suite {
        let g = &ds.graph;
        let (n, m) = (g.num_vertices(), g.num_edges());
        // Reductions are built once per level; build cost is amortised over
        // the whole run in real use and recorded separately here.
        let mut reds: Vec<(ReduceLevel, Option<ReducedGraph>, f64)> = Vec::new();
        for level in levels {
            let started = Instant::now();
            let red = match level {
                ReduceLevel::Off => None,
                level => Some(reduce(g, level).expect("unweighted suite reduces at any level")),
            };
            reds.push((level, red, started.elapsed().as_secs_f64() * 1e3));
        }
        let full = reds[2].1.as_ref().expect("full reduction built");
        // Probe: the highest-degree vertex that survives the full reduction
        // (so the same probe is valid at every level).
        let r = (0..n as Vertex)
            .filter(|&v| full.is_retained(v))
            .max_by_key(|&v| g.degree(v))
            .expect("some vertex survives");

        let iterations = ctx.budget(n) * 4;
        let config = SingleSpaceConfig::new(iterations, SEED);
        let kernel_passes: u32 = if ctx.quick { 20 } else { 60 };
        // Interleaved min-of-rounds, levels alternating inside each round so
        // scheduler noise hits all levels alike; round 0 is the warm-up.
        let mut sampler_best = [f64::MAX; 3];
        let mut kernel_best = [f64::MAX; 3];
        let mut spd_passes = [0u64; 3];
        let mut row = Vec::new();
        for round in 0..rounds {
            for (li, (_, red, _)) in reds.iter().enumerate() {
                let view = SpdView::from_option(g, red.as_ref());
                let started = Instant::now();
                let est =
                    pipeline::run_single_view(view, r, &config, &PrefetchConfig::sequential())
                        .expect("valid config");
                let secs = started.elapsed().as_secs_f64();
                if round > 0 {
                    sampler_best[li] = sampler_best[li].min(secs);
                }
                spd_passes[li] = est.spd_passes;

                // Raw reduced-pass cost, normalised per *original* edge so
                // levels are comparable: one dependency row per pass,
                // sources cycling over the original id space.
                let mut calc = ViewCalculator::new(view);
                let started = Instant::now();
                let mut s = 0u32;
                for _ in 0..kernel_passes {
                    calc.dependency_on_many(s % n as u32, &[r], &mut row);
                    s = s.wrapping_add(97);
                }
                let ns = started.elapsed().as_secs_f64() * 1e9 / (kernel_passes as f64 * m as f64);
                if round > 0 {
                    kernel_best[li] = kernel_best[li].min(ns);
                }
            }
        }

        let mut level_json = String::new();
        let off_rate = iterations as f64 / sampler_best[0];
        for (li, (level, red, build_ms)) in reds.iter().enumerate() {
            let (n_h, m_h, ratio) = match red {
                None => (n, m, 1.0),
                Some(red) => {
                    let s = red.stats();
                    (s.reduced_vertices, s.reduced_edges, s.work_ratio())
                }
            };
            let rate = iterations as f64 / sampler_best[li];
            tpre.push(vec![
                ds.name.into(),
                level.as_str().into(),
                n_h.to_string(),
                m_h.to_string(),
                format!("{ratio:.2}x"),
                format!("{:.2}", kernel_best[li]),
                format!("{rate:.0}"),
                format!("{:.2}x", rate / off_rate),
            ]);
            if !level_json.is_empty() {
                level_json.push_str(", ");
            }
            level_json.push_str(&format!(
                "\"{}\": {{\"reduced_vertices\": {n_h}, \"reduced_edges\": {m_h}, \
                 \"work_ratio\": {ratio:.3}, \"build_ms\": {build_ms:.2}, \
                 \"kernel_ns_per_edge\": {:.3}, \"samples_per_sec\": {rate:.1}, \
                 \"spd_passes\": {}}}",
                level.as_str(),
                kernel_best[li],
                spd_passes[li],
            ));
        }
        let full_speedup = (iterations as f64 / sampler_best[2]) / off_rate;
        log_full_sum += full_speedup.ln();
        if ds.name == "sep" {
            sep_full_speedup = full_speedup;
        }
        if !pre_json.is_empty() {
            pre_json.push_str(",\n");
        }
        pre_json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"vertices\": {n}, \"edges\": {m}, \"probe\": {r}, \
             \"iterations\": {iterations},\n     \"levels\": {{{level_json}}},\n     \
             \"full_speedup\": {full_speedup:.3}}}",
            ds.name
        ));
    }
    let full_geomean = (log_full_sum / suite.len() as f64).exp();
    tpre.emit(&ctx.out, "perf_preproc").expect("emit perf_preproc");

    let json = format!(
        "{{\n  \"schema\": \"mhbc-bench-preproc-v1\",\n  \"generated_by\": \"experiments perf\",\n  \
         \"quick\": {},\n  \"host_cores\": {cores},\n  \"method\": \"single-thread sequential \
         sampler, min-of-interleaved-rounds; ns/edge is one reduced dependency pass per \
         original edge\",\n  \"graphs\": [\n{pre_json}\n  ],\n  \
         \"samples_per_sec_geomean_full_over_off\": {full_geomean:.3},\n  \
         \"sep_full_speedup\": {sep_full_speedup:.3}\n}}\n",
        ctx.quick,
    );
    std::fs::write("BENCH_preproc.json", &json).expect("write BENCH_preproc.json");
    eprintln!(
        "[perf] wrote BENCH_preproc.json (full/off samples/sec geomean: {full_geomean:.3}, \
         sep: {sep_full_speedup:.3})"
    );

    perf_adaptive(ctx, &suite, cores);
}

/// Adaptive-estimation trajectory: per family, the iterations the
/// `TargetStderr` engine needs to reach the planner's `ε` against the fixed
/// Ineq 14 budget; the segment-mode overhead vs. the old run-to-completion
/// loop (guarded at ≤ 2% on `ba`); and the 16-probe scheduler's budget
/// allocation. Emits `BENCH_adaptive.json`.
fn perf_adaptive(ctx: &Ctx, suite: &[workloads::Dataset], cores: usize) {
    use mhbc_core::planner::{plan_single, MuSource, PlanError};
    use mhbc_core::schedule::{run_probe_schedule, ScheduleConfig};
    use mhbc_core::{EngineConfig, StopReason, StoppingRule};

    let (eps, delta) = (0.05, 0.05);

    // --- Adaptive vs. fixed-plan budget per family (hub probe). The plan
    // is the paper's non-asymptotic worst-case bound; the adaptive stop
    // uses the chain's observed variance, so it should undercut the plan
    // substantially (the acceptance bar: <= 0.8x on >= 4 of 7 families).
    let mut ta = Table::new(
        "PERF/adaptive - iterations to reach the planner's epsilon: fixed Ineq 14 plan vs TargetStderr engine",
        &["graph", "mu", "planned T", "adaptive T", "ratio", "reached", "se @ stop", "ESS", "tau"],
    );
    let mut fam_json = String::new();
    let mut within_08 = 0usize;
    for ds in suite {
        let g = &ds.graph;
        let r = (0..g.num_vertices() as Vertex).max_by_key(|&v| g.degree(v)).expect("non-empty");
        let plan = match plan_single(g, r, eps, delta, MuSource::Exact { threads: 0 }) {
            Ok(plan) => plan,
            Err(PlanError::ZeroBetweenness) => continue,
            Err(e) => panic!("plan failed on {}: {e}", ds.name),
        };
        let rule = StoppingRule::TargetStderr { epsilon: eps, delta };
        let (est, report) =
            SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(plan.iterations, SEED))
                .expect("valid config")
                .into_engine(EngineConfig::adaptive(rule))
                .run();
        let reached = report.reason == StopReason::TargetReached;
        let ratio = report.iterations as f64 / plan.iterations as f64;
        if reached && ratio <= 0.8 {
            within_08 += 1;
        }
        ta.push(vec![
            ds.name.into(),
            format!("{:.2}", plan.mu),
            plan.iterations.to_string(),
            report.iterations.to_string(),
            format!("{ratio:.3}x"),
            reached.to_string(),
            format!("{:.5}", report.stderr),
            format!("{:.0}", report.ess),
            format!("{:.1}", report.tau),
        ]);
        if !fam_json.is_empty() {
            fam_json.push_str(",\n");
        }
        fam_json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"probe\": {r}, \"mu\": {:.3}, \"epsilon\": {eps}, \
             \"delta\": {delta}, \"planned_iterations\": {}, \"adaptive_iterations\": {}, \
             \"ratio_vs_plan\": {ratio:.4}, \"target_reached\": {reached}, \
             \"stderr_at_stop\": {:.6}, \"ess\": {:.1}, \"tau\": {:.2}, \
             \"final_bc\": {:.6}}}",
            ds.name,
            plan.mu,
            plan.iterations,
            report.iterations,
            report.stderr,
            report.ess,
            report.tau,
            est.bc
        ));
    }
    ta.emit(&ctx.out, "perf_adaptive").expect("emit perf_adaptive");

    // --- Segment-mode overhead vs. the old run-to-completion loop on `ba`
    // (interleaved min-of-rounds; the manual `step()` loop below IS the
    // historical `run()` body). The engine must not tax the PR 2-4
    // hot-path wins: guard at <= 2% ns/iter.
    let ba = &suite[0];
    assert_eq!(ba.name, "ba", "suite order changed; update the overhead guard");
    let g = &ba.graph;
    let r = (0..g.num_vertices() as Vertex).max_by_key(|&v| g.degree(v)).expect("non-empty");
    let iterations = ctx.budget(g.num_vertices()) * 2;
    let config = SingleSpaceConfig::new(iterations, SEED);
    let overhead_rounds = 9;
    let (mut manual_best, mut engine_best) = (f64::MAX, f64::MAX);
    for round in 0..=overhead_rounds {
        // Manual loop: the pre-engine `run()` verbatim.
        let started = Instant::now();
        let mut sampler = SingleSpaceSampler::new(g, r, config.clone()).expect("valid config");
        for _ in 0..iterations {
            sampler.step();
        }
        let manual_est = sampler.finish();
        let manual_secs = started.elapsed().as_secs_f64();

        // Engine loop: segments + streaming diagnostics.
        let started = Instant::now();
        let (engine_est, _) = SingleSpaceSampler::new(g, r, config.clone())
            .expect("valid config")
            .into_engine(EngineConfig::fixed())
            .run();
        let engine_secs = started.elapsed().as_secs_f64();

        assert_eq!(
            manual_est.bc.to_bits(),
            engine_est.bc.to_bits(),
            "engine must reproduce the manual loop bitwise"
        );
        if round > 0 {
            manual_best = manual_best.min(manual_secs);
            engine_best = engine_best.min(engine_secs);
        }
    }
    let manual_ns = manual_best * 1e9 / iterations as f64;
    let engine_ns = engine_best * 1e9 / iterations as f64;
    let overhead_pct = (engine_ns / manual_ns - 1.0) * 100.0;
    eprintln!(
        "[perf] segment overhead on ba: manual {manual_ns:.0} ns/iter, engine {engine_ns:.0} \
         ns/iter, overhead {overhead_pct:+.2}%"
    );
    assert!(
        overhead_pct <= 2.0,
        "segment-mode overhead {overhead_pct:.2}% exceeds the 2% guard \
         (manual {manual_ns:.1} ns/iter vs engine {engine_ns:.1} ns/iter)"
    );

    // --- Scheduler budget allocation for a 16-probe rank on `ba`: top
    // degrees, per-probe stderr target, widest-interval-first.
    let mut order: Vec<Vertex> = (0..g.num_vertices() as Vertex).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let probes: Vec<Vertex> = order.into_iter().take(16).collect();
    let sched_budget = 16 * ctx.budget(g.num_vertices());
    let sched = run_probe_schedule(
        mhbc_spd::SpdView::direct(g),
        &probes,
        ScheduleConfig::target_stderr(sched_budget, 0.02, 0.05, SEED).with_segment(256),
    )
    .expect("valid probes");
    let mut ts = Table::new(
        "PERF/scheduler - 16-probe adaptive rank budget allocation (ba, widest-interval-first)",
        &["probe", "allocated", "reached", "ci halfwidth", "BC (corrected)"],
    );
    let mut sched_json = String::new();
    for o in &sched.probes {
        ts.push(vec![
            o.probe.to_string(),
            o.allocated.to_string(),
            o.reached.to_string(),
            format!("{:.5}", o.ci_halfwidth),
            format!("{:.6}", o.estimate.bc_corrected),
        ]);
        if !sched_json.is_empty() {
            sched_json.push_str(", ");
        }
        sched_json.push_str(&format!(
            "{{\"probe\": {}, \"allocated\": {}, \"reached\": {}, \"ci_halfwidth\": {:.6}}}",
            o.probe, o.allocated, o.reached, o.ci_halfwidth
        ));
    }
    ts.emit(&ctx.out, "perf_scheduler").expect("emit perf_scheduler");

    let json = format!(
        "{{\n  \"schema\": \"mhbc-bench-adaptive-v1\",\n  \"generated_by\": \"experiments perf\",\n  \
         \"quick\": {},\n  \"host_cores\": {cores},\n  \"families\": [\n{fam_json}\n  ],\n  \
         \"families_within_08x_of_plan\": {within_08},\n  \
         \"segment_overhead\": {{\"graph\": \"ba\", \"iterations\": {iterations}, \
         \"manual_ns_per_iter\": {manual_ns:.2}, \"engine_ns_per_iter\": {engine_ns:.2}, \
         \"overhead_pct\": {overhead_pct:.3}}},\n  \
         \"scheduler_16probe\": {{\"graph\": \"ba\", \"budget\": {sched_budget}, \
         \"spent\": {}, \"rounds\": {}, \"target_se\": 0.02, \
         \"probes\": [{sched_json}]}}\n}}\n",
        ctx.quick, sched.spent, sched.rounds,
    );
    std::fs::write("BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    eprintln!(
        "[perf] wrote BENCH_adaptive.json ({within_08} of {} families within 0.8x of plan, \
         segment overhead {overhead_pct:+.2}%)",
        suite.len()
    );
}

// ---------------------------------------------------------------- F9 ----

fn f9(ctx: &Ctx) {
    let mut t = Table::new(
        "F9 - soundness: Eq 7's true limit vs BC(r) (structural bias), and what each estimator reports",
        &["graph", "probe", "BC(r)", "eq7 limit", "bias %", "eq7 @budget", "corrected @budget"],
    );
    for ds in workloads::standard_suite(ctx.quick) {
        let g = &ds.graph;
        let exact = exact_betweenness_par(g, 0);
        for (label, r) in probe_list(g, &exact, ds.separator_probe) {
            let truth = exact[r as usize];
            let limit = optimal::eq7_limit(&dependency_profile_par(g, r, 0));
            let budget = ctx.budget(g.num_vertices()) * 2;
            let est = SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(budget, SEED))
                .expect("valid config")
                .run();
            t.push(vec![
                ds.name.into(),
                label.into(),
                f(truth),
                f(limit),
                format!("{:.1}", (limit / truth - 1.0) * 100.0),
                f(est.bc),
                f(est.bc_corrected),
            ]);
        }
    }
    t.emit(&ctx.out, "f9").expect("emit f9");
}
