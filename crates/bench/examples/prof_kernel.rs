//! Quick kernel profiler: frontier vs legacy BFS+accumulation across graph
//! sizes, min-of-rounds to dodge scheduler noise. Complements the Criterion
//! `kernels` bench with a single-command size sweep.
//!
//! ```text
//! cargo run --release -p mhbc-bench --example prof_kernel
//! ```

use mhbc_graph::generators;
use mhbc_spd::{legacy::LegacyBfsSpd, BfsSpd};
use rand::{rngs::SmallRng, SeedableRng};
use std::time::Instant;

fn bench(n: usize, deg: usize, passes: u32) {
    let mut rng = SmallRng::seed_from_u64(mhbc_bench::SEED);
    let g = generators::barabasi_albert(n, deg, &mut rng);
    let m = g.num_edges() as f64;
    let rounds = 5;
    let mut delta = Vec::new();

    let mut frontier = BfsSpd::new(n);
    let mut legacy = LegacyBfsSpd::new(n);
    for w in 0..3u32 {
        frontier.compute(&g, w * 97 % n as u32);
        legacy.compute(&g, w * 97 % n as u32);
    }

    let (mut ft, mut lt) = (f64::MAX, f64::MAX);
    for _ in 0..rounds {
        let t = Instant::now();
        let mut s = 0u32;
        for _ in 0..passes {
            frontier.compute(&g, s % n as u32);
            frontier.accumulate_dependencies(&g, &mut delta);
            s = s.wrapping_add(97);
        }
        ft = ft.min(t.elapsed().as_secs_f64() * 1e9 / (passes as f64 * m));

        let t = Instant::now();
        let mut s = 0u32;
        for _ in 0..passes {
            legacy.compute(&g, s % n as u32);
            legacy.accumulate_dependencies(&g, &mut delta);
            s = s.wrapping_add(97);
        }
        lt = lt.min(t.elapsed().as_secs_f64() * 1e9 / (passes as f64 * m));
    }
    println!(
        "n={n:>7} m={m:>8.0}: legacy {lt:.2} ns/e, frontier {ft:.2} ns/e, speedup {:.2}x",
        lt / ft
    );
}

fn main() {
    bench(1_500, 4, 200);
    bench(4_000, 4, 100);
    bench(20_000, 4, 30);
    bench(100_000, 4, 8);
    bench(400_000, 4, 3);
}
