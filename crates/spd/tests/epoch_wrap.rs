//! Regression tests for the 256-pass epoch wrap of the frontier kernels.
//!
//! `BfsSpd` stamps distances as `(epoch << 24) | level` and starts each pass
//! by bumping the 8-bit epoch instead of clearing the arrays; once every 256
//! passes the stamp space wraps and a full reset must run so stale stamps
//! from a reused epoch value cannot alias fresh ones. These tests drive well
//! past the wrap on one reused workspace and pin `dist`/`σ`/`δ` to a fresh
//! workspace **bit for bit** on both sides of the boundary — for the plain
//! kernel and for the multiplicity-aware collapsed kernel (which carries its
//! own copy of the wrap branch).

use mhbc_graph::generators;
use mhbc_spd::BfsSpd;

/// Pass indices checked against a fresh workspace: around both sides of the
/// first wrap (the reset runs on the 255th reuse), a second-wrap probe, and
/// the final pass.
const CHECKPOINTS: [u32; 8] = [0, 100, 253, 254, 255, 256, 509, 599];

#[test]
fn plain_kernel_survives_the_epoch_wrap() {
    let g = generators::lollipop(7, 4);
    let n = g.num_vertices();
    let mut reused = BfsSpd::new(n);
    let (mut d_reused, mut d_fresh) = (Vec::new(), Vec::new());
    for pass in 0..600u32 {
        let s = (pass * 13) % n as u32;
        reused.compute(&g, s);
        reused.accumulate_dependencies(&g, &mut d_reused);
        if !CHECKPOINTS.contains(&pass) {
            continue;
        }
        let mut fresh = BfsSpd::new(n);
        fresh.compute(&g, s);
        fresh.accumulate_dependencies(&g, &mut d_fresh);
        for v in 0..n as u32 {
            assert_eq!(reused.dist(v), fresh.dist(v), "dist, pass {pass}, vertex {v}");
            assert_eq!(
                reused.sigma(v).to_bits(),
                fresh.sigma(v).to_bits(),
                "sigma, pass {pass}, vertex {v}"
            );
            assert_eq!(
                d_reused[v as usize].to_bits(),
                d_fresh[v as usize].to_bits(),
                "delta, pass {pass}, vertex {v}"
            );
        }
        assert_eq!(reused.order(), fresh.order(), "settle order, pass {pass}");
        assert_eq!(reused.level_starts(), fresh.level_starts(), "levels, pass {pass}");
    }
}

#[test]
fn collapsed_kernel_survives_the_epoch_wrap() {
    // Non-unit multiplicities and seeds so the collapsed arithmetic (not
    // just its degenerate form) crosses the wrap.
    let g = generators::grid(5, 4, false);
    let n = g.num_vertices();
    let mult: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
    let seeds: Vec<f64> = (0..n).map(|v| 1.0 + (v % 2) as f64).collect();
    let mut reused = BfsSpd::new(n);
    let (mut d_reused, mut d_fresh) = (Vec::new(), Vec::new());
    for pass in 0..600u32 {
        let s = (pass * 7) % n as u32;
        reused.compute_collapsed(&g, s, &mult);
        reused.accumulate_dependencies_collapsed(&g, &mult, &seeds, &mut d_reused);
        if !CHECKPOINTS.contains(&pass) {
            continue;
        }
        let mut fresh = BfsSpd::new(n);
        fresh.compute_collapsed(&g, s, &mult);
        fresh.accumulate_dependencies_collapsed(&g, &mult, &seeds, &mut d_fresh);
        for v in 0..n as u32 {
            assert_eq!(reused.dist(v), fresh.dist(v), "dist, pass {pass}, vertex {v}");
            assert_eq!(
                reused.sigma(v).to_bits(),
                fresh.sigma(v).to_bits(),
                "sigma, pass {pass}, vertex {v}"
            );
            assert_eq!(
                d_reused[v as usize].to_bits(),
                d_fresh[v as usize].to_bits(),
                "delta, pass {pass}, vertex {v}"
            );
        }
    }
}

#[test]
fn interleaving_plain_and_collapsed_passes_crosses_the_wrap_safely() {
    // A ViewCalculator-style workload alternates sources rapidly; make sure
    // mixing the two entry points on one workspace does not confuse the
    // epoch bookkeeping around the wrap.
    let g = generators::wheel(9);
    let n = g.num_vertices();
    let ones = vec![1.0; n];
    let mut reused = BfsSpd::new(n);
    let mut delta = Vec::new();
    for pass in 0..520u32 {
        let s = (pass * 5) % n as u32;
        if pass % 2 == 0 {
            reused.compute(&g, s);
        } else {
            reused.compute_collapsed(&g, s, &ones);
        }
        reused.accumulate_dependencies(&g, &mut delta);
        let mut fresh = BfsSpd::new(n);
        fresh.compute(&g, s);
        for v in 0..n as u32 {
            assert_eq!(reused.dist(v), fresh.dist(v), "pass {pass}, vertex {v}");
            assert_eq!(reused.sigma(v).to_bits(), fresh.sigma(v).to_bits());
        }
    }
}

#[test]
fn auto_mode_with_direction_switches_survives_the_epoch_wrap() {
    // PR 4 regression: the bottom-up (pull) levels of the hybrid kernel
    // read the same epoch-stamped state as push levels; drive an
    // `Auto`-mode workspace (and a forced-pull one, so bottom-up levels are
    // guaranteed on every pass) through two wraps, alternating modes
    // mid-stream, and pin every checkpoint to a fresh workspace bit for
    // bit.
    use mhbc_spd::KernelMode;
    let g = generators::wheel(15); // low diameter: pull levels engage
    let n = g.num_vertices();
    let mut reused = BfsSpd::with_mode(n, KernelMode::Auto);
    let (mut d_reused, mut d_fresh) = (Vec::new(), Vec::new());
    let mut saw_pull = false;
    for pass in 0..600u32 {
        let s = (pass * 11) % n as u32;
        // Alternate Auto with forced bottom-up so both directions cross
        // both wraps on the same reused stamps.
        if pass % 2 == 0 {
            reused.set_mode(KernelMode::Auto);
            reused.set_hybrid_params(14, 24);
        } else {
            reused.set_mode(KernelMode::Hybrid);
            reused.set_hybrid_params(u32::MAX, u32::MAX);
        }
        reused.compute(&g, s);
        saw_pull |= reused.pull_levels() > 0;
        reused.accumulate_dependencies(&g, &mut d_reused);
        if !CHECKPOINTS.contains(&pass) {
            continue;
        }
        let mut fresh = BfsSpd::new(n);
        fresh.compute(&g, s);
        fresh.accumulate_dependencies(&g, &mut d_fresh);
        assert_eq!(reused.order(), fresh.order(), "order, pass {pass}");
        assert_eq!(reused.level_starts(), fresh.level_starts(), "levels, pass {pass}");
        for v in 0..n as u32 {
            assert_eq!(reused.dist(v), fresh.dist(v), "dist, pass {pass}, vertex {v}");
            assert_eq!(
                reused.sigma(v).to_bits(),
                fresh.sigma(v).to_bits(),
                "sigma, pass {pass}, vertex {v}"
            );
            assert_eq!(
                d_reused[v as usize].to_bits(),
                d_fresh[v as usize].to_bits(),
                "delta, pass {pass}, vertex {v}"
            );
        }
    }
    assert!(saw_pull, "the forced-pull passes never ran a bottom-up level");
}
