#![allow(clippy::needless_range_loop)]
//! Property-based cross-validation of the shortest-path machinery.

use mhbc_graph::reduce::{reduce, ReduceLevel};
use mhbc_graph::{generators, CsrGraph, Vertex};
use mhbc_spd::{
    bidirectional::BidirectionalSearch, exact_betweenness, exact_betweenness_par,
    exact_betweenness_preprocessed, naive, BfsSpd, DependencyCalculator, DijkstraSpd, SpdView,
    ViewCalculator,
};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

/// Connected random graph from a seed (ER backbone, bridged if needed).
fn connected_graph(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::ensure_connected(generators::erdos_renyi_gnp(n, p, &mut rng), &mut rng)
}

/// Exact u128 shortest-path counting by level-DP, to validate the f64 σ.
fn sigma_u128(g: &CsrGraph, s: Vertex) -> Vec<u128> {
    let n = g.num_vertices();
    let dist = mhbc_graph::algo::bfs_distances(g, s);
    let mut order: Vec<Vertex> =
        (0..n as Vertex).filter(|&v| dist[v as usize] != u32::MAX).collect();
    order.sort_by_key(|&v| dist[v as usize]);
    let mut sigma = vec![0u128; n];
    sigma[s as usize] = 1;
    for &w in &order {
        if w == s {
            continue;
        }
        for &u in g.neighbors(w) {
            if dist[u as usize] != u32::MAX && dist[u as usize] + 1 == dist[w as usize] {
                sigma[w as usize] += sigma[u as usize];
            }
        }
    }
    sigma
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BFS σ equals exact integer counting.
    #[test]
    fn sigma_matches_exact_integers(n in 5usize..40, seed in any::<u64>(), src in 0usize..40) {
        let g = connected_graph(n, 0.15, seed);
        let s = (src % n) as Vertex;
        let mut spd = BfsSpd::new(n);
        spd.compute(&g, s);
        let exact = sigma_u128(&g, s);
        for v in 0..n {
            prop_assert_eq!(spd.sigma(v as Vertex), exact[v] as f64, "vertex {}", v);
        }
    }

    /// The frontier-swap kernel reproduces the legacy `VecDeque` kernel's
    /// `dist`/`sigma`/`delta` (and scaled delta) bit-for-bit on random
    /// graphs, including across workspace reuse.
    #[test]
    fn frontier_kernel_matches_legacy_bitwise(n in 4usize..40, seed in any::<u64>()) {
        let g = connected_graph(n, 0.15, seed);
        let mut new = BfsSpd::new(n);
        let mut old = mhbc_spd::legacy::LegacyBfsSpd::new(n);
        let (mut d1, mut d2) = (Vec::new(), Vec::new());
        for s in 0..n as Vertex {
            new.compute(&g, s);
            old.compute(&g, s);
            old.canonicalize_order();
            prop_assert_eq!(new.order(), &old.order[..], "order, source {}", s);
            for v in 0..n as Vertex {
                prop_assert_eq!(new.dist(v), old.dist[v as usize], "dist {}", v);
                prop_assert_eq!(
                    new.sigma(v).to_bits(),
                    old.sigma[v as usize].to_bits(),
                    "sigma {}", v
                );
            }
            new.accumulate_dependencies(&g, &mut d1);
            old.accumulate_dependencies(&g, &mut d2);
            for v in 0..n {
                prop_assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "delta {}", v);
            }
            new.accumulate_scaled_dependencies(&g, &mut d1);
            old.accumulate_scaled_dependencies(&g, &mut d2);
            for v in 0..n {
                prop_assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "scaled {}", v);
            }
        }
    }

    /// The recorded level boundaries partition the settle order by distance.
    #[test]
    fn level_starts_partition_order_by_distance(n in 4usize..40, seed in any::<u64>()) {
        let g = connected_graph(n, 0.15, seed);
        let mut spd = BfsSpd::new(n);
        spd.compute(&g, 0);
        let starts = spd.level_starts().to_vec();
        prop_assert_eq!(*starts.last().unwrap(), spd.reached());
        for lvl in 0..starts.len() - 1 {
            for &v in &spd.order()[starts[lvl]..starts[lvl + 1]] {
                prop_assert_eq!(spd.dist(v) as usize, lvl, "vertex {}", v);
            }
        }
    }

    /// Brandes accumulation equals the definition-level dependency scores.
    #[test]
    fn dependencies_match_naive(n in 5usize..30, seed in any::<u64>(), src in 0usize..30) {
        let g = connected_graph(n, 0.2, seed);
        let s = (src % n) as Vertex;
        let mut calc = DependencyCalculator::new(&g);
        let fast = calc.dependencies(&g, s).to_vec();
        let slow = naive::dependencies_naive(&g, s);
        for v in 0..n {
            prop_assert!((fast[v] - slow[v]).abs() < 1e-9, "vertex {}: {} vs {}", v, fast[v], slow[v]);
        }
    }

    /// Exact Brandes equals naive BC; parallel equals serial.
    #[test]
    fn brandes_matches_naive(n in 5usize..25, seed in any::<u64>()) {
        let g = connected_graph(n, 0.2, seed);
        let fast = exact_betweenness(&g);
        let par = exact_betweenness_par(&g, 3);
        let slow = naive::betweenness_naive(&g);
        for v in 0..n {
            prop_assert!((fast[v] - slow[v]).abs() < 1e-9);
            prop_assert!((fast[v] - par[v]).abs() < 1e-12);
        }
    }

    /// Dependency sums: Σ_v δ_s•(v) equals Σ_t (d(s,t) - 1)⁺ for connected
    /// graphs (each target contributes its path's interior count in
    /// expectation-free form: Σ_v δ_st(v) = d(s,t) - 1).
    #[test]
    fn dependency_sum_identity(n in 4usize..30, seed in any::<u64>(), src in 0usize..30) {
        let g = connected_graph(n, 0.18, seed);
        let s = (src % n) as Vertex;
        let mut calc = DependencyCalculator::new(&g);
        let delta_sum: f64 = calc.dependencies(&g, s).iter().sum();
        let dist = mhbc_graph::algo::bfs_distances(&g, s);
        let expected: f64 = dist
            .iter()
            .filter(|&&d| d != u32::MAX && d > 0)
            .map(|&d| (d - 1) as f64)
            .sum();
        prop_assert!((delta_sum - expected).abs() < 1e-9, "{} vs {}", delta_sum, expected);
    }

    /// Dijkstra with unit weights agrees with BFS everywhere.
    #[test]
    fn dijkstra_unit_equals_bfs(n in 4usize..30, seed in any::<u64>(), src in 0usize..30) {
        let g = connected_graph(n, 0.2, seed);
        let gw = g.map_weights(|_, _| 1.0).unwrap();
        let s = (src % n) as Vertex;
        let mut bfs = BfsSpd::new(n);
        let mut dij = DijkstraSpd::new(n);
        bfs.compute(&g, s);
        dij.compute(&gw, s);
        for v in 0..n as Vertex {
            prop_assert_eq!(bfs.dist(v) as f64, dij.dist(v));
            prop_assert_eq!(bfs.sigma(v), dij.sigma(v));
        }
    }

    /// Weighted Brandes equals weighted naive BC with random weights.
    #[test]
    fn weighted_brandes_matches_naive(n in 4usize..20, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
        let g = generators::assign_uniform_weights(&connected_graph(n, 0.25, seed), 1.0, 5.0, &mut rng);
        let fast = exact_betweenness(&g);
        let slow = naive::betweenness_naive_weighted(&g);
        for v in 0..n {
            prop_assert!((fast[v] - slow[v]).abs() < 1e-8, "vertex {}", v);
        }
    }

    /// Bidirectional search agrees with BFS on distance and σ for all pairs.
    #[test]
    fn bidirectional_matches_bfs(n in 4usize..25, seed in any::<u64>()) {
        let g = connected_graph(n, 0.18, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00D);
        let mut bb = BidirectionalSearch::new(n);
        let mut spd = BfsSpd::new(n);
        for s in 0..n as Vertex {
            spd.compute(&g, s);
            for t in 0..n as Vertex {
                if s == t {
                    continue;
                }
                let r = bb.query(&g, s, t, false, &mut rng).unwrap();
                prop_assert_eq!(r.distance, spd.dist(t), "{} -> {}", s, t);
                prop_assert_eq!(r.sigma, spd.sigma(t), "{} -> {}", s, t);
            }
        }
    }

    /// Linear-scaling identity: summing the length-scaled dependencies
    /// over *all* sources recovers exact betweenness —
    /// `BC(v) = (2/(n(n-1))) Σ_s d(s,v) · g_s(v)` (pairing (s,t) with
    /// (t,s) makes the scale factors telescope to 1).
    #[test]
    fn linear_scaling_sums_to_exact_bc(n in 4usize..25, seed in any::<u64>()) {
        let g = connected_graph(n, 0.22, seed);
        let exact = exact_betweenness(&g);
        let mut spd = BfsSpd::new(n);
        let mut scaled = Vec::new();
        let mut acc = vec![0.0f64; n];
        for s in 0..n as Vertex {
            spd.compute(&g, s);
            spd.accumulate_scaled_dependencies(&g, &mut scaled);
            for v in 0..n {
                acc[v] += scaled[v];
            }
        }
        let norm = (n * (n - 1)) as f64;
        for v in 0..n {
            let got = 2.0 * acc[v] / norm;
            prop_assert!((got - exact[v]).abs() < 1e-9, "vertex {}: {} vs {}", v, got, exact[v]);
        }
    }

    /// Degree-1 pruning corrections + reduced-graph Brandes reproduce
    /// whole-graph exact Brandes on random ER graphs — sparse enough to
    /// carry pendant trees and (without `ensure_connected`) disconnected
    /// components, the two things the correction bookkeeping must get
    /// right.
    #[test]
    fn reduction_matches_brandes_on_sparse_er(n in 8usize..60, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnp(n, 2.0 / n as f64, &mut rng);
        let want = exact_betweenness(&g);
        for level in [ReduceLevel::Off, ReduceLevel::Prune, ReduceLevel::Full] {
            let got = exact_betweenness_preprocessed(&g, level).unwrap();
            for v in 0..n {
                let tol = 1e-9 * want[v].abs().max(1.0);
                prop_assert!(
                    (got[v] - want[v]).abs() <= tol,
                    "vertex {} at {:?}: {} vs {}", v, level, got[v], want[v]
                );
            }
        }
    }

    /// Same identity on preferential-attachment graphs (heavy pendant mass
    /// at m = 1, twin-prone hubs) across attachment counts.
    #[test]
    fn reduction_matches_brandes_on_ba(n in 6usize..50, m in 1usize..4, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n.max(m + 1), m, &mut rng);
        let want = exact_betweenness(&g);
        for level in [ReduceLevel::Prune, ReduceLevel::Full] {
            let got = exact_betweenness_preprocessed(&g, level).unwrap();
            for v in 0..g.num_vertices() {
                let tol = 1e-9 * want[v].abs().max(1.0);
                prop_assert!(
                    (got[v] - want[v]).abs() <= tol,
                    "vertex {} at {:?}: {} vs {}", v, level, got[v], want[v]
                );
            }
        }
    }

    /// Same identity on the balanced-separator family (the Theorem 2
    /// workload the preprocessing benchmark targets).
    #[test]
    fn reduction_matches_brandes_on_separators(
        clusters in 2usize..4, per in 4usize..12, seed in any::<u64>()
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let hs = generators::hub_separator(clusters, per, 0.15, 2.min(per), &mut rng);
        let g = hs.graph;
        let want = exact_betweenness(&g);
        for level in [ReduceLevel::Prune, ReduceLevel::Full] {
            let got = exact_betweenness_preprocessed(&g, level).unwrap();
            for v in 0..g.num_vertices() {
                let tol = 1e-9 * want[v].abs().max(1.0);
                prop_assert!(
                    (got[v] - want[v]).abs() <= tol,
                    "vertex {} at {:?}: {} vs {}", v, level, got[v], want[v]
                );
            }
        }
    }

    /// Reduced-view dependency rows equal direct rows for every source and
    /// every retained probe (the mapping the MH samplers rely on).
    #[test]
    fn reduced_dependency_rows_match_direct(n in 6usize..36, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnp(n, 2.5 / n as f64, &mut rng);
        for level in [ReduceLevel::Prune, ReduceLevel::Full] {
            let red = reduce(&g, level).unwrap();
            let mut direct = DependencyCalculator::new(&g);
            let mut through = ViewCalculator::new(SpdView::preprocessed(&g, &red));
            for r in (0..n as Vertex).filter(|&r| red.is_retained(r)) {
                for v in 0..n as Vertex {
                    let want = direct.dependency_on(&g, v, r);
                    let got = through.dependency_on(v, r);
                    let tol = 1e-9 * want.abs().max(1.0);
                    prop_assert!(
                        (got - want).abs() <= tol,
                        "source {} probe {} at {:?}: {} vs {}", v, r, level, got, want
                    );
                }
            }
        }
    }

    /// Betweenness is invariant under vertex relabelling.
    #[test]
    fn bc_invariant_under_relabelling(n in 4usize..20, seed in any::<u64>()) {
        let g = connected_graph(n, 0.25, seed);
        // Reverse relabelling: new id = n - 1 - old id.
        let relabel = |v: Vertex| (n as Vertex - 1) - v;
        let edges: Vec<(Vertex, Vertex)> =
            g.edges().map(|(u, v, _)| (relabel(u), relabel(v))).collect();
        let g2 = CsrGraph::from_edges(n, &edges).unwrap();
        let bc1 = exact_betweenness(&g);
        let bc2 = exact_betweenness(&g2);
        for v in 0..n as Vertex {
            prop_assert!((bc1[v as usize] - bc2[relabel(v) as usize]).abs() < 1e-12);
        }
    }
}
