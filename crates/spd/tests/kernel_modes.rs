//! Property tests pinning the direction-optimizing kernel's modes to each
//! other — and to the legacy queue kernel — **bit for bit**.
//!
//! The canonical within-level settle order (ascending vertex id) makes
//! `dist`, σ, δ, and scaled-δ identical floating-point values across
//! [`KernelMode::TopDown`], [`KernelMode::Hybrid`] (default α/β *and*
//! forced bottom-up), and [`KernelMode::Auto`], on every graph — which is
//! what lets `Auto` be the default everywhere without perturbing a single
//! sampler output. These tests sweep random ER / BA / grid / separator
//! graphs, the collapsed multiplicity kernels, and mode switches on reused
//! pool workspaces.

use mhbc_graph::{generators, CsrGraph, Vertex};
use mhbc_spd::{BfsSpd, KernelMode, SpdView, SpdWorkspacePool};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

/// One of the four random families, picked by `family % 4`.
fn random_graph(family: usize, n: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    match family % 4 {
        0 => generators::ensure_connected(
            generators::erdos_renyi_gnp(n, 3.0 / n as f64, &mut rng),
            &mut rng,
        ),
        1 => generators::barabasi_albert(n, 2, &mut rng),
        2 => generators::grid(n / 5 + 2, 5, false),
        _ => generators::hub_separator(2 + n % 3, (n / 3).max(4), 0.15, 2, &mut rng).graph,
    }
}

/// Every kernel variant under test: the mode plus optional forced α/β.
fn variants(n: usize) -> Vec<(&'static str, BfsSpd)> {
    let mut forced = BfsSpd::with_mode(n, KernelMode::Hybrid);
    forced.set_hybrid_params(u32::MAX, u32::MAX);
    vec![
        ("topdown", BfsSpd::with_mode(n, KernelMode::TopDown)),
        ("hybrid", BfsSpd::with_mode(n, KernelMode::Hybrid)),
        ("hybrid-forced-pull", forced),
        ("auto", BfsSpd::with_mode(n, KernelMode::Auto)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// hybrid ≡ top-down ≡ auto ≡ legacy, bit for bit, on all four random
    /// families: settle order, dist, σ, δ, and scaled δ.
    #[test]
    fn all_modes_match_legacy_bitwise(
        family in 0usize..4, n in 8usize..40, seed in any::<u64>()
    ) {
        let g = random_graph(family, n, seed);
        let n = g.num_vertices();
        let mut legacy = mhbc_spd::legacy::LegacyBfsSpd::new(n);
        let mut kernels = variants(n);
        let (mut d_ref, mut d_got) = (Vec::new(), Vec::new());
        for s in (0..n as Vertex).step_by(3) {
            legacy.compute(&g, s);
            legacy.canonicalize_order();
            for (name, spd) in kernels.iter_mut() {
                spd.compute(&g, s);
                prop_assert_eq!(spd.order(), &legacy.order[..], "order, {} source {}", name, s);
                for v in 0..n as Vertex {
                    prop_assert_eq!(
                        spd.dist(v), legacy.dist[v as usize], "dist {} {} source {}", name, v, s
                    );
                    prop_assert_eq!(
                        spd.sigma(v).to_bits(),
                        legacy.sigma[v as usize].to_bits(),
                        "sigma {} {} source {}", name, v, s
                    );
                }
                legacy.accumulate_dependencies(&g, &mut d_ref);
                spd.accumulate_dependencies(&g, &mut d_got);
                for v in 0..n {
                    prop_assert_eq!(
                        d_got[v].to_bits(), d_ref[v].to_bits(),
                        "delta {} {} source {}", name, v, s
                    );
                }
                legacy.accumulate_scaled_dependencies(&g, &mut d_ref);
                spd.accumulate_scaled_dependencies(&g, &mut d_got);
                for v in 0..n {
                    prop_assert_eq!(
                        d_got[v].to_bits(), d_ref[v].to_bits(),
                        "scaled {} {} source {}", name, v, s
                    );
                }
            }
        }
    }

    /// The collapsed multiplicity kernels agree across every mode (legacy
    /// has no collapsed variant; top-down is the reference).
    #[test]
    fn collapsed_kernels_match_across_modes(
        family in 0usize..4, n in 8usize..36, seed in any::<u64>()
    ) {
        let g = random_graph(family, n, seed);
        let n = g.num_vertices();
        let mult: Vec<f64> = (0..n).map(|v| 1.0 + ((v as u64 ^ seed) % 3) as f64).collect();
        let seeds: Vec<f64> = (0..n).map(|v| 1.0 + ((v as u64 ^ seed) % 2) as f64).collect();
        let mut reference = BfsSpd::with_mode(n, KernelMode::TopDown);
        let mut kernels = variants(n);
        let (mut d_ref, mut d_got) = (Vec::new(), Vec::new());
        for s in (0..n as Vertex).step_by(4) {
            reference.compute_collapsed(&g, s, &mult);
            reference.accumulate_dependencies_collapsed(&g, &mult, &seeds, &mut d_ref);
            for (name, spd) in kernels.iter_mut() {
                spd.compute_collapsed(&g, s, &mult);
                prop_assert_eq!(spd.order(), reference.order(), "order, {} source {}", name, s);
                for v in 0..n as Vertex {
                    prop_assert_eq!(
                        spd.sigma(v).to_bits(),
                        reference.sigma(v).to_bits(),
                        "sigma {} {} source {}", name, v, s
                    );
                }
                spd.accumulate_dependencies_collapsed(&g, &mult, &seeds, &mut d_got);
                for v in 0..n {
                    prop_assert_eq!(
                        d_got[v].to_bits(), d_ref[v].to_bits(),
                        "delta {} {} source {}", name, v, s
                    );
                }
            }
        }
    }

    /// Workspace pools bound to views of different kernel modes hand out
    /// calculators whose dependency rows are bit-identical — including when
    /// one pool's workspaces are reused across many sources (forced-mode
    /// switches mid-pool never leak state).
    #[test]
    fn pools_of_every_mode_agree(n in 8usize..30, seed in any::<u64>()) {
        let g = random_graph(0, n, seed);
        let n = g.num_vertices();
        let r = (seed % n as u64) as Vertex;
        let reference: Vec<f64> = {
            let pool = SpdWorkspacePool::for_view(
                SpdView::direct(&g).with_kernel(KernelMode::TopDown),
            );
            let mut calc = pool.checkout();
            (0..n as Vertex).map(|v| calc.dependency_on(v, r)).collect()
        };
        for mode in [KernelMode::Hybrid, KernelMode::Auto] {
            let pool = SpdWorkspacePool::for_view(SpdView::direct(&g).with_kernel(mode));
            let mut calc = pool.checkout();
            for v in 0..n as Vertex {
                prop_assert_eq!(
                    calc.dependency_on(v, r).to_bits(),
                    reference[v as usize].to_bits(),
                    "source {} mode {:?}", v, mode
                );
            }
        }
    }
}
