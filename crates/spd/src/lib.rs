//! # mhbc-spd
//!
//! Shortest-path DAGs (SPDs), Brandes dependency accumulation, exact
//! betweenness, and shortest-path samplers.
//!
//! This crate implements the machinery of §2.1 of the paper:
//!
//! - [`BfsSpd`] / [`DijkstraSpd`] — the shortest-path DAG rooted at a source
//!   `s`, i.e. distances `d(s, ·)`, path counts `σ_{s·}`, and a traversal
//!   order supporting backward accumulation. `O(|E|)` for unweighted graphs
//!   and `O(|E| + |V| log |V|)` for positively weighted graphs, exactly the
//!   per-sample costs quoted in §4.1. The unweighted forward pass is
//!   direction-optimizing ([`KernelMode`]: top-down, bottom-up-hybrid, or
//!   auto), with every mode bit-identical by the canonical settle order.
//! - [`DependencyCalculator`] — the per-sample kernel: dependency scores
//!   `δ_{s•}(v)` for all `v` via Brandes's recursion (Eq 4), dispatching on
//!   graph weightedness, with reusable buffers (no per-call allocation).
//! - [`exact_betweenness`] / [`exact_betweenness_par`] — exact Brandes over
//!   all sources (ground truth for every experiment).
//! - [`dependency_profile`] / [`dependency_profile_par`] — `δ_{v•}(r)` for
//!   **all** sources `v` at a fixed probe vertex `r`: the normalisation
//!   constant of the optimal distribution (Eq 5), the exact `BC(r)`, and
//!   `µ(r)` (Theorem 1) all derive from this profile.
//! - [`path_sampler`] — σ-weighted uniform shortest-path sampling from an
//!   SPD (the RK baseline's primitive \[30\]).
//! - [`bidirectional`] — balanced bidirectional BFS `(s, t)` path counting
//!   and sampling (the KADABRA baseline's primitive \[7\]).
//! - [`naive`] — independent `O(n³)` reference implementations used by the
//!   test suites to cross-validate everything above.
//! - [`SpdView`] / [`ReducedCalculator`] / [`ViewCalculator`] — dependency
//!   evaluation *through a reduced graph* (`mhbc_graph::reduce`): pruning,
//!   twin collapsing, and relabelling shrink the per-sample pass while the
//!   mapping back to original vertex ids stays exact (see the `reduced`
//!   module docs for the formulas).
//! - [`exact_betweenness_preprocessed`] — exact Brandes through a
//!   reduction (`n_H` collapsed passes instead of `n` full ones).
//! - [`SpdWorkspacePool`] — a checkout pool of [`ViewCalculator`]
//!   workspaces for multi-threaded samplers (the prefetch pipeline and the
//!   chain ensembles).
//! - [`legacy`] — the pre-rewrite `VecDeque` BFS kernel, kept only as the
//!   bit-exactness and performance baseline for the frontier kernel.
//!
//! ## Conventions
//!
//! Betweenness is normalised as in Eq 1: `BC(v) = (1 / (n (n-1))) Σ_{s,t}
//! σ_st(v) / σ_st`, with `σ_st(v) = 0` whenever `v ∈ {s, t}`. Path counts σ
//! are `f64` (ratios stay exact until counts exceed 2^53; see DESIGN.md §3).
//!
//! ```
//! use mhbc_graph::generators;
//! use mhbc_spd::{exact_betweenness, BfsSpd};
//!
//! // Path 0-1-2-3: only the interior vertices carry betweenness, and by
//! // symmetry they carry the same amount (4 ordered pairs of 12 => 1/3).
//! let g = generators::path(4);
//! let bc = exact_betweenness(&g);
//! assert_eq!(bc[0], 0.0);
//! assert!((bc[1] - 1.0 / 3.0).abs() < 1e-12);
//! assert_eq!(bc[1], bc[2]);
//!
//! // The SPD rooted at 0 sees one shortest path to each vertex.
//! let mut spd = BfsSpd::new(g.num_vertices());
//! spd.compute(&g, 0);
//! assert_eq!(spd.dist(3), 3);
//! assert_eq!(spd.sigma(3), 1.0);
//! ```

pub mod bidirectional;
mod brandes;
mod dependency;
pub mod legacy;
pub mod naive;
pub mod path_sampler;
mod pool;
mod reduced;
mod unweighted;
mod weighted;

pub use brandes::{
    dependency_profile, dependency_profile_par, exact_betweenness, exact_betweenness_of,
    exact_betweenness_par, DependencyProfile,
};
pub use dependency::DependencyCalculator;
pub use pool::{PooledCalculator, SpdWorkspacePool};
pub use reduced::{
    dependency_profile_view, dependency_profile_view_par, exact_betweenness_preprocessed,
    exact_betweenness_reduced, ReducedCalculator, SpdView, ViewCalculator,
};
pub use unweighted::{BfsSpd, KernelMode, UNREACHED};
pub use weighted::DijkstraSpd;

/// Relative tolerance for deciding "equal length" shortest paths on weighted
/// graphs; see [`DijkstraSpd`] docs.
pub const WEIGHT_TIE_RELATIVE_EPS: f64 = 1e-12;
