//! Dependency evaluation through a reduced graph.
//!
//! The samplers in `mhbc-core` need one quantity per Metropolis–Hastings
//! step: the dependency `δ_{v•}(r)` of an **original** source `v` on an
//! **original** probe `r` (Eq 4). This module computes that quantity from a
//! [`ReducedGraph`] — pruned, collapsed, and relabelled — *exactly*, so the
//! chain's state space, proposal stream, and stationary distribution are
//! identical to sampling on the original graph; only the per-evaluation
//! cost shrinks.
//!
//! # The density mapping
//!
//! Let `G` be the original graph (`n` vertices), `R` the pruned graph with
//! pendant weights `ω` (each retained vertex stands for itself plus its
//! pruned pendant trees), and `H` the collapsed graph whose super-vertex
//! `z` carries multiplicity `μ(z)` (retained members) and total weight
//! `Ω(z) = Σ_{x ∈ z} ω(x)`. Every probe must be **retained** (pruned
//! probes have closed-form exact betweenness; see
//! [`ReducedGraph::exact_pruned_bc`]).
//!
//! For a *retained* source `v` (class `z_v`, weight `ω(v)`) and retained
//! probe `r` (class `z_r`, weight `ω(r)`), with `D(·)` the class-level
//! dependency of one source member computed by
//! [`BfsSpd::compute_collapsed`] + `accumulate_dependencies_collapsed`
//! (target seeds `Ω`):
//!
//! ```text
//! δ_{v•}(r) = D(z_r)                                  reduced-pair targets
//!           + [z_r ∈ N_H(z_v)] · (Ω(z_v) − ω(v)) / Σ_{u ∈ N_H(z_v)} μ(u)
//!                                                      same-class targets*
//!           + (ω(r) − 1)                               pendants hanging at r
//! ```
//!
//! and 0 when `v = r` or when `z_r` is unreached (different component).
//! The three terms: (1) shortest paths between retained vertices avoid
//! pendant trees, so their `δ` share is the reduced one, with each target
//! `t` standing for the `ω(t)` original targets routed through it; (2) the
//! *false-twin* members of `v`'s own class sit at distance 2 behind every
//! common neighbour (for *true* twins the mutual distance is 1 and the term
//! vanishes — marked `*`); (3) `r` is an interior articulation vertex on
//! the path from `v` to each of the `ω(r) − 1` vertices pruned into it.
//!
//! For a *pruned* source `v` with attachment `a = att(v)` every shortest
//! path leaves through `a`, so `δ_{v•}(r) = δ_{a•}(r)` for every retained
//! `r ≠ a`, while for `r = a` the probe is the articulation point of `v`'s
//! whole branch:
//!
//! ```text
//! δ_{v•}(att(v)) = C − 1 − |branch(v)|
//! ```
//!
//! (`C` the component's original size, `branch(v)` the maximal pruned
//! subtree hanging off `a` that contains `v`). These formulas are proved
//! against whole-graph Brandes by the reduction proptests.
//!
//! # Row coalescing
//!
//! Two original sources with equal [`ReducedGraph::row_group`] produce
//! *identical* dependency rows whenever neither is itself a probe (twins of
//! equal pendant weight; pendant vertices of the same attachment and
//! branch size). [`SpdView::row_key`] exposes a cache key built on this, so
//! density caches pay one SPD pass per *group*, not per vertex.

use crate::{BfsSpd, DependencyCalculator, DijkstraSpd, KernelMode, UNREACHED};
use mhbc_graph::reduce::{ReduceError, ReduceLevel, ReducedGraph, TwinKind, VertexState};
use mhbc_graph::{CsrGraph, Vertex};

/// A graph together with (optionally) its reduction — plus the SPD
/// [`KernelMode`] to evaluate with: the single handle the samplers, oracles,
/// and workspace pools thread through the stack. Cheap to copy; both modes
/// answer queries in **original** vertex ids.
///
/// Because every kernel mode is bit-identical (see [`KernelMode`]), the
/// mode is *not* part of [`SpdView::row_key`]: cached dependency rows are
/// interchangeable across modes, and switching modes mid-run can never
/// change a sampler's output.
#[derive(Clone, Copy)]
pub struct SpdView<'g> {
    graph: &'g CsrGraph,
    reduced: Option<&'g ReducedGraph>,
    kernel: KernelMode,
}

impl<'g> SpdView<'g> {
    /// A view that evaluates densities directly on `graph`
    /// ([`KernelMode::Auto`]).
    pub fn direct(graph: &'g CsrGraph) -> Self {
        SpdView { graph, reduced: None, kernel: KernelMode::Auto }
    }

    /// A view that evaluates densities through `reduced` (built from
    /// `graph` by [`mhbc_graph::reduce::reduce`]), in [`KernelMode::Auto`].
    ///
    /// # Panics
    /// If `reduced` was built for a different vertex count.
    pub fn preprocessed(graph: &'g CsrGraph, reduced: &'g ReducedGraph) -> Self {
        assert_eq!(
            reduced.orig_vertices(),
            graph.num_vertices(),
            "reduction was built for a different graph"
        );
        SpdView { graph, reduced: Some(reduced), kernel: KernelMode::Auto }
    }

    /// This view with an explicit SPD kernel mode; everything built from
    /// the view (calculators, pools, oracles, pipelines) inherits it.
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// The SPD kernel mode this view evaluates with.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }

    /// [`SpdView::preprocessed`] when a reduction exists, [`SpdView::direct`]
    /// otherwise — the idiom of every `--preprocess`-aware caller that holds
    /// an `Option<ReducedGraph>`.
    pub fn from_option(graph: &'g CsrGraph, reduced: Option<&'g ReducedGraph>) -> Self {
        match reduced {
            None => Self::direct(graph),
            Some(red) => Self::preprocessed(graph, red),
        }
    }

    /// The original graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The reduction, when this view has one.
    pub fn reduced(&self) -> Option<&'g ReducedGraph> {
        self.reduced
    }

    /// Number of vertices of the *original* graph (the sampler state
    /// space, whatever the reduction did).
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Whether original vertex `v` survives in the evaluation graph
    /// (always true for direct views).
    pub fn is_retained(&self, v: Vertex) -> bool {
        self.reduced.is_none_or(|red| red.is_retained(v))
    }

    /// Cache key under which `v`'s dependency row may be shared. Sources
    /// with equal keys have bit-identical rows; `v_is_probe` must be set
    /// when `v` belongs to the probe set (its own row contains a
    /// structural zero no twin shares).
    #[inline]
    pub fn row_key(&self, v: Vertex, v_is_probe: bool) -> u64 {
        match self.reduced {
            None => v as u64,
            Some(red) => {
                if v_is_probe {
                    (1u64 << 33) | v as u64
                } else {
                    (1u64 << 32) | red.row_group(v) as u64
                }
            }
        }
    }
}

impl std::fmt::Debug for SpdView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = self.kernel.as_str();
        match self.reduced {
            None => write!(f, "SpdView::direct({}, kernel={k})", self.graph),
            Some(r) => {
                write!(f, "SpdView::preprocessed({}, H={}, kernel={k})", self.graph, r.csr())
            }
        }
    }
}

/// Which unweighted kernel variant a reduction actually needs — the
/// cheapest one that is still exact. A reduction with no twin classes needs
/// no multiplicity arithmetic, and one with no pruned pendants needs no
/// target seeds either: "preprocess full" on an irreducible graph costs the
/// same per pass as no preprocessing at all (the variants degenerate to
/// each other bit for bit, so this is a pure dispatch optimisation).
enum UnweightedMode {
    /// No twins, no pendants: the plain frontier kernel.
    Plain,
    /// Pendants but no twins: plain forward pass, seeded backward pass
    /// (the all-ones multiplicity slice makes `*_collapsed` the seeded
    /// accumulation).
    Seeded,
    /// Twin classes present: multiplicity-aware σ and δ.
    Collapsed,
}

enum ReducedEngine {
    Unweighted(BfsSpd, UnweightedMode),
    /// Weighted reductions never collapse (enforced at build time); the
    /// bool is whether pendant seeds are needed.
    Weighted(DijkstraSpd, bool),
}

/// The reduced-graph counterpart of [`DependencyCalculator`]: evaluates
/// original-id dependency rows through a [`ReducedGraph`] with one SPD pass
/// over the (smaller, relabelled) reduced CSR per evaluation. See the
/// module docs for the exact mapping.
pub struct ReducedCalculator {
    engine: ReducedEngine,
    delta: Vec<f64>,
    passes: u64,
}

impl ReducedCalculator {
    /// A workspace sized for `red`'s reduced CSR, dispatched to the
    /// cheapest exact kernel variant (see `UnweightedMode`), in
    /// [`KernelMode::Auto`].
    pub fn new(red: &ReducedGraph) -> Self {
        Self::with_kernel(red, KernelMode::Auto)
    }

    /// [`ReducedCalculator::new`] with an explicit SPD [`KernelMode`]; the
    /// direction-optimizing machinery applies to the collapsed kernels too,
    /// and every mode is bit-identical.
    pub fn with_kernel(red: &ReducedGraph, kernel: KernelMode) -> Self {
        let h_n = red.csr().num_vertices();
        let has_twins = red.mults().iter().any(|&m| m > 1.0);
        let has_pendants = red.weights().iter().any(|&w| w > 1.0);
        let engine = if red.csr().is_weighted() {
            ReducedEngine::Weighted(DijkstraSpd::new(h_n), has_pendants)
        } else {
            let mode = if has_twins {
                UnweightedMode::Collapsed
            } else if has_pendants {
                UnweightedMode::Seeded
            } else {
                UnweightedMode::Plain
            };
            ReducedEngine::Unweighted(BfsSpd::with_mode(h_n, kernel), mode)
        };
        ReducedCalculator { engine, delta: Vec::with_capacity(h_n), passes: 0 }
    }

    /// One SPD pass from reduced vertex `h_src`, leaving the class-level
    /// dependencies in `self.delta`.
    fn pass(&mut self, red: &ReducedGraph, h_src: Vertex) {
        self.passes += 1;
        match &mut self.engine {
            ReducedEngine::Unweighted(spd, mode) => match mode {
                UnweightedMode::Plain => {
                    spd.compute(red.csr(), h_src);
                    spd.accumulate_dependencies(red.csr(), &mut self.delta);
                }
                UnweightedMode::Seeded => {
                    spd.compute(red.csr(), h_src);
                    spd.accumulate_dependencies_collapsed(
                        red.csr(),
                        red.mults(),
                        red.weights(),
                        &mut self.delta,
                    );
                }
                UnweightedMode::Collapsed => {
                    spd.compute_collapsed(red.csr(), h_src, red.mults());
                    spd.accumulate_dependencies_collapsed(
                        red.csr(),
                        red.mults(),
                        red.weights(),
                        &mut self.delta,
                    );
                }
            },
            ReducedEngine::Weighted(spd, seeded) => {
                spd.compute(red.csr(), h_src);
                if *seeded {
                    spd.accumulate_dependencies_seeded(red.csr(), red.weights(), &mut self.delta);
                } else {
                    spd.accumulate_dependencies(red.csr(), &mut self.delta);
                }
            }
        }
    }

    fn reached(&self, z: Vertex) -> bool {
        match &self.engine {
            ReducedEngine::Unweighted(spd, _) => spd.dist(z) != UNREACHED,
            ReducedEngine::Weighted(spd, _) => spd.dist(z).is_finite(),
        }
    }

    /// Maps the class-level pass in `self.delta` (rooted at `h_src`, whose
    /// acting member is `src_orig` with pendant weight `omega_src`) to
    /// original-probe densities. `pruned` carries `(att, branch)` when the
    /// true source is a pendant vertex attached at `att`.
    #[allow(clippy::too_many_arguments)]
    fn fill(
        &self,
        red: &ReducedGraph,
        h_src: Vertex,
        omega_src: f64,
        src_orig: Vertex,
        pruned: Option<(Vertex, u32)>,
        probes: &[Vertex],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let same_class_base = if red.kind(h_src) == TwinKind::False {
            (red.weight(h_src) - omega_src) / red.wdeg(h_src)
        } else {
            0.0
        };
        for &r in probes {
            let VertexState::Retained { h: hr, omega: omega_r } = red.state(r) else {
                panic!(
                    "probe {r} was pruned into a pendant tree; reduced-mode sampling \
                     requires retained probes (pruned probes have exact closed-form BC)"
                );
            };
            let val = if let Some((a, branch)) = pruned {
                if r == a {
                    // The probe is the articulation point of the source's
                    // whole pendant branch.
                    red.comp_total(h_src) - 1.0 - branch as f64
                } else if !self.reached(hr) {
                    0.0
                } else {
                    self.mapped(red, h_src, hr, same_class_base, omega_r)
                }
            } else if r == src_orig || !self.reached(hr) {
                0.0
            } else {
                self.mapped(red, h_src, hr, same_class_base, omega_r)
            };
            out.push(val);
        }
    }

    /// The three-term mapping of the module docs for a reached, retained,
    /// non-source probe.
    #[inline]
    fn mapped(
        &self,
        red: &ReducedGraph,
        h_src: Vertex,
        hr: Vertex,
        same_class_base: f64,
        omega_r: u32,
    ) -> f64 {
        let mut d = self.delta[hr as usize] + (omega_r as f64 - 1.0);
        if same_class_base != 0.0 && red.csr().has_edge(h_src, hr) {
            d += same_class_base;
        }
        d
    }

    /// `δ_{source•}(r)` for several original probes at once — one pass over
    /// the reduced CSR (shared with the attachment's pass for pendant
    /// sources).
    ///
    /// # Panics
    /// If any probe is a pruned vertex (validate with
    /// [`ReducedGraph::is_retained`] first).
    pub fn dependency_on_many(
        &mut self,
        red: &ReducedGraph,
        source: Vertex,
        probes: &[Vertex],
        out: &mut Vec<f64>,
    ) {
        match red.state(source) {
            VertexState::Retained { h, omega } => {
                self.pass(red, h);
                self.fill(red, h, omega as f64, source, None, probes, out);
            }
            VertexState::Pruned { att, branch } => {
                let VertexState::Retained { h: ha, omega: oa } = red.state(att) else {
                    unreachable!("attachment vertices are retained by construction");
                };
                self.pass(red, ha);
                self.fill(red, ha, oa as f64, att, Some((att, branch)), probes, out);
            }
        }
    }

    /// Single-probe convenience.
    pub fn dependency_on(&mut self, red: &ReducedGraph, source: Vertex, r: Vertex) -> f64 {
        let mut out = Vec::with_capacity(1);
        self.dependency_on_many(red, source, &[r], &mut out);
        out[0]
    }

    /// SPD passes performed over the reduced CSR (the budget unit).
    pub fn passes(&self) -> u64 {
        self.passes
    }
}

enum ViewEngine {
    Direct(DependencyCalculator),
    Reduced(ReducedCalculator),
}

/// A dependency workspace bound to an [`SpdView`]: dispatches to the plain
/// [`DependencyCalculator`] or the [`ReducedCalculator`] so the samplers
/// and oracles are agnostic of whether preprocessing is active.
pub struct ViewCalculator<'g> {
    view: SpdView<'g>,
    engine: ViewEngine,
}

impl<'g> ViewCalculator<'g> {
    /// A workspace for `view`, evaluating with the view's [`KernelMode`].
    pub fn new(view: SpdView<'g>) -> Self {
        let engine = match view.reduced {
            None => ViewEngine::Direct(DependencyCalculator::with_kernel(view.graph, view.kernel)),
            Some(red) => ViewEngine::Reduced(ReducedCalculator::with_kernel(red, view.kernel)),
        };
        ViewCalculator { view, engine }
    }

    /// The view this workspace evaluates against.
    pub fn view(&self) -> SpdView<'g> {
        self.view
    }

    /// `δ_{source•}(r)` for several original probes; one SPD pass over the
    /// evaluation graph (original or reduced).
    pub fn dependency_on_many(&mut self, source: Vertex, probes: &[Vertex], out: &mut Vec<f64>) {
        match &mut self.engine {
            ViewEngine::Direct(calc) => {
                calc.dependency_on_many(self.view.graph, source, probes, out)
            }
            ViewEngine::Reduced(calc) => calc.dependency_on_many(
                self.view.reduced.expect("reduced engine has a reduction"),
                source,
                probes,
                out,
            ),
        }
    }

    /// Single-probe convenience.
    pub fn dependency_on(&mut self, source: Vertex, r: Vertex) -> f64 {
        let mut out = Vec::with_capacity(1);
        self.dependency_on_many(source, &[r], &mut out);
        out[0]
    }

    /// SPD passes performed so far (each over the view's evaluation graph).
    pub fn passes(&self) -> u64 {
        match &self.engine {
            ViewEngine::Direct(calc) => calc.passes(),
            ViewEngine::Reduced(calc) => calc.passes(),
        }
    }
}

/// Exact betweenness of **every original vertex** computed through a
/// reduction: pruning corrections plus one multiplicity-aware pass per
/// reduced vertex (`n_H` passes over `H` instead of `n` over `G`).
///
/// Ground truth for the reduction proptests, and a faster exact path when
/// the graph has pendant or twin structure.
pub fn exact_betweenness_reduced(g: &CsrGraph, red: &ReducedGraph) -> Vec<f64> {
    let n = g.num_vertices();
    assert_eq!(red.orig_vertices(), n, "reduction was built for a different graph");
    let mut bc = red.corrections().to_vec();
    if n < 2 {
        return bc;
    }
    let h = red.csr();
    let h_n = h.num_vertices();
    let mut calc = ReducedCalculator::new(red);
    for z in 0..h_n as Vertex {
        calc.pass(red, z);
        let wz = red.weight(z);
        for y in 0..h_n {
            let d = calc.delta[y];
            if d != 0.0 {
                for &m in red.members(y as Vertex) {
                    bc[m as usize] += wz * d;
                }
            }
        }
        // Same-class targets of a false-twin class: each ordered member
        // pair contributes 1/wdeg to every member of every neighbour
        // class; summed over ordered pairs with weights ω this is
        // (Ω² − Σω²) / wdeg. True twins are mutually adjacent: nothing.
        if red.kind(z) == TwinKind::False {
            let corr = (red.weight(z) * red.weight(z) - red.sum_w2(z)) / red.wdeg(z);
            if corr != 0.0 {
                for &u in h.neighbors(z) {
                    for &m in red.members(u) {
                        bc[m as usize] += corr;
                    }
                }
            }
        }
    }
    let norm = (n * (n - 1)) as f64;
    for b in &mut bc {
        *b /= norm;
    }
    bc
}

/// Builds the reduction at `level` and runs [`exact_betweenness_reduced`].
pub fn exact_betweenness_preprocessed(
    g: &CsrGraph,
    level: ReduceLevel,
) -> Result<Vec<f64>, ReduceError> {
    let red = mhbc_graph::reduce::reduce(g, level)?;
    Ok(exact_betweenness_reduced(g, &red))
}

/// The dependency profile `δ_{v•}(r)` of a retained probe over every
/// *original* source, evaluated through the view: one SPD pass per distinct
/// dependency row ([`SpdView::row_key`] — twin classes and pendant branches
/// coalesce) instead of one per vertex. Identical values to
/// [`crate::dependency_profile`]; direct views degenerate to it.
///
/// # Panics
/// If the view's reduction pruned `r`.
pub fn dependency_profile_view(view: SpdView<'_>, r: Vertex) -> crate::DependencyProfile {
    dependency_profile_view_par(view, r, 1)
}

/// Parallel [`dependency_profile_view`]: the distinct dependency rows are
/// computed across `threads` workers (0 = available parallelism), each with
/// its own workspace. Deterministic — rows are pure functions of the view.
pub fn dependency_profile_view_par(
    view: SpdView<'_>,
    r: Vertex,
    threads: usize,
) -> crate::DependencyProfile {
    use std::collections::HashMap;
    let n = view.num_vertices();
    // One representative source per distinct row key, in first-seen order.
    let mut key_index: HashMap<u64, u32> = HashMap::new();
    let mut reps: Vec<Vertex> = Vec::new();
    let mut assign = vec![0u32; n];
    for v in 0..n as Vertex {
        let key = view.row_key(v, v == r);
        let idx = *key_index.entry(key).or_insert_with(|| {
            reps.push(v);
            reps.len() as u32 - 1
        });
        assign[v as usize] = idx;
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(reps.len().max(1));
    let mut vals = vec![0.0f64; reps.len()];
    if threads <= 1 {
        let mut calc = ViewCalculator::new(view);
        for (i, &v) in reps.iter().enumerate() {
            vals[i] = calc.dependency_on(v, r);
        }
    } else {
        let chunks: Vec<Vec<(usize, f64)>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let reps = &reps;
                handles.push(scope.spawn(move |_| {
                    let mut calc = ViewCalculator::new(view);
                    let mut out = Vec::with_capacity(reps.len() / threads + 1);
                    let mut i = t;
                    while i < reps.len() {
                        out.push((i, calc.dependency_on(reps[i], r)));
                        i += threads;
                    }
                    out
                }));
            }
            handles.into_iter().map(|h| h.join().expect("profile worker joined")).collect()
        })
        .expect("profile threads joined");
        for chunk in chunks {
            for (i, d) in chunk {
                vals[i] = d;
            }
        }
    }
    let profile = assign.iter().map(|&i| vals[i as usize]).collect();
    crate::DependencyProfile { profile, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_betweenness;
    use mhbc_graph::generators;
    use mhbc_graph::reduce::reduce;

    fn assert_close(a: f64, b: f64, ctx: &str) {
        let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
        assert!((a - b).abs() <= tol, "{ctx}: {a} vs {b}");
    }

    /// Densities through the reduction must equal direct densities for
    /// every (source, retained probe) pair.
    fn check_density_mapping(g: &CsrGraph, level: ReduceLevel) {
        let red = reduce(g, level).unwrap();
        let n = g.num_vertices();
        let mut direct = DependencyCalculator::new(g);
        let mut reduced = ReducedCalculator::new(&red);
        for r in (0..n as Vertex).filter(|&r| red.is_retained(r)) {
            for v in 0..n as Vertex {
                let want = direct.dependency_on(g, v, r);
                let got = reduced.dependency_on(&red, v, r);
                assert_close(got, want, &format!("source {v}, probe {r}, {level:?}"));
            }
        }
    }

    #[test]
    fn density_mapping_exact_on_classic_graphs() {
        for g in [
            generators::lollipop(6, 4),
            generators::barbell(5, 3),
            generators::star(9),
            generators::grid(4, 3, false),
            generators::complete(6),
            generators::wheel(8),
        ] {
            check_density_mapping(&g, ReduceLevel::Prune);
            check_density_mapping(&g, ReduceLevel::Full);
        }
    }

    #[test]
    fn density_mapping_exact_on_disconnected_graphs() {
        // Two components, one with a pendant tail.
        let g = CsrGraph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 5), (5, 6), (6, 4), (6, 7)],
        )
        .unwrap();
        check_density_mapping(&g, ReduceLevel::Prune);
        check_density_mapping(&g, ReduceLevel::Full);
    }

    #[test]
    fn density_mapping_exact_on_weighted_pruned_graphs() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::assign_uniform_weights(&generators::lollipop(5, 3), 1.0, 3.0, &mut rng);
        check_density_mapping(&g, ReduceLevel::Prune);
    }

    #[test]
    fn exact_betweenness_through_reduction_matches_brandes() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        for (name, g) in [
            ("lollipop", generators::lollipop(7, 5)),
            ("barbell", generators::barbell(6, 2)),
            ("ba", generators::barabasi_albert(120, 2, &mut rng)),
            ("grid", generators::grid(6, 5, false)),
        ] {
            let want = exact_betweenness(&g);
            for level in [ReduceLevel::Off, ReduceLevel::Prune, ReduceLevel::Full] {
                let got = exact_betweenness_preprocessed(&g, level).unwrap();
                for v in 0..g.num_vertices() {
                    assert_close(got[v], want[v], &format!("{name} vertex {v} at {level:?}"));
                }
            }
        }
    }

    #[test]
    fn tree_betweenness_is_bit_exact_from_corrections_alone() {
        // On trees everything prunes: BC comes purely from the integer
        // pair-counting corrections, which match Brandes bit for bit.
        use rand::{rngs::SmallRng, RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for trial in 0..10 {
            let n = 3 + (trial * 7) % 40;
            let mut edges = Vec::new();
            for v in 1..n as Vertex {
                edges.push((rng.random_range(0..v), v));
            }
            let g = CsrGraph::from_edges(n, &edges).unwrap();
            let want = exact_betweenness(&g);
            let got = exact_betweenness_preprocessed(&g, ReduceLevel::Prune).unwrap();
            for v in 0..n {
                assert_eq!(
                    got[v].to_bits(),
                    want[v].to_bits(),
                    "tree trial {trial}, vertex {v}: {} vs {}",
                    got[v],
                    want[v]
                );
            }
        }
    }

    #[test]
    fn profile_through_view_matches_direct_with_fewer_passes() {
        let g = generators::lollipop(6, 4);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        let r = 0; // clique vertex, retained
        assert!(red.is_retained(r));
        let direct = crate::dependency_profile(&g, r);
        let through = dependency_profile_view(view, r);
        assert_eq!(through.r, r);
        for v in 0..g.num_vertices() {
            assert_close(through.profile[v], direct.profile[v], &format!("source {v}"));
        }
        assert_eq!(through.mu().is_some(), direct.mu().is_some());
        if let (Some(a), Some(b)) = (through.mu(), direct.mu()) {
            assert_close(a, b, "mu");
        }
    }

    #[test]
    fn row_keys_coalesce_twins_and_pendants() {
        let g = generators::star(6);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let view = SpdView::preprocessed(&g, &red);
        // All leaves share a row group; the probe exception separates one.
        assert_eq!(view.row_key(1, false), view.row_key(2, false));
        assert_ne!(view.row_key(1, true), view.row_key(2, false));
        assert_ne!(view.row_key(0, false), view.row_key(1, false));
        // Direct views key by vertex id.
        let direct = SpdView::direct(&g);
        assert_eq!(direct.row_key(3, false), 3);
    }

    #[test]
    fn view_calculator_dispatches_both_modes() {
        let g = generators::barbell(4, 3);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let mut plain = ViewCalculator::new(SpdView::direct(&g));
        let mut through = ViewCalculator::new(SpdView::preprocessed(&g, &red));
        let probe = 5u32; // a path vertex (retained)
        assert!(red.is_retained(probe));
        for v in 0..g.num_vertices() as Vertex {
            assert_close(
                through.dependency_on(v, probe),
                plain.dependency_on(v, probe),
                &format!("source {v}"),
            );
        }
        assert!(through.passes() > 0);
        assert_eq!(plain.passes(), g.num_vertices() as u64);
    }

    #[test]
    #[should_panic(expected = "pruned into a pendant tree")]
    fn pruned_probes_are_rejected() {
        let g = generators::lollipop(5, 3);
        let red = reduce(&g, ReduceLevel::Prune).unwrap();
        let mut calc = ReducedCalculator::new(&red);
        let _ = calc.dependency_on(&red, 0, 6); // 6 is on the pruned path
    }

    #[test]
    fn collapsed_kernel_with_unit_inputs_matches_plain_kernel() {
        let g = generators::grid(5, 4, false);
        let n = g.num_vertices();
        let ones = vec![1.0; n];
        let mut plain = BfsSpd::new(n);
        let mut coll = BfsSpd::new(n);
        let (mut d1, mut d2) = (Vec::new(), Vec::new());
        for s in [0u32, 7, 19] {
            plain.compute(&g, s);
            coll.compute_collapsed(&g, s, &ones);
            for v in 0..n as Vertex {
                assert_eq!(plain.dist(v), coll.dist(v));
                assert_eq!(plain.sigma(v).to_bits(), coll.sigma(v).to_bits());
            }
            plain.accumulate_dependencies(&g, &mut d1);
            coll.accumulate_dependencies_collapsed(&g, &ones, &ones, &mut d2);
            for v in 0..n {
                assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "delta {v}, source {s}");
            }
        }
    }
}
