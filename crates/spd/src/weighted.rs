//! Dijkstra shortest-path DAGs for positively weighted graphs.

use crate::WEIGHT_TIE_RELATIVE_EPS;
use mhbc_graph::{CsrGraph, Vertex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry ordered by *smallest* distance first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f64,
    v: Vertex,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Weights are validated finite and positive, so distances are never
        // NaN; reverse for a min-heap on BinaryHeap.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are never NaN")
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The shortest-path DAG rooted at a source of a *positively weighted*
/// graph, computed by Dijkstra with lazy deletion in
/// `O(|E| log |V|)` (§2.1 quotes `O(|E| + |V| log |V|)` with Fibonacci
/// heaps; a binary heap is the standard practical choice).
///
/// Two `s`–`v` paths are considered equally short when their lengths agree
/// to within [`WEIGHT_TIE_RELATIVE_EPS`] relative tolerance; exact float
/// ties (e.g. integer-valued weights) are handled exactly, and nearly-equal
/// real-valued sums are merged, which is the conventional treatment of
/// floating-point path ties.
#[derive(Debug, Clone)]
pub struct DijkstraSpd {
    /// `dist[v]` = weighted `d(s, v)`, `f64::INFINITY` when unreachable.
    pub dist: Vec<f64>,
    /// `sigma[v]` = number of shortest `s`–`v` paths.
    pub sigma: Vec<f64>,
    /// Vertices in settle order (nondecreasing distance); only reached ones.
    pub order: Vec<Vertex>,
    heap: BinaryHeap<HeapItem>,
    settled: Vec<bool>,
    source: Vertex,
}

#[inline]
fn ties(a: f64, b: f64) -> bool {
    (a - b).abs() <= WEIGHT_TIE_RELATIVE_EPS * a.abs().max(b.abs()).max(1.0)
}

impl DijkstraSpd {
    /// Workspace for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        DijkstraSpd {
            dist: vec![f64::INFINITY; n],
            sigma: vec![0.0; n],
            order: Vec::with_capacity(n),
            heap: BinaryHeap::new(),
            settled: vec![false; n],
            source: 0,
        }
    }

    /// The source of the last `compute` call.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Computes the weighted SPD rooted at `s`.
    ///
    /// Works on unweighted graphs too (all weights treated as 1), which the
    /// tests use to cross-validate against [`crate::BfsSpd`].
    ///
    /// # Panics
    /// If the workspace size does not match `g` or `s` is out of range.
    pub fn compute(&mut self, g: &CsrGraph, s: Vertex) {
        let n = g.num_vertices();
        assert_eq!(self.dist.len(), n, "workspace sized for a different graph");
        assert!((s as usize) < n, "source {s} out of range");

        for &v in &self.order {
            self.dist[v as usize] = f64::INFINITY;
            self.sigma[v as usize] = 0.0;
            self.settled[v as usize] = false;
        }
        self.order.clear();
        self.heap.clear();
        self.source = s;

        self.dist[s as usize] = 0.0;
        self.sigma[s as usize] = 1.0;
        self.heap.push(HeapItem { dist: 0.0, v: s });
        while let Some(HeapItem { dist: du, v: u }) = self.heap.pop() {
            if self.settled[u as usize] {
                continue; // stale lazy-deleted entry
            }
            self.settled[u as usize] = true;
            self.order.push(u);
            let su = self.sigma[u as usize];
            for (v, w) in g.neighbors_weighted(u) {
                let vd = self.dist[v as usize];
                let nd = du + w;
                if vd.is_finite() && ties(nd, vd) {
                    // Another shortest path into v through u.
                    self.sigma[v as usize] += su;
                } else if nd < vd {
                    self.dist[v as usize] = nd;
                    self.sigma[v as usize] = su;
                    self.heap.push(HeapItem { dist: nd, v });
                }
            }
        }
    }

    /// Whether `u` is a predecessor of `w` in this SPD:
    /// `d(s, u) + w(u, w) == d(s, w)` up to the tie tolerance.
    #[inline]
    pub fn is_parent(&self, g: &CsrGraph, u: Vertex, w: Vertex) -> bool {
        let (du, dw) = (self.dist[u as usize], self.dist[w as usize]);
        if !du.is_finite() || !dw.is_finite() {
            return false;
        }
        match g.edge_weight(u, w) {
            Some(wt) => du < dw && ties(du + wt, dw),
            None => false,
        }
    }

    /// Number of vertices reached (including the source).
    pub fn reached(&self) -> usize {
        self.order.len()
    }

    /// Accumulates Brandes dependency scores `δ_{s•}(v)` into `delta`
    /// (cleared and resized), scanning the settle order backwards.
    pub fn accumulate_dependencies(&self, g: &CsrGraph, delta: &mut Vec<f64>) {
        delta.clear();
        delta.resize(self.dist.len(), 0.0);
        for &w in self.order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / self.sigma[w as usize];
            let dw = self.dist[w as usize];
            for (u, wt) in g.neighbors_weighted(w) {
                let du = self.dist[u as usize];
                if du.is_finite() && du < dw && ties(du + wt, dw) {
                    delta[u as usize] += self.sigma[u as usize] * coeff;
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BfsSpd;
    use mhbc_graph::{generators, CsrGraph};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn weighted_path_distances() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        let mut spd = DijkstraSpd::new(3);
        spd.compute(&g, 0);
        assert_eq!(spd.dist, vec![0.0, 2.0, 5.0]);
        assert_eq!(spd.sigma, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn tie_counting_on_weighted_diamond() {
        // Two equal-length routes 0 -> 3 (1 + 2 and 2 + 1).
        let g =
            CsrGraph::from_weighted_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 1.0)])
                .unwrap();
        let mut spd = DijkstraSpd::new(4);
        spd.compute(&g, 0);
        assert_eq!(spd.dist[3], 3.0);
        assert_eq!(spd.sigma[3], 2.0);
    }

    #[test]
    fn shorter_route_wins_over_fewer_hops() {
        // Direct edge 0-2 costs 10; the two-hop route costs 3.
        let g =
            CsrGraph::from_weighted_edges(3, &[(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let mut spd = DijkstraSpd::new(3);
        spd.compute(&g, 0);
        assert_eq!(spd.dist[2], 3.0);
        assert_eq!(spd.sigma[2], 1.0);
        assert!(spd.is_parent(&g, 1, 2));
        assert!(!spd.is_parent(&g, 0, 2));
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = CsrGraph::from_weighted_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let mut spd = DijkstraSpd::new(4);
        spd.compute(&g, 0);
        assert!(spd.dist[2].is_infinite());
        assert_eq!(spd.reached(), 2);
    }

    #[test]
    fn unit_weights_match_bfs() {
        let mut rng = SmallRng::seed_from_u64(99);
        let g = generators::barabasi_albert(80, 3, &mut rng);
        let gw = g.map_weights(|_, _| 1.0).unwrap();
        let mut bfs = BfsSpd::new(80);
        let mut dij = DijkstraSpd::new(80);
        for s in [0u32, 17, 42] {
            bfs.compute(&g, s);
            dij.compute(&gw, s);
            for v in 0..80usize {
                assert_eq!(bfs.dist[v] as f64, dij.dist[v], "dist mismatch at {v}");
                assert_eq!(bfs.sigma[v], dij.sigma[v], "sigma mismatch at {v}");
            }
            let (mut d1, mut d2) = (Vec::new(), Vec::new());
            bfs.accumulate_dependencies(&g, &mut d1);
            dij.accumulate_dependencies(&gw, &mut d2);
            for v in 0..80 {
                assert!((d1[v] - d2[v]).abs() < 1e-9, "delta mismatch at {v}");
            }
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut spd = DijkstraSpd::new(3);
        spd.compute(&g, 0);
        spd.compute(&g, 2);
        assert_eq!(spd.dist, vec![2.0, 1.0, 0.0]);
        assert_eq!(spd.source(), 2);
    }
}
