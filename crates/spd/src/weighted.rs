//! Dijkstra shortest-path DAGs for positively weighted graphs.

use crate::WEIGHT_TIE_RELATIVE_EPS;
use mhbc_graph::{CsrGraph, Vertex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry ordered by *smallest* distance first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f64,
    v: Vertex,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Weights are validated finite and positive, so distances are never
        // NaN; reverse for a min-heap on BinaryHeap.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are never NaN")
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The shortest-path DAG rooted at a source of a *positively weighted*
/// graph, computed by Dijkstra with lazy deletion in
/// `O(|E| log |V|)` (§2.1 quotes `O(|E| + |V| log |V|)` with Fibonacci
/// heaps; a binary heap is the standard practical choice).
///
/// Two `s`–`v` paths are considered equally short when their lengths agree
/// to within [`WEIGHT_TIE_RELATIVE_EPS`] relative tolerance; exact float
/// ties (e.g. integer-valued weights) are handled exactly, and nearly-equal
/// real-valued sums are merged, which is the conventional treatment of
/// floating-point path ties.
///
/// Like [`crate::BfsSpd`], the workspace resets are *epoch-stamped*: each
/// vertex carries a stamp `2·epoch + settled_bit`, and a pass begins by
/// bumping the epoch, so neither distances, σ, nor the settled flags are
/// cleared per pass — stale entries are recognised by their old stamps.
#[derive(Debug, Clone)]
pub struct DijkstraSpd {
    /// `dist[v]`: valid only when `stamp[v] >= 2 * epoch`.
    dist: Vec<f64>,
    /// `sigma[v]`: valid only when `stamp[v] >= 2 * epoch`.
    sigma: Vec<f64>,
    /// Vertices in settle order (nondecreasing distance); only reached ones.
    order: Vec<Vertex>,
    heap: BinaryHeap<HeapItem>,
    /// `2 * epoch` = discovered this pass, `2 * epoch + 1` = settled.
    stamp: Vec<u64>,
    epoch: u64,
    source: Vertex,
}

#[inline]
fn ties(a: f64, b: f64) -> bool {
    (a - b).abs() <= WEIGHT_TIE_RELATIVE_EPS * a.abs().max(b.abs()).max(1.0)
}

impl DijkstraSpd {
    /// Workspace for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        DijkstraSpd {
            dist: vec![f64::INFINITY; n],
            sigma: vec![0.0; n],
            order: Vec::with_capacity(n),
            heap: BinaryHeap::new(),
            stamp: vec![0; n],
            // Epoch 1 with all-zero stamps: a fresh workspace reports every
            // vertex unreached (stamp 0 < 2 * epoch).
            epoch: 1,
            source: 0,
        }
    }

    /// The source of the last `compute` call.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Weighted `d(s, v)`, or `f64::INFINITY` if `v` was not reached by the
    /// last [`DijkstraSpd::compute`] call.
    #[inline]
    pub fn dist(&self, v: Vertex) -> f64 {
        if self.stamp[v as usize] >= 2 * self.epoch {
            self.dist[v as usize]
        } else {
            f64::INFINITY
        }
    }

    /// `σ_{sv}`: number of shortest `s`–`v` paths (0 if unreached).
    #[inline]
    pub fn sigma(&self, v: Vertex) -> f64 {
        if self.stamp[v as usize] >= 2 * self.epoch {
            self.sigma[v as usize]
        } else {
            0.0
        }
    }

    /// Vertices in settle order (source first); only reached ones.
    #[inline]
    pub fn order(&self) -> &[Vertex] {
        &self.order
    }

    /// Computes the weighted SPD rooted at `s`.
    ///
    /// Works on unweighted graphs too (all weights treated as 1), which the
    /// tests use to cross-validate against [`crate::BfsSpd`].
    ///
    /// # Panics
    /// If the workspace size does not match `g` or `s` is out of range.
    pub fn compute(&mut self, g: &CsrGraph, s: Vertex) {
        let n = g.num_vertices();
        assert_eq!(self.dist.len(), n, "workspace sized for a different graph");
        assert!((s as usize) < n, "source {s} out of range");

        // Epoch bump replaces the per-pass clearing loop (u64 epochs never
        // wrap in practice).
        self.epoch += 1;
        let discovered = 2 * self.epoch;
        let settled = discovered + 1;
        self.order.clear();
        self.heap.clear();
        self.source = s;

        self.dist[s as usize] = 0.0;
        self.sigma[s as usize] = 1.0;
        self.stamp[s as usize] = discovered;
        self.heap.push(HeapItem { dist: 0.0, v: s });
        while let Some(HeapItem { dist: du, v: u }) = self.heap.pop() {
            if self.stamp[u as usize] == settled {
                continue; // stale lazy-deleted entry
            }
            self.stamp[u as usize] = settled;
            self.order.push(u);
            let su = self.sigma[u as usize];
            for (v, w) in g.neighbors_weighted(u) {
                let seen = self.stamp[v as usize] >= discovered;
                let vd = if seen { self.dist[v as usize] } else { f64::INFINITY };
                let nd = du + w;
                if vd.is_finite() && ties(nd, vd) {
                    // Another shortest path into v through u.
                    self.sigma[v as usize] += su;
                } else if nd < vd {
                    self.dist[v as usize] = nd;
                    self.sigma[v as usize] = su;
                    self.stamp[v as usize] = discovered;
                    self.heap.push(HeapItem { dist: nd, v });
                }
            }
        }
    }

    /// Whether `u` is a predecessor of `w` in this SPD:
    /// `d(s, u) + w(u, w) == d(s, w)` up to the tie tolerance.
    #[inline]
    pub fn is_parent(&self, g: &CsrGraph, u: Vertex, w: Vertex) -> bool {
        let (du, dw) = (self.dist(u), self.dist(w));
        if !du.is_finite() || !dw.is_finite() {
            return false;
        }
        match g.edge_weight(u, w) {
            Some(wt) => du < dw && ties(du + wt, dw),
            None => false,
        }
    }

    /// Number of vertices reached (including the source).
    pub fn reached(&self) -> usize {
        self.order.len()
    }

    /// Accumulates Brandes dependency scores `δ_{s•}(v)` into `delta`
    /// (cleared and resized), scanning the settle order backwards.
    ///
    /// # Panics
    /// If `g` does not match the workspace size.
    pub fn accumulate_dependencies(&self, g: &CsrGraph, delta: &mut Vec<f64>) {
        assert_eq!(g.num_vertices(), self.dist.len(), "graph does not match workspace");
        delta.clear();
        delta.resize(self.dist.len(), 0.0);
        let discovered = 2 * self.epoch;
        for &w in self.order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / self.sigma[w as usize];
            let dw = self.dist[w as usize];
            for (u, wt) in g.neighbors_weighted(w) {
                if self.stamp[u as usize] < discovered {
                    continue;
                }
                let du = self.dist[u as usize];
                if du < dw && ties(du + wt, dw) {
                    delta[u as usize] += self.sigma[u as usize] * coeff;
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }

    /// Vertex-weighted Brandes accumulation: like
    /// [`DijkstraSpd::accumulate_dependencies`] but each target `w` seeds the
    /// backward recurrence with `seeds[w]` instead of `1` — the reduced-graph
    /// form where a retained vertex stands for `ω(w)` original targets
    /// (itself plus its pruned pendant trees; see `mhbc_graph::reduce`).
    /// Unit seeds reproduce the plain accumulation exactly.
    ///
    /// # Panics
    /// If `g` or `seeds` do not match the workspace size.
    pub fn accumulate_dependencies_seeded(
        &self,
        g: &CsrGraph,
        seeds: &[f64],
        delta: &mut Vec<f64>,
    ) {
        assert_eq!(g.num_vertices(), self.dist.len(), "graph does not match workspace");
        assert_eq!(seeds.len(), self.dist.len(), "seeds do not match workspace");
        delta.clear();
        delta.resize(self.dist.len(), 0.0);
        let discovered = 2 * self.epoch;
        for &w in self.order.iter().rev() {
            let coeff = (seeds[w as usize] + delta[w as usize]) / self.sigma[w as usize];
            let dw = self.dist[w as usize];
            for (u, wt) in g.neighbors_weighted(w) {
                if self.stamp[u as usize] < discovered {
                    continue;
                }
                let du = self.dist[u as usize];
                if du < dw && ties(du + wt, dw) {
                    delta[u as usize] += self.sigma[u as usize] * coeff;
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BfsSpd;
    use mhbc_graph::{generators, CsrGraph};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn weighted_path_distances() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        let mut spd = DijkstraSpd::new(3);
        spd.compute(&g, 0);
        for (v, (d, s)) in [(0.0, 1.0), (2.0, 1.0), (5.0, 1.0)].iter().enumerate() {
            assert_eq!(spd.dist(v as Vertex), *d);
            assert_eq!(spd.sigma(v as Vertex), *s);
        }
    }

    #[test]
    fn tie_counting_on_weighted_diamond() {
        // Two equal-length routes 0 -> 3 (1 + 2 and 2 + 1).
        let g =
            CsrGraph::from_weighted_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 1.0)])
                .unwrap();
        let mut spd = DijkstraSpd::new(4);
        spd.compute(&g, 0);
        assert_eq!(spd.dist(3), 3.0);
        assert_eq!(spd.sigma(3), 2.0);
    }

    #[test]
    fn shorter_route_wins_over_fewer_hops() {
        // Direct edge 0-2 costs 10; the two-hop route costs 3.
        let g =
            CsrGraph::from_weighted_edges(3, &[(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let mut spd = DijkstraSpd::new(3);
        spd.compute(&g, 0);
        assert_eq!(spd.dist(2), 3.0);
        assert_eq!(spd.sigma(2), 1.0);
        assert!(spd.is_parent(&g, 1, 2));
        assert!(!spd.is_parent(&g, 0, 2));
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = CsrGraph::from_weighted_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let mut spd = DijkstraSpd::new(4);
        spd.compute(&g, 0);
        assert!(spd.dist(2).is_infinite());
        assert_eq!(spd.sigma(2), 0.0);
        assert_eq!(spd.reached(), 2);
    }

    #[test]
    fn unit_weights_match_bfs() {
        let mut rng = SmallRng::seed_from_u64(99);
        let g = generators::barabasi_albert(80, 3, &mut rng);
        let gw = g.map_weights(|_, _| 1.0).unwrap();
        let mut bfs = BfsSpd::new(80);
        let mut dij = DijkstraSpd::new(80);
        for s in [0u32, 17, 42] {
            bfs.compute(&g, s);
            dij.compute(&gw, s);
            for v in 0..80u32 {
                assert_eq!(bfs.dist(v) as f64, dij.dist(v), "dist mismatch at {v}");
                assert_eq!(bfs.sigma(v), dij.sigma(v), "sigma mismatch at {v}");
            }
            let (mut d1, mut d2) = (Vec::new(), Vec::new());
            bfs.accumulate_dependencies(&g, &mut d1);
            dij.accumulate_dependencies(&gw, &mut d2);
            for v in 0..80 {
                assert!((d1[v] - d2[v]).abs() < 1e-9, "delta mismatch at {v}");
            }
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut spd = DijkstraSpd::new(3);
        spd.compute(&g, 0);
        spd.compute(&g, 2);
        assert_eq!(spd.dist(0), 2.0);
        assert_eq!(spd.dist(1), 1.0);
        assert_eq!(spd.dist(2), 0.0);
        assert_eq!(spd.source(), 2);
    }

    #[test]
    fn fresh_workspace_reports_nothing_reached() {
        let spd = DijkstraSpd::new(3);
        assert_eq!(spd.reached(), 0);
        for v in 0..3 {
            assert!(spd.dist(v).is_infinite(), "vertex {v}");
            assert_eq!(spd.sigma(v), 0.0, "vertex {v}");
        }
    }

    #[test]
    fn stale_stamps_do_not_leak_across_components() {
        let g = CsrGraph::from_weighted_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let mut spd = DijkstraSpd::new(4);
        spd.compute(&g, 2);
        assert_eq!(spd.dist(3), 1.0);
        spd.compute(&g, 0);
        assert!(spd.dist(2).is_infinite());
        assert!(spd.dist(3).is_infinite());
        assert!(!spd.is_parent(&g, 2, 3));
    }
}
