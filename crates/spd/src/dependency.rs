//! The per-sample dependency kernel used by every sampler.

use crate::{BfsSpd, DijkstraSpd, KernelMode};
use mhbc_graph::{CsrGraph, Vertex};

enum Engine {
    Unweighted(BfsSpd),
    Weighted(DijkstraSpd),
}

/// Computes dependency scores `δ_{s•}(·)` for arbitrary sources, reusing all
/// buffers across calls — this is the `O(|E|)` (unweighted) /
/// `O(|E| + |V| log |V|)` (weighted) kernel whose cost §4.1 identifies as
/// the per-sample price of every estimator in the paper.
///
/// The calculator counts SPD passes, which the experiment harness uses to
/// compare samplers at *matched computational budgets* rather than matched
/// iteration counts.
pub struct DependencyCalculator {
    engine: Engine,
    delta: Vec<f64>,
    passes: u64,
}

impl DependencyCalculator {
    /// Creates a kernel matching `g`'s weightedness, in [`KernelMode::Auto`].
    pub fn new(g: &CsrGraph) -> Self {
        Self::with_kernel(g, KernelMode::Auto)
    }

    /// Creates a kernel with an explicit unweighted forward-pass strategy
    /// (weighted graphs always use Dijkstra; the mode is ignored there).
    /// Every mode yields bit-identical dependency rows — see [`KernelMode`].
    pub fn with_kernel(g: &CsrGraph, mode: KernelMode) -> Self {
        let n = g.num_vertices();
        let engine = if g.is_weighted() {
            Engine::Weighted(DijkstraSpd::new(n))
        } else {
            Engine::Unweighted(BfsSpd::with_mode(n, mode))
        };
        DependencyCalculator { engine, delta: Vec::with_capacity(n), passes: 0 }
    }

    /// Dependency scores of `source` on every vertex: returns the slice
    /// `δ_{source•}(·)` (valid until the next call). One SPD pass.
    pub fn dependencies(&mut self, g: &CsrGraph, source: Vertex) -> &[f64] {
        self.passes += 1;
        match &mut self.engine {
            Engine::Unweighted(spd) => {
                spd.compute(g, source);
                spd.accumulate_dependencies(g, &mut self.delta);
            }
            Engine::Weighted(spd) => {
                spd.compute(g, source);
                spd.accumulate_dependencies(g, &mut self.delta);
            }
        }
        &self.delta
    }

    /// `δ_{source•}(r)`: the dependency of `source` on the probe vertex `r`.
    /// One SPD pass (the full accumulation is required regardless; Eq 4 has
    /// no single-target shortcut).
    pub fn dependency_on(&mut self, g: &CsrGraph, source: Vertex, r: Vertex) -> f64 {
        self.dependencies(g, source)[r as usize]
    }

    /// `δ_{source•}(r)` for several probe vertices at once — same single
    /// pass, used by the joint-space sampler to maintain all of `R`.
    pub fn dependency_on_many(
        &mut self,
        g: &CsrGraph,
        source: Vertex,
        probes: &[Vertex],
        out: &mut Vec<f64>,
    ) {
        let delta = self.dependencies(g, source);
        out.clear();
        out.extend(probes.iter().map(|&r| delta[r as usize]));
    }

    /// Number of SPD passes performed so far (the budget unit).
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Resets the pass counter (e.g. between experiment phases).
    pub fn reset_passes(&mut self) {
        self.passes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn unweighted_dependency_on_path_centre() {
        let g = generators::path(5);
        let mut calc = DependencyCalculator::new(&g);
        // From source 0, delta_0(2) = 2 (targets 3 and 4 route through 2).
        assert_eq!(calc.dependency_on(&g, 0, 2), 2.0);
        // From source 2 itself the dependency on 2 is 0 by definition.
        assert_eq!(calc.dependency_on(&g, 2, 2), 0.0);
        assert_eq!(calc.passes(), 2);
    }

    #[test]
    fn weighted_engine_selected_automatically() {
        let g = generators::path(4).map_weights(|_, _| 2.0).unwrap();
        let mut calc = DependencyCalculator::new(&g);
        assert_eq!(calc.dependency_on(&g, 0, 1), 2.0);
    }

    #[test]
    fn dependency_on_many_matches_single_calls() {
        let g = generators::barbell(4, 2);
        let mut calc = DependencyCalculator::new(&g);
        let probes = [0u32, 4, 5, 9];
        let mut out = Vec::new();
        calc.dependency_on_many(&g, 1, &probes, &mut out);
        for (i, &r) in probes.iter().enumerate() {
            assert_eq!(out[i], calc.dependency_on(&g, 1, r));
        }
    }

    #[test]
    fn pass_counter_tracks_work() {
        let g = generators::cycle(6);
        let mut calc = DependencyCalculator::new(&g);
        let _ = calc.dependencies(&g, 0);
        let _ = calc.dependency_on(&g, 1, 2);
        let mut out = Vec::new();
        calc.dependency_on_many(&g, 3, &[0, 1], &mut out);
        assert_eq!(calc.passes(), 3);
        calc.reset_passes();
        assert_eq!(calc.passes(), 0);
    }
}
