//! A checkout pool of SPD workspaces for multi-threaded samplers.
//!
//! Every [`DependencyCalculator`] owns `O(|V|)` of reusable buffers, so
//! threads that evaluate dependency scores should *check one out* rather
//! than allocate their own per task. The prefetch pipeline and the chain
//! ensembles in `mhbc-core` hold a pool for the lifetime of a run; workers
//! grab a workspace on entry and return it on drop.

use crate::DependencyCalculator;
use mhbc_graph::CsrGraph;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A pool of [`DependencyCalculator`] workspaces sized for one graph.
///
/// [`SpdWorkspacePool::checkout`] pops a free workspace (or lazily allocates
/// one if the pool is empty), and the returned guard gives it back when
/// dropped — so the number of live allocations equals the peak number of
/// concurrent users, not the number of checkout calls.
///
/// ```
/// use mhbc_graph::generators;
/// use mhbc_spd::SpdWorkspacePool;
///
/// let g = generators::barbell(4, 1);
/// let pool = SpdWorkspacePool::new(&g);
/// let bridge = {
///     let mut calc = pool.checkout();
///     calc.dependency_on(&g, 0, 4)
/// }; // workspace returned here
/// assert!(bridge > 0.0);
/// assert_eq!(pool.idle(), 1);
/// ```
pub struct SpdWorkspacePool<'g> {
    graph: &'g CsrGraph,
    free: Mutex<Vec<DependencyCalculator>>,
}

impl<'g> SpdWorkspacePool<'g> {
    /// An empty pool for `g`; workspaces are allocated on first checkout.
    pub fn new(graph: &'g CsrGraph) -> Self {
        SpdWorkspacePool { graph, free: Mutex::new(Vec::new()) }
    }

    /// A pool pre-warmed with `workers` ready workspaces, so the first
    /// checkout wave allocates nothing.
    pub fn with_workers(graph: &'g CsrGraph, workers: usize) -> Self {
        let free = (0..workers).map(|_| DependencyCalculator::new(graph)).collect();
        SpdWorkspacePool { graph, free: Mutex::new(free) }
    }

    /// Checks out a workspace; allocates only if none are idle.
    pub fn checkout(&self) -> PooledCalculator<'_, 'g> {
        let calc = self
            .free
            .lock()
            .expect("pool lock poisoned")
            .pop()
            .unwrap_or_else(|| DependencyCalculator::new(self.graph));
        PooledCalculator { pool: self, calc: Some(calc) }
    }

    /// Number of idle workspaces currently held by the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("pool lock poisoned").len()
    }

    /// Total SPD passes performed by all *idle* workspaces (checked-out ones
    /// are counted once they return).
    pub fn idle_passes(&self) -> u64 {
        self.free.lock().expect("pool lock poisoned").iter().map(|c| c.passes()).sum()
    }
}

/// RAII guard over a checked-out [`DependencyCalculator`]; derefs to it and
/// returns it to the pool on drop.
pub struct PooledCalculator<'p, 'g> {
    pool: &'p SpdWorkspacePool<'g>,
    calc: Option<DependencyCalculator>,
}

impl Deref for PooledCalculator<'_, '_> {
    type Target = DependencyCalculator;

    fn deref(&self) -> &DependencyCalculator {
        self.calc.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledCalculator<'_, '_> {
    fn deref_mut(&mut self) -> &mut DependencyCalculator {
        self.calc.as_mut().expect("present until drop")
    }
}

impl Drop for PooledCalculator<'_, '_> {
    fn drop(&mut self) {
        if let Some(calc) = self.calc.take() {
            self.pool.free.lock().expect("pool lock poisoned").push(calc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn checkout_reuses_returned_workspaces() {
        let g = generators::path(6);
        let pool = SpdWorkspacePool::new(&g);
        {
            let mut a = pool.checkout();
            let _ = a.dependencies(&g, 0);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
        {
            let b = pool.checkout();
            // The same workspace came back: its pass counter carried over.
            assert_eq!(b.passes(), 1);
        }
        assert_eq!(pool.idle_passes(), 1);
    }

    #[test]
    fn concurrent_checkouts_allocate_at_peak_only() {
        let g = generators::barbell(4, 1);
        let pool = SpdWorkspacePool::with_workers(&g, 2);
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout(); // beyond the pre-warm: lazily allocated
        assert_eq!(pool.idle(), 0);
        drop((a, b, c));
        assert_eq!(pool.idle(), 3);
    }

    #[test]
    fn pooled_results_match_direct_computation() {
        let g = generators::barbell(5, 2);
        let pool = SpdWorkspacePool::new(&g);
        let mut reference = DependencyCalculator::new(&g);
        crossbeam::thread::scope(|scope| {
            for t in 0..3u32 {
                let pool = &pool;
                let g = &g;
                scope.spawn(move |_| {
                    let mut calc = pool.checkout();
                    for s in 0..g.num_vertices() as u32 {
                        let _ = calc.dependency_on(g, s, (s + t) % g.num_vertices() as u32);
                    }
                });
            }
        })
        .expect("threads joined");
        assert_eq!(pool.idle_passes(), 3 * g.num_vertices() as u64);
        assert_eq!(pool.checkout().dependency_on(&g, 0, 5), reference.dependency_on(&g, 0, 5));
    }
}
