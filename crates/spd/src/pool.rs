//! A checkout pool of SPD workspaces for multi-threaded samplers.
//!
//! Every [`ViewCalculator`] owns `O(|V|)` of reusable buffers, so threads
//! that evaluate dependency scores should *check one out* rather than
//! allocate their own per task. The prefetch pipeline and the chain
//! ensembles in `mhbc-core` hold a pool for the lifetime of a run; workers
//! grab a workspace on entry and return it on drop.
//!
//! The pool is bound to an [`SpdView`] — a graph together with (optionally)
//! its reduction — so every workspace it hands out evaluates dependencies
//! through the same preprocessing level.

use crate::{SpdView, ViewCalculator};
use mhbc_graph::CsrGraph;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A pool of [`ViewCalculator`] workspaces sized for one evaluation view.
///
/// [`SpdWorkspacePool::checkout`] pops a free workspace (or lazily allocates
/// one if the pool is empty), and the returned guard gives it back when
/// dropped — so the number of live allocations equals the peak number of
/// concurrent users, not the number of checkout calls.
///
/// ```
/// use mhbc_graph::generators;
/// use mhbc_spd::SpdWorkspacePool;
///
/// let g = generators::barbell(4, 1);
/// let pool = SpdWorkspacePool::new(&g);
/// let bridge = {
///     let mut calc = pool.checkout();
///     calc.dependency_on(0, 4)
/// }; // workspace returned here
/// assert!(bridge > 0.0);
/// assert_eq!(pool.idle(), 1);
/// ```
pub struct SpdWorkspacePool<'g> {
    view: SpdView<'g>,
    free: Mutex<Vec<ViewCalculator<'g>>>,
}

impl<'g> SpdWorkspacePool<'g> {
    /// An empty pool evaluating directly on `graph`; workspaces are
    /// allocated on first checkout.
    pub fn new(graph: &'g CsrGraph) -> Self {
        Self::for_view(SpdView::direct(graph))
    }

    /// A direct-evaluation pool pre-warmed with `workers` ready workspaces,
    /// so the first checkout wave allocates nothing.
    pub fn with_workers(graph: &'g CsrGraph, workers: usize) -> Self {
        Self::for_view_workers(SpdView::direct(graph), workers)
    }

    /// An empty pool bound to `view` (direct or reduced evaluation).
    pub fn for_view(view: SpdView<'g>) -> Self {
        SpdWorkspacePool { view, free: Mutex::new(Vec::new()) }
    }

    /// A pool bound to `view`, pre-warmed with `workers` ready workspaces.
    pub fn for_view_workers(view: SpdView<'g>, workers: usize) -> Self {
        let free = (0..workers).map(|_| ViewCalculator::new(view)).collect();
        SpdWorkspacePool { view, free: Mutex::new(free) }
    }

    /// The view every workspace of this pool evaluates against.
    pub fn view(&self) -> SpdView<'g> {
        self.view
    }

    /// Checks out a workspace; allocates only if none are idle.
    pub fn checkout(&self) -> PooledCalculator<'_, 'g> {
        let calc = self
            .free
            .lock()
            .expect("pool lock poisoned")
            .pop()
            .unwrap_or_else(|| ViewCalculator::new(self.view));
        PooledCalculator { pool: self, calc: Some(calc) }
    }

    /// Number of idle workspaces currently held by the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("pool lock poisoned").len()
    }

    /// Total SPD passes performed by all *idle* workspaces (checked-out ones
    /// are counted once they return).
    pub fn idle_passes(&self) -> u64 {
        self.free.lock().expect("pool lock poisoned").iter().map(|c| c.passes()).sum()
    }
}

/// RAII guard over a checked-out [`ViewCalculator`]; derefs to it and
/// returns it to the pool on drop.
pub struct PooledCalculator<'p, 'g> {
    pool: &'p SpdWorkspacePool<'g>,
    calc: Option<ViewCalculator<'g>>,
}

impl<'g> Deref for PooledCalculator<'_, 'g> {
    type Target = ViewCalculator<'g>;

    fn deref(&self) -> &ViewCalculator<'g> {
        self.calc.as_ref().expect("present until drop")
    }
}

impl<'g> DerefMut for PooledCalculator<'_, 'g> {
    fn deref_mut(&mut self) -> &mut ViewCalculator<'g> {
        self.calc.as_mut().expect("present until drop")
    }
}

impl Drop for PooledCalculator<'_, '_> {
    fn drop(&mut self) {
        if let Some(calc) = self.calc.take() {
            self.pool.free.lock().expect("pool lock poisoned").push(calc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use mhbc_graph::reduce::{reduce, ReduceLevel};

    #[test]
    fn checkout_reuses_returned_workspaces() {
        let g = generators::path(6);
        let pool = SpdWorkspacePool::new(&g);
        {
            let mut a = pool.checkout();
            let _ = a.dependency_on(0, 3);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
        {
            let b = pool.checkout();
            // The same workspace came back: its pass counter carried over.
            assert_eq!(b.passes(), 1);
        }
        assert_eq!(pool.idle_passes(), 1);
    }

    #[test]
    fn concurrent_checkouts_allocate_at_peak_only() {
        let g = generators::barbell(4, 1);
        let pool = SpdWorkspacePool::with_workers(&g, 2);
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout(); // beyond the pre-warm: lazily allocated
        assert_eq!(pool.idle(), 0);
        drop((a, b, c));
        assert_eq!(pool.idle(), 3);
    }

    #[test]
    fn pooled_results_match_direct_computation() {
        let g = generators::barbell(5, 2);
        let pool = SpdWorkspacePool::new(&g);
        let mut reference = crate::DependencyCalculator::new(&g);
        crossbeam::thread::scope(|scope| {
            for t in 0..3u32 {
                let pool = &pool;
                let g = &g;
                scope.spawn(move |_| {
                    let mut calc = pool.checkout();
                    for s in 0..g.num_vertices() as u32 {
                        let _ = calc.dependency_on(s, (s + t) % g.num_vertices() as u32);
                    }
                });
            }
        })
        .expect("threads joined");
        assert_eq!(pool.idle_passes(), 3 * g.num_vertices() as u64);
        assert_eq!(pool.checkout().dependency_on(0, 5), reference.dependency_on(&g, 0, 5));
    }

    #[test]
    fn reduced_pool_evaluates_through_the_reduction() {
        let g = generators::lollipop(6, 3);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        let pool = SpdWorkspacePool::for_view_workers(SpdView::preprocessed(&g, &red), 1);
        let mut reference = crate::DependencyCalculator::new(&g);
        let mut calc = pool.checkout();
        // Probe 0: a clique vertex (retained; the pendant tail prunes away).
        assert!(red.is_retained(0));
        for v in 0..g.num_vertices() as u32 {
            let got = calc.dependency_on(v, 0);
            let want = reference.dependency_on(&g, v, 0);
            assert!((got - want).abs() < 1e-9, "source {v}: {got} vs {want}");
        }
    }
}
