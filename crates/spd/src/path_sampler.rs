//! σ-weighted uniform shortest-path sampling from an SPD.
//!
//! Given the SPD rooted at `s`, a uniformly random shortest `s`–`t` path is
//! obtained by walking backwards from `t`, choosing each predecessor `u`
//! with probability `σ_su / Σ_{u' ∈ P_s(t)} σ_su'`. Telescoping gives every
//! shortest path probability exactly `1 / σ_st` — the primitive behind the
//! RK estimator \[30\].

use crate::unweighted::UNREACHED;
use crate::BfsSpd;
use mhbc_graph::{CsrGraph, Vertex};
use rand::{Rng, RngExt};

/// Samples a uniformly random shortest path from `spd.source()` to `t`.
///
/// Returns the vertex sequence `source, …, t` (inclusive), or `None` if `t`
/// is unreachable. `t == source` yields the singleton path.
pub fn sample_shortest_path<R: Rng + ?Sized>(
    g: &CsrGraph,
    spd: &BfsSpd,
    t: Vertex,
    rng: &mut R,
) -> Option<Vec<Vertex>> {
    let dt = spd.dist(t);
    if dt == UNREACHED {
        return None;
    }
    let len = dt as usize;
    let mut path = vec![0 as Vertex; len + 1];
    path[len] = t;
    let mut cur = t;
    for slot in (0..len).rev() {
        cur = pick_parent(g, spd, cur, rng);
        path[slot] = cur;
    }
    debug_assert_eq!(path[0], spd.source());
    Some(path)
}

/// Chooses a predecessor of `w` in the SPD with probability proportional to
/// its σ value.
fn pick_parent<R: Rng + ?Sized>(g: &CsrGraph, spd: &BfsSpd, w: Vertex, rng: &mut R) -> Vertex {
    let dw = spd.dist(w);
    debug_assert!(dw != UNREACHED && dw > 0);
    // Total parent weight equals sigma[w] by definition of the SPD.
    let mut remaining = rng.random::<f64>() * spd.sigma(w);
    let mut last_parent = None;
    for &u in g.neighbors(w) {
        if spd.is_parent(u, w) {
            last_parent = Some(u);
            remaining -= spd.sigma(u);
            if remaining <= 0.0 {
                return u;
            }
        }
    }
    // Floating-point slack: fall back to the last parent seen.
    last_parent.expect("reachable non-source vertex has a parent")
}

/// The interior vertices of a path (everything strictly between the
/// endpoints) — the vertices credited by path-sampling estimators.
pub fn interior(path: &[Vertex]) -> &[Vertex] {
    if path.len() <= 2 {
        &[]
    } else {
        &path[1..path.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;
    use rand::{rngs::SmallRng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn sampled_paths_are_shortest_paths() {
        let mut rng = SmallRng::seed_from_u64(81);
        let g = generators::barabasi_albert(60, 2, &mut rng);
        let mut spd = BfsSpd::new(60);
        spd.compute(&g, 0);
        for t in [5u32, 20, 59] {
            let path = sample_shortest_path(&g, &spd, t, &mut rng).unwrap();
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().unwrap(), t);
            assert_eq!(path.len() as u32 - 1, spd.dist(t));
            for pair in path.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "non-edge in sampled path");
            }
        }
    }

    #[test]
    fn unreachable_target_returns_none() {
        let g = mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        let mut rng = SmallRng::seed_from_u64(82);
        assert!(sample_shortest_path(&g, &spd, 3, &mut rng).is_none());
    }

    #[test]
    fn source_target_gives_singleton() {
        let g = generators::path(3);
        let mut spd = BfsSpd::new(3);
        spd.compute(&g, 1);
        let mut rng = SmallRng::seed_from_u64(83);
        assert_eq!(sample_shortest_path(&g, &spd, 1, &mut rng).unwrap(), vec![1]);
    }

    #[test]
    fn sampling_is_uniform_over_shortest_paths() {
        // 3x3 grid: from corner 0 to opposite corner 8 there are C(4,2) = 6
        // shortest paths; check the empirical distribution is uniform.
        let g = generators::grid(3, 3, false);
        let mut spd = BfsSpd::new(9);
        spd.compute(&g, 0);
        assert_eq!(spd.sigma(8), 6.0);
        let mut rng = SmallRng::seed_from_u64(84);
        let mut counts: HashMap<Vec<Vertex>, usize> = HashMap::new();
        let trials = 60_000;
        for _ in 0..trials {
            let p = sample_shortest_path(&g, &spd, 8, &mut rng).unwrap();
            *counts.entry(p).or_default() += 1;
        }
        assert_eq!(counts.len(), 6, "all six paths should appear");
        let expected = trials as f64 / 6.0;
        for (path, c) in counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "path {path:?} count {c} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn interior_extraction() {
        assert_eq!(interior(&[1]), &[] as &[Vertex]);
        assert_eq!(interior(&[1, 2]), &[] as &[Vertex]);
        assert_eq!(interior(&[1, 2, 3, 4]), &[2, 3]);
    }
}
