//! Exact betweenness (Brandes \[8\]) and fixed-probe dependency profiles.

use crate::DependencyCalculator;
use mhbc_graph::{CsrGraph, Vertex};

/// Exact betweenness centrality of every vertex, normalised as in Eq 1
/// (divide raw dependency sums by `n (n - 1)`).
///
/// `O(nm)` unweighted / `O(nm + n² log n)` weighted — the §1 cost that makes
/// exact computation impractical on large graphs and motivates the paper.
///
/// Accumulates through the same fixed source-chunking as
/// [`exact_betweenness_par`], so the two entry points are **bitwise
/// identical** to each other at every thread count.
pub fn exact_betweenness(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_vertices();
    if n < 2 {
        return vec![0.0; n];
    }
    let chunk = source_chunk(n);
    let mut calc = DependencyCalculator::new(g);
    let mut bc = vec![0.0f64; n];
    let mut part = vec![0.0f64; n];
    for c in 0..n.div_ceil(chunk) {
        chunk_partial(g, &mut calc, c * chunk, n.min((c + 1) * chunk), &mut part);
        for (b, p) in bc.iter_mut().zip(&part) {
            *b += p;
        }
    }
    let norm = (n * (n - 1)) as f64;
    for b in &mut bc {
        *b /= norm;
    }
    bc
}

/// Fewest sources a worker thread must have to be worth spawning: below
/// this, thread startup and the per-thread `O(n)` accumulator dominate the
/// actual SPD work, so `effective_threads` clamps the thread count on
/// tiny graphs rather than fanning out for nothing.
const MIN_SOURCES_PER_THREAD: usize = 32;

/// Source-chunk size of the deterministic parallel reduction — a pure
/// function of `n` (never of the thread count), so the chunk partial sums
/// and their left-to-right fold associate identically at every thread
/// count: `exact_betweenness_par` is **bit-identical** across
/// `threads = 1, 2, 8, …`. Scales with `n` to cap the chunk count (and so
/// the ordered-commit bookkeeping) at ~128.
fn source_chunk(n: usize) -> usize {
    MIN_SOURCES_PER_THREAD.max(n.div_ceil(128))
}

/// Parallel exact betweenness: the source range is cut into fixed chunks
/// (see `source_chunk`), workers drain a shared chunk queue with private
/// SPD workspaces, and the per-chunk accumulators are folded in chunk order
/// — making the result a pure function of the graph, identical bit for bit
/// at every thread count (including `threads = 1`, which runs the same
/// chunked fold sequentially).
///
/// `threads = 0` means "use available parallelism"; the count is clamped so
/// every thread gets at least `MIN_SOURCES_PER_THREAD` sources — tiny
/// graphs never pay for threads they cannot feed.
pub fn exact_betweenness_par(g: &CsrGraph, threads: usize) -> Vec<f64> {
    let n = g.num_vertices();
    if n < 2 {
        return vec![0.0; n];
    }
    let threads = effective_threads(threads, n);
    let chunk = source_chunk(n);
    let num_chunks = n.div_ceil(chunk);

    if threads <= 1 {
        // `exact_betweenness` runs the identical chunked fold.
        return exact_betweenness(g);
    }

    // Chunk partials are folded strictly in chunk order — the one fixed
    // left-to-right association — but *eagerly*, so memory stays
    // O(threads · n): workers drain a shared chunk queue (which worker
    // computes a chunk is scheduler-dependent, but each partial is a pure
    // function of the graph) and commit through an ordered cursor that
    // parks the partials finished ahead of turn. Parking is bounded at
    // O(threads) by backpressure (each worker can slip one chunk past the
    // 2·threads spin gate, so the transient worst case is ~3·threads−1):
    // a worker whose commits are running far ahead of the fold cursor (a
    // descheduled straggler owns the next chunk in line) yields instead
    // of computing further chunks, so even a worst-case scheduler cannot
    // pile up O(num_chunks) partials.
    struct Commit {
        next: usize,
        pending: std::collections::BTreeMap<usize, Vec<f64>>,
        bc: Vec<f64>,
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Lock-free mirror of `pending.len()`, so the backpressure spin below
    // never touches the mutex the straggler needs for its commit.
    let parked = std::sync::atomic::AtomicUsize::new(0);
    let commit = std::sync::Mutex::new(Commit {
        next: 0,
        pending: std::collections::BTreeMap::new(),
        bc: vec![0.0f64; n],
    });
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let (next, commit, parked) = (&next, &commit, &parked);
            scope.spawn(move |_| {
                let mut calc = DependencyCalculator::new(g);
                let mut scratch = vec![0.0f64; n];
                loop {
                    let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if c >= num_chunks {
                        break;
                    }
                    chunk_partial(g, &mut calc, c * chunk, n.min((c + 1) * chunk), &mut scratch);
                    let mut state = commit.lock().expect("commit lock");
                    if state.next == c {
                        // In-order (the common case): fold the reusable
                        // scratch straight into bc — no allocation.
                        for (b, p) in state.bc.iter_mut().zip(&scratch) {
                            *b += p;
                        }
                        state.next += 1;
                    } else {
                        // Ahead of turn: park a copy (bounded below).
                        state.pending.insert(c, scratch.clone());
                        parked.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    // Fold every parked partial whose turn has come.
                    loop {
                        let turn = state.next;
                        let Some(part) = state.pending.remove(&turn) else { break };
                        parked.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                        for (b, p) in state.bc.iter_mut().zip(&part) {
                            *b += p;
                        }
                        state.next += 1;
                    }
                    drop(state);
                    // Backpressure: wait for the straggler owning the next
                    // in-order chunk rather than parking more memory. That
                    // worker never reaches this loop before committing its
                    // own chunk, so it always makes progress — no deadlock —
                    // and the spin reads only the atomic, never the mutex.
                    while parked.load(std::sync::atomic::Ordering::Relaxed) >= 2 * threads {
                        std::thread::yield_now();
                    }
                }
            });
        }
    })
    .expect("scope panicked");
    let state = commit.into_inner().expect("commit lock");
    debug_assert_eq!(state.next, num_chunks);
    let mut bc = state.bc;

    let norm = (n * (n - 1)) as f64;
    for b in &mut bc {
        *b /= norm;
    }
    bc
}

/// Dependency sums of sources `start..end`, accumulated in source order
/// into `acc` (reset here, so callers can reuse one scratch buffer across
/// chunks without per-chunk allocation).
fn chunk_partial(
    g: &CsrGraph,
    calc: &mut DependencyCalculator,
    start: usize,
    end: usize,
    acc: &mut [f64],
) {
    let n = g.num_vertices();
    acc.fill(0.0);
    for s in start..end {
        let delta = calc.dependencies(g, s as Vertex);
        for v in 0..n {
            acc[v] += delta[v];
        }
    }
}

/// The dependency profile of a probe vertex `r`: `δ_{v•}(r)` for every
/// source `v`, plus the derived quantities the paper's analysis needs.
///
/// The profile is the ground-truth object behind §4.1: its normalised form
/// is the optimal sampling distribution `P_r[v]` (Eq 5), its sum is
/// `n (n-1) BC(r)`, and its max/mean ratio is `µ(r)` (Theorem 1).
#[derive(Debug, Clone)]
pub struct DependencyProfile {
    /// `profile[v] = δ_{v•}(r)`.
    pub profile: Vec<f64>,
    /// The probe vertex.
    pub r: Vertex,
}

impl DependencyProfile {
    /// Sum `Σ_v δ_{v•}(r)` — the normalisation constant of Eq 5.
    pub fn total(&self) -> f64 {
        self.profile.iter().sum()
    }

    /// Exact `BC(r)` under the Eq 1 normalisation.
    pub fn betweenness(&self) -> f64 {
        let n = self.profile.len();
        if n < 2 {
            return 0.0;
        }
        self.total() / (n * (n - 1)) as f64
    }

    /// The optimal sampling distribution `P_r[v] = δ_{v•}(r) / Σ δ` (Eq 5).
    /// Returns `None` when `BC(r) = 0` (the distribution is undefined).
    pub fn optimal_distribution(&self) -> Option<Vec<f64>> {
        let total = self.total();
        if total <= 0.0 {
            return None;
        }
        Some(self.profile.iter().map(|d| d / total).collect())
    }

    /// `µ(r)`: the smallest constant with `δ_{v•}(r) ≤ µ(r) · δ̄(r)` for all
    /// `v` (Ineq 11), i.e. `n · max_v δ_{v•}(r) / Σ_v δ_{v•}(r)`.
    /// Returns `None` when `BC(r) = 0`.
    pub fn mu(&self) -> Option<f64> {
        let total = self.total();
        if total <= 0.0 {
            return None;
        }
        let max = self.profile.iter().cloned().fold(0.0f64, f64::max);
        Some(self.profile.len() as f64 * max / total)
    }
}

/// Computes the dependency profile of `r` by running the kernel from every
/// source (`n` SPD passes — same asymptotic cost as full Brandes, but only
/// needed for ground truth and diagnostics, never inside the samplers).
pub fn dependency_profile(g: &CsrGraph, r: Vertex) -> DependencyProfile {
    let n = g.num_vertices();
    let mut calc = DependencyCalculator::new(g);
    let mut profile = vec![0.0; n];
    for (v, slot) in profile.iter_mut().enumerate() {
        *slot = calc.dependency_on(g, v as Vertex, r);
    }
    DependencyProfile { profile, r }
}

/// Parallel [`dependency_profile`]. `threads = 0` uses available parallelism.
pub fn dependency_profile_par(g: &CsrGraph, r: Vertex, threads: usize) -> DependencyProfile {
    let n = g.num_vertices();
    let threads = effective_threads(threads, n);
    if threads <= 1 {
        return dependency_profile(g, r);
    }
    let chunks: Vec<Vec<(usize, f64)>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move |_| {
                let mut calc = DependencyCalculator::new(g);
                let mut out = Vec::with_capacity(n / threads + 1);
                let mut v = t;
                while v < n {
                    out.push((v, calc.dependency_on(g, v as Vertex, r)));
                    v += threads;
                }
                out
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope panicked");

    let mut profile = vec![0.0; n];
    for chunk in chunks {
        for (v, d) in chunk {
            profile[v] = d;
        }
    }
    DependencyProfile { profile, r }
}

/// Exact `BC(r)` for a single probe vertex (via its dependency profile,
/// parallelised). Equivalent to `exact_betweenness(g)[r]` but with `O(n)`
/// memory instead of `O(n)` per-thread accumulators.
pub fn exact_betweenness_of(g: &CsrGraph, r: Vertex) -> f64 {
    dependency_profile_par(g, r, 0).betweenness()
}

/// Resolves a requested thread count (0 = hardware parallelism), clamped so
/// each thread owns at least [`MIN_SOURCES_PER_THREAD`] work items — on a
/// 40-vertex graph, asking for 8 threads runs 1, not 8 threads with 5
/// sources each.
fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, (work_items / MIN_SOURCES_PER_THREAD).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    /// Closed form: on a path of n vertices, the i-th vertex (0-based) lies
    /// on all s-t pairs with s < i < t, so raw BC = 2 * i * (n - 1 - i) and
    /// normalised BC = 2 i (n-1-i) / (n (n-1)).
    fn path_bc(n: usize, i: usize) -> f64 {
        (2 * i * (n - 1 - i)) as f64 / (n * (n - 1)) as f64
    }

    #[test]
    fn path_betweenness_closed_form() {
        let n = 9;
        let bc = exact_betweenness(&generators::path(n));
        for (i, &b) in bc.iter().enumerate() {
            assert!((b - path_bc(n, i)).abs() < 1e-12, "vertex {i}");
        }
    }

    #[test]
    fn star_centre_betweenness() {
        // Star K_{1,n-1}: centre lies on all (n-1)(n-2) ordered leaf pairs.
        let n = 7;
        let bc = exact_betweenness(&generators::star(n));
        let expect = ((n - 1) * (n - 2)) as f64 / (n * (n - 1)) as f64;
        assert!((bc[0] - expect).abs() < 1e-12);
        for &leaf_bc in &bc[1..] {
            assert_eq!(leaf_bc, 0.0);
        }
    }

    #[test]
    fn complete_graph_is_all_zero() {
        let bc = exact_betweenness(&generators::complete(6));
        assert!(bc.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn cycle_betweenness_uniform() {
        let bc = exact_betweenness(&generators::cycle(8));
        for &b in &bc {
            assert!((b - bc[0]).abs() < 1e-12);
        }
        assert!(bc[0] > 0.0);
    }

    #[test]
    fn parallel_matches_serial() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::barabasi_albert(150, 3, &mut rng);
        let serial = exact_betweenness(&g);
        let parallel = exact_betweenness_par(&g, 4);
        for v in 0..150 {
            assert!((serial[v] - parallel[v]).abs() < 1e-12, "vertex {v}");
        }
    }

    #[test]
    fn parallel_bit_identical_across_thread_counts() {
        // The chunked fold makes the parallel reduction a pure function of
        // the graph: the sequential entry point, 1-thread, and N-thread
        // runs all agree bit for bit.
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(41);
        for g in [
            generators::barabasi_albert(170, 3, &mut rng),
            generators::grid(13, 11, false),
            generators::barbell(20, 6),
        ] {
            let one = exact_betweenness_par(&g, 1);
            let seq = exact_betweenness(&g);
            for v in 0..g.num_vertices() {
                assert_eq!(one[v].to_bits(), seq[v].to_bits(), "vertex {v} vs sequential");
            }
            for threads in [2usize, 8] {
                let many = exact_betweenness_par(&g, threads);
                for v in 0..g.num_vertices() {
                    assert_eq!(
                        one[v].to_bits(),
                        many[v].to_bits(),
                        "vertex {v} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_graphs_clamp_to_one_thread() {
        // 40 sources / MIN_SOURCES_PER_THREAD = 1: an 8-thread request on a
        // tiny graph must not fan out (and must still be exact).
        assert_eq!(super::effective_threads(8, 40), 1);
        assert_eq!(super::effective_threads(8, 64), 2);
        assert_eq!(super::effective_threads(0, 10), 1);
        assert_eq!(super::effective_threads(1, 1_000_000), 1);
        let g = generators::barbell(6, 2);
        let one = exact_betweenness_par(&g, 1);
        let clamped = exact_betweenness_par(&g, 8);
        for v in 0..g.num_vertices() {
            assert_eq!(one[v].to_bits(), clamped[v].to_bits(), "vertex {v}");
        }
    }

    #[test]
    fn profile_betweenness_matches_full_brandes() {
        let g = generators::barbell(4, 3);
        let full = exact_betweenness(&g);
        for r in 0..g.num_vertices() as Vertex {
            let p = dependency_profile(&g, r);
            assert!((p.betweenness() - full[r as usize]).abs() < 1e-12, "probe {r}");
        }
    }

    #[test]
    fn profile_parallel_matches_serial() {
        let g = generators::barbell(5, 2);
        let r = 5; // a path vertex
        let a = dependency_profile(&g, r);
        let b = dependency_profile_par(&g, r, 3);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn optimal_distribution_sums_to_one() {
        let g = generators::barbell(4, 1);
        let p = dependency_profile(&g, 4); // the bridge vertex
        let dist = p.optimal_distribution().expect("bridge has positive BC");
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(dist.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn mu_is_at_most_two_for_balanced_separator() {
        // Barbell bridge vertex with equal cliques: Theorem 2 with K = 1
        // gives mu(r) <= 1 + 1/K = 2 asymptotically.
        let g = generators::barbell(20, 1);
        let p = dependency_profile(&g, 20);
        let mu = p.mu().unwrap();
        assert!(mu < 2.2, "mu = {mu} should be near 2 for a balanced separator");
    }

    #[test]
    fn zero_betweenness_vertex_has_no_distribution() {
        let g = generators::star(5);
        let p = dependency_profile(&g, 3); // a leaf
        assert_eq!(p.betweenness(), 0.0);
        assert!(p.optimal_distribution().is_none());
        assert!(p.mu().is_none());
    }

    #[test]
    fn weighted_brandes_respects_weights() {
        // Triangle where the direct edge 0-2 is more expensive than 0-1-2:
        // vertex 1 gains betweenness.
        let g =
            mhbc_graph::CsrGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
                .unwrap();
        let bc = exact_betweenness(&g);
        assert!(bc[1] > 0.0);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[2], 0.0);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        assert!(exact_betweenness(&generators::path(1)).iter().all(|&b| b == 0.0));
        assert_eq!(exact_betweenness(&generators::path(2)), vec![0.0, 0.0]);
        let empty = mhbc_graph::CsrGraph::from_edges(0, &[]).unwrap();
        assert!(exact_betweenness(&empty).is_empty());
        assert!(exact_betweenness_par(&empty, 4).is_empty());
    }
}
