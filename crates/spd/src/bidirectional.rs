//! Balanced bidirectional BFS (bb-BFS) path counting and sampling.
//!
//! Borassi & Natale's KADABRA \[7\] replaces the full single-source BFS of RK
//! with a bidirectional search: BFS levels are grown from both endpoints,
//! always expanding the side whose frontier has the smaller total degree, so
//! the two searches meet after exploring roughly `O(√m)` edges on many
//! graph families instead of `O(m)`.
//!
//! This module implements the primitive exactly (correct σ counting and
//! uniform path sampling); the surrounding KADABRA *stopping rule* is
//! simplified in `mhbc-baselines` (see DESIGN.md "Substitutions").
//!
//! ## Counting correctness
//!
//! After the searches stop with completed depths `ls` (from `s`) and `lt`
//! (from `t`) such that `ls + lt >= d(s, t)`, every shortest path crosses
//! exactly one vertex `v` with `d(s, v) = k` for the fixed split level
//! `k = min(ls, d)`; hence `σ_st = Σ_{v : d_s(v) = k, d_t(v) = d − k}
//! σ_s(v) · σ_t(v)`, and sampling `v` proportional to that product followed
//! by independent σ-weighted walks to both endpoints yields a uniformly
//! random shortest path.

use mhbc_graph::{CsrGraph, Vertex};
use rand::{Rng, RngExt};

const UNREACHED: u32 = u32::MAX;

/// Result of a bidirectional `(s, t)` query.
#[derive(Debug, Clone, PartialEq)]
pub struct BbResult {
    /// `d(s, t)` in edges.
    pub distance: u32,
    /// `σ_st`: number of shortest `s`–`t` paths.
    pub sigma: f64,
    /// A uniformly sampled shortest path (present when sampling was asked).
    pub path: Option<Vec<Vertex>>,
}

/// One directional search state (reusable buffers).
struct Side {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    /// Vertices at each completed/being-built level.
    levels: Vec<Vec<Vertex>>,
    touched: Vec<Vertex>,
}

impl Side {
    fn new(n: usize) -> Self {
        Side {
            dist: vec![UNREACHED; n],
            sigma: vec![0.0; n],
            levels: Vec::new(),
            touched: Vec::new(),
        }
    }

    fn reset(&mut self, root: Vertex) {
        for &v in &self.touched {
            self.dist[v as usize] = UNREACHED;
            self.sigma[v as usize] = 0.0;
        }
        self.touched.clear();
        self.levels.clear();
        self.dist[root as usize] = 0;
        self.sigma[root as usize] = 1.0;
        self.touched.push(root);
        self.levels.push(vec![root]);
    }

    /// Total degree of the current deepest level (the bb-BFS balance metric).
    fn frontier_cost(&self, g: &CsrGraph) -> usize {
        self.levels.last().map(|f| f.iter().map(|&v| g.degree(v)).sum()).unwrap_or(0)
    }

    /// Expands one full level. Returns `false` when the frontier was empty
    /// (side exhausted). `other` is read to update the best meeting
    /// distance.
    fn expand(&mut self, g: &CsrGraph, other: &Side, best_d: &mut u32) -> bool {
        let depth = (self.levels.len() - 1) as u32;
        let frontier = std::mem::take(self.levels.last_mut().expect("levels never empty"));
        if frontier.is_empty() {
            return false;
        }
        let mut next: Vec<Vertex> = Vec::new();
        for &u in &frontier {
            let su = self.sigma[u as usize];
            for &v in g.neighbors(u) {
                let dv = &mut self.dist[v as usize];
                if *dv == UNREACHED {
                    *dv = depth + 1;
                    self.touched.push(v);
                    next.push(v);
                    let dother = other.dist[v as usize];
                    if dother != UNREACHED {
                        *best_d = (*best_d).min(depth + 1 + dother);
                    }
                }
                if self.dist[v as usize] == depth + 1 {
                    self.sigma[v as usize] += su;
                }
            }
        }
        *self.levels.last_mut().expect("levels never empty") = frontier;
        self.levels.push(next);
        true
    }

    /// Completed depth: all vertices at distance <= this have final σ.
    fn completed(&self) -> u32 {
        (self.levels.len() - 1) as u32
    }

    /// σ-weighted walk from `v` down to the root; appends the vertices
    /// strictly after `v` (each one level closer to the root).
    fn walk_to_root<R: Rng + ?Sized>(
        &self,
        g: &CsrGraph,
        mut v: Vertex,
        rng: &mut R,
        out: &mut Vec<Vertex>,
    ) {
        while self.dist[v as usize] > 0 {
            let dv = self.dist[v as usize];
            let mut remaining = rng.random::<f64>() * self.sigma[v as usize];
            let mut chosen = None;
            for &u in g.neighbors(v) {
                if self.dist[u as usize] != UNREACHED && self.dist[u as usize] + 1 == dv {
                    chosen = Some(u);
                    remaining -= self.sigma[u as usize];
                    if remaining <= 0.0 {
                        break;
                    }
                }
            }
            v = chosen.expect("non-root vertex has a parent");
            out.push(v);
        }
    }
}

/// Reusable balanced bidirectional BFS engine for unweighted graphs.
pub struct BidirectionalSearch {
    fwd: Side,
    bwd: Side,
    /// Edges touched by the most recent query (the bb-BFS cost metric).
    pub last_edges_touched: usize,
}

impl BidirectionalSearch {
    /// Engine for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BidirectionalSearch { fwd: Side::new(n), bwd: Side::new(n), last_edges_touched: 0 }
    }

    /// Computes `d(s, t)` and `σ_st`; samples a uniform shortest path when
    /// `sample` is set. Returns `None` when `t` is unreachable from `s`.
    ///
    /// # Panics
    /// If `s == t` (the estimators never query diagonal pairs) or either
    /// endpoint is out of range.
    pub fn query<R: Rng + ?Sized>(
        &mut self,
        g: &CsrGraph,
        s: Vertex,
        t: Vertex,
        sample: bool,
        rng: &mut R,
    ) -> Option<BbResult> {
        assert_ne!(s, t, "bidirectional query requires distinct endpoints");
        let n = g.num_vertices();
        assert!((s as usize) < n && (t as usize) < n, "endpoint out of range");

        self.fwd.reset(s);
        self.bwd.reset(t);
        self.last_edges_touched = 0;
        let mut best_d = UNREACHED;

        loop {
            if best_d != UNREACHED && self.fwd.completed() + self.bwd.completed() >= best_d {
                break;
            }
            // Expand the cheaper side (balanced criterion of [7]).
            let (cf, cb) = (self.fwd.frontier_cost(g), self.bwd.frontier_cost(g));
            let expand_fwd = cf <= cb;
            self.last_edges_touched += if expand_fwd { cf } else { cb };
            let ok = if expand_fwd {
                self.fwd.expand(g, &self.bwd, &mut best_d)
            } else {
                self.bwd.expand(g, &self.fwd, &mut best_d)
            };
            if !ok {
                // One side exhausted without meeting: disconnected.
                if best_d == UNREACHED {
                    return None;
                }
                break;
            }
        }

        let d = best_d;
        debug_assert_ne!(d, UNREACHED);
        // Fixed split level: every shortest path has exactly one vertex at
        // distance k from s.
        let k = d.min(self.fwd.completed());
        debug_assert!(d - k <= self.bwd.completed());

        // Bridge vertices: d_s(v) = k and d_t(v) = d - k.
        let level: &[Vertex] = &self.fwd.levels[k as usize];
        let mut sigma = 0.0;
        for &v in level {
            if self.bwd.dist[v as usize] == d - k {
                sigma += self.fwd.sigma[v as usize] * self.bwd.sigma[v as usize];
            }
        }
        debug_assert!(sigma > 0.0);

        let path = if sample {
            // Pick the bridge vertex proportional to σ_s(v) σ_t(v).
            let mut remaining = rng.random::<f64>() * sigma;
            let mut bridge = None;
            for &v in level {
                if self.bwd.dist[v as usize] == d - k {
                    bridge = Some(v);
                    remaining -= self.fwd.sigma[v as usize] * self.bwd.sigma[v as usize];
                    if remaining <= 0.0 {
                        break;
                    }
                }
            }
            let bridge = bridge.expect("sigma > 0 implies a bridge vertex");
            // Assemble: s-side (reversed), bridge, t-side.
            let mut s_half = Vec::with_capacity(k as usize);
            self.fwd.walk_to_root(g, bridge, rng, &mut s_half);
            let mut path = Vec::with_capacity(d as usize + 1);
            path.extend(s_half.iter().rev());
            path.push(bridge);
            self.bwd.walk_to_root(g, bridge, rng, &mut path);
            debug_assert_eq!(path.len() as u32, d + 1);
            debug_assert_eq!(path[0], s);
            debug_assert_eq!(*path.last().expect("non-empty"), t);
            Some(path)
        } else {
            None
        };

        Some(BbResult { distance: d, sigma, path })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BfsSpd;
    use mhbc_graph::generators;
    use rand::{rngs::SmallRng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn adjacent_pair() {
        let g = generators::path(2);
        let mut bb = BidirectionalSearch::new(2);
        let mut rng = SmallRng::seed_from_u64(1);
        let r = bb.query(&g, 0, 1, true, &mut rng).unwrap();
        assert_eq!(r.distance, 1);
        assert_eq!(r.sigma, 1.0);
        assert_eq!(r.path.unwrap(), vec![0, 1]);
    }

    #[test]
    fn disconnected_returns_none() {
        let g = mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut bb = BidirectionalSearch::new(4);
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(bb.query(&g, 0, 3, false, &mut rng).is_none());
    }

    #[test]
    fn counts_match_bfs_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(3);
        for seed in 0..6u64 {
            let mut gr = SmallRng::seed_from_u64(seed);
            let g = generators::ensure_connected(
                generators::erdos_renyi_gnp(60, 0.06, &mut gr),
                &mut gr,
            );
            let n = g.num_vertices();
            let mut bb = BidirectionalSearch::new(n);
            let mut spd = BfsSpd::new(n);
            for s in [0u32, 10, 30] {
                spd.compute(&g, s);
                for t in [5u32, 25, 59] {
                    if s == t {
                        continue;
                    }
                    let r = bb.query(&g, s, t, false, &mut rng).unwrap();
                    assert_eq!(r.distance, spd.dist(t), "seed {seed}, {s}->{t}");
                    assert_eq!(r.sigma, spd.sigma(t), "seed {seed}, {s}->{t}");
                }
            }
        }
    }

    #[test]
    fn sampled_paths_valid_and_shortest() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::grid(5, 5, false);
        let mut bb = BidirectionalSearch::new(25);
        for _ in 0..50 {
            let r = bb.query(&g, 0, 24, true, &mut rng).unwrap();
            let path = r.path.unwrap();
            assert_eq!(path.len() as u32, r.distance + 1);
            for w in path.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn sampling_is_uniform() {
        // Corner-to-corner on a 3x3 grid: 6 shortest paths.
        let g = generators::grid(3, 3, false);
        let mut bb = BidirectionalSearch::new(9);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts: HashMap<Vec<Vertex>, usize> = HashMap::new();
        let trials = 60_000;
        for _ in 0..trials {
            let r = bb.query(&g, 0, 8, true, &mut rng).unwrap();
            assert_eq!(r.sigma, 6.0);
            *counts.entry(r.path.unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 6);
        let expected = trials as f64 / 6.0;
        for (p, c) in counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "path {p:?}: count {c}");
        }
    }

    #[test]
    fn touches_fewer_edges_than_full_bfs_on_expander() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::barabasi_albert(3000, 4, &mut rng);
        let mut bb = BidirectionalSearch::new(3000);
        let mut total = 0usize;
        for t in [100u32, 900, 2500] {
            bb.query(&g, 0, t, false, &mut rng).unwrap();
            total += bb.last_edges_touched;
        }
        // Full BFS touches ~2m = ~24k edge endpoints per query.
        assert!(
            total < 3 * g.num_edges(),
            "bb-BFS should touch fewer edges: {total} vs m = {}",
            g.num_edges()
        );
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn diagonal_pair_panics() {
        let g = generators::path(3);
        let mut bb = BidirectionalSearch::new(3);
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = bb.query(&g, 1, 1, false, &mut rng);
    }
}
