//! Independent `O(n³)`-ish reference implementations.
//!
//! These deliberately avoid Brandes's recursion: betweenness and dependency
//! scores are computed straight from the definitions (Eq 1–3) using the
//! pair-count identity `σ_st(v) = σ_sv · σ_vt` iff `d(s,v) + d(v,t) =
//! d(s,t)`. They exist purely to cross-validate the fast implementations on
//! small graphs and are exported so that downstream crates' tests can reuse
//! them.

use crate::{BfsSpd, DijkstraSpd, WEIGHT_TIE_RELATIVE_EPS};
use mhbc_graph::{CsrGraph, Vertex};

/// All-pairs distances and shortest-path counts of an unweighted graph
/// (`dist[s][t]`, `sigma[s][t]`); `u32::MAX` marks unreachable pairs.
pub fn all_pairs_unweighted(g: &CsrGraph) -> (Vec<Vec<u32>>, Vec<Vec<f64>>) {
    let n = g.num_vertices();
    let mut dist = Vec::with_capacity(n);
    let mut sigma = Vec::with_capacity(n);
    let mut spd = BfsSpd::new(n);
    for s in 0..n as Vertex {
        spd.compute(g, s);
        dist.push((0..n as Vertex).map(|v| spd.dist(v)).collect());
        sigma.push((0..n as Vertex).map(|v| spd.sigma(v)).collect());
    }
    (dist, sigma)
}

/// All-pairs weighted distances and counts (`f64::INFINITY` = unreachable).
pub fn all_pairs_weighted(g: &CsrGraph) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let n = g.num_vertices();
    let mut dist = Vec::with_capacity(n);
    let mut sigma = Vec::with_capacity(n);
    let mut spd = DijkstraSpd::new(n);
    for s in 0..n as Vertex {
        spd.compute(g, s);
        dist.push((0..n as Vertex).map(|v| spd.dist(v)).collect());
        sigma.push((0..n as Vertex).map(|v| spd.sigma(v)).collect());
    }
    (dist, sigma)
}

/// Definition-level betweenness (Eq 1) for every vertex of an unweighted
/// graph. `O(n³)`; use only on test-scale graphs.
pub fn betweenness_naive(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0; n];
    if n < 2 {
        return bc;
    }
    let (dist, sigma) = all_pairs_unweighted(g);
    for s in 0..n {
        for t in 0..n {
            if s == t || dist[s][t] == u32::MAX {
                continue;
            }
            for v in 0..n {
                if v == s || v == t {
                    continue;
                }
                if dist[s][v] != u32::MAX
                    && dist[v][t] != u32::MAX
                    && dist[s][v] + dist[v][t] == dist[s][t]
                {
                    bc[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
                }
            }
        }
    }
    let norm = (n * (n - 1)) as f64;
    for b in &mut bc {
        *b /= norm;
    }
    bc
}

/// Definition-level betweenness for weighted graphs, merging path lengths
/// equal up to the crate-wide tie tolerance.
pub fn betweenness_naive_weighted(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0; n];
    if n < 2 {
        return bc;
    }
    let ties =
        |a: f64, b: f64| (a - b).abs() <= WEIGHT_TIE_RELATIVE_EPS * a.abs().max(b.abs()).max(1.0);
    let (dist, sigma) = all_pairs_weighted(g);
    for s in 0..n {
        for t in 0..n {
            if s == t || !dist[s][t].is_finite() {
                continue;
            }
            for v in 0..n {
                if v == s || v == t {
                    continue;
                }
                if dist[s][v].is_finite()
                    && dist[v][t].is_finite()
                    && ties(dist[s][v] + dist[v][t], dist[s][t])
                {
                    bc[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
                }
            }
        }
    }
    let norm = (n * (n - 1)) as f64;
    for b in &mut bc {
        *b /= norm;
    }
    bc
}

/// Definition-level dependency scores `δ_{s•}(v)` (Eq 2) for a fixed source
/// of an unweighted graph.
pub fn dependencies_naive(g: &CsrGraph, s: Vertex) -> Vec<f64> {
    let n = g.num_vertices();
    let (dist, sigma) = all_pairs_unweighted(g);
    let s = s as usize;
    let mut delta = vec![0.0; n];
    for v in 0..n {
        if v == s {
            continue;
        }
        for t in 0..n {
            if t == s || t == v || dist[s][t] == u32::MAX {
                continue;
            }
            if dist[s][v] != u32::MAX
                && dist[v][t] != u32::MAX
                && dist[s][v] + dist[v][t] == dist[s][t]
            {
                delta[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_betweenness, DependencyCalculator};
    use mhbc_graph::generators;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn naive_matches_brandes_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(71);
        for seed in 0..5u64 {
            let mut r = SmallRng::seed_from_u64(seed);
            let g = generators::ensure_connected(
                generators::erdos_renyi_gnp(30, 0.12, &mut r),
                &mut rng,
            );
            let fast = exact_betweenness(&g);
            let slow = betweenness_naive(&g);
            for v in 0..30 {
                assert!((fast[v] - slow[v]).abs() < 1e-10, "seed {seed}, vertex {v}");
            }
        }
    }

    #[test]
    fn naive_weighted_matches_brandes_weighted() {
        let mut rng = SmallRng::seed_from_u64(72);
        let base =
            generators::ensure_connected(generators::erdos_renyi_gnp(25, 0.15, &mut rng), &mut rng);
        let g = generators::assign_uniform_weights(&base, 1.0, 4.0, &mut rng);
        let fast = exact_betweenness(&g);
        let slow = betweenness_naive_weighted(&g);
        for v in 0..25 {
            assert!((fast[v] - slow[v]).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn naive_dependencies_match_accumulation() {
        let mut rng = SmallRng::seed_from_u64(73);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let mut calc = DependencyCalculator::new(&g);
        for s in [0u32, 7, 23] {
            let fast = calc.dependencies(&g, s).to_vec();
            let slow = dependencies_naive(&g, s);
            for v in 0..40 {
                assert!((fast[v] - slow[v]).abs() < 1e-10, "source {s}, vertex {v}");
            }
        }
    }

    #[test]
    fn all_pairs_symmetry() {
        let g = generators::barbell(3, 2);
        let (dist, sigma) = all_pairs_unweighted(&g);
        let n = g.num_vertices();
        for s in 0..n {
            for t in 0..n {
                assert_eq!(dist[s][t], dist[t][s]);
                assert_eq!(sigma[s][t], sigma[t][s]);
            }
        }
    }
}
