//! The pre-rewrite `VecDeque` BFS kernel, kept as a reference baseline.
//!
//! [`LegacyBfsSpd`] is the queue-based kernel this crate shipped before the
//! frontier-swap rewrite of [`crate::BfsSpd`]: a `VecDeque` BFS with
//! per-pass workspace clearing and a backward accumulation that re-tests
//! `d(s, u) + 1 == d(s, w)` with two distance loads per edge. It is retained
//! for two purposes only:
//!
//! - the property tests assert the new kernel reproduces this one's
//!   `dist`/`sigma`/`delta` bit-for-bit on random graphs, and
//! - the `perf` bench subcommand measures the rewrite's speedup against it
//!   (the `BENCH_kernels.json` trajectory).
//!
//! The compute/accumulate loops are the historical code verbatim, so the
//! `perf` timings stay a faithful baseline. For the bitwise-equality tests
//! a separate, explicit [`LegacyBfsSpd::canonicalize_order`] step re-sorts
//! the settle order into the *canonical* within-level order (ascending
//! vertex id per BFS level) that every [`crate::KernelMode`] of the
//! direction-optimizing kernel produces, so the backward δ accumulation
//! visits edges in the same order. σ itself still accumulates in queue
//! order (only the recorded order is re-sorted), which equals the
//! canonical ascending-order sum bit for bit **as long as σ stays below
//! 2^53** — integer sums are exact in `f64`, and addition order cannot
//! matter. That covers every graph the bitwise property tests compare on
//! (small random graphs); path-count-explosive structures like large
//! grids (σ up to `C(2k, k)`) can exceed 2^53, where queue-order and
//! canonical-order σ may differ in ulps — so bitwise legacy comparisons
//! must stick to σ-small graphs.
//!
//! Do not use it in samplers; [`crate::BfsSpd`] is strictly faster.

use crate::UNREACHED;
use mhbc_graph::{CsrGraph, Vertex};
use std::collections::VecDeque;

/// The original queue-based BFS shortest-path-DAG kernel (see module docs).
#[derive(Debug, Clone)]
pub struct LegacyBfsSpd {
    /// `dist[v]` = `d(s, v)`, or [`UNREACHED`].
    pub dist: Vec<u32>,
    /// `sigma[v]` = number of shortest `s`–`v` paths.
    pub sigma: Vec<f64>,
    /// Vertices in BFS settle order; only reached ones.
    pub order: Vec<Vertex>,
    queue: VecDeque<Vertex>,
    source: Vertex,
}

impl LegacyBfsSpd {
    /// Workspace for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        LegacyBfsSpd {
            dist: vec![UNREACHED; n],
            sigma: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: VecDeque::new(),
            source: 0,
        }
    }

    /// Computes the SPD rooted at `s` (the pre-rewrite loop, verbatim).
    pub fn compute(&mut self, g: &CsrGraph, s: Vertex) {
        let n = g.num_vertices();
        assert_eq!(self.dist.len(), n, "workspace sized for a different graph");
        assert!((s as usize) < n, "source {s} out of range");

        for &v in &self.order {
            self.dist[v as usize] = UNREACHED;
            self.sigma[v as usize] = 0.0;
        }
        self.order.clear();
        self.queue.clear();
        self.source = s;

        self.dist[s as usize] = 0;
        self.sigma[s as usize] = 1.0;
        self.queue.push_back(s);
        while let Some(u) = self.queue.pop_front() {
            self.order.push(u);
            let du = self.dist[u as usize];
            let su = self.sigma[u as usize];
            for &v in g.neighbors(u) {
                let dv = &mut self.dist[v as usize];
                if *dv == UNREACHED {
                    *dv = du + 1;
                    self.queue.push_back(v);
                }
                if self.dist[v as usize] == du + 1 {
                    self.sigma[v as usize] += su;
                }
            }
        }
    }

    /// Re-sorts the settle order into the canonical within-level order
    /// (ascending vertex id per BFS level) so a subsequent backward scan
    /// accumulates δ in exactly the order the direction-optimizing kernel
    /// does — see the module docs. Kept **out of** [`LegacyBfsSpd::compute`]
    /// so the `perf` bench times the historical loop untouched; the
    /// bitwise-equality tests call this explicitly after each pass.
    pub fn canonicalize_order(&mut self) {
        // Queue order is already sorted by distance; sort each
        // equal-distance run ascending.
        let mut i = 0;
        while i < self.order.len() {
            let d = self.dist[self.order[i] as usize];
            let mut j = i + 1;
            while j < self.order.len() && self.dist[self.order[j] as usize] == d {
                j += 1;
            }
            self.order[i..j].sort_unstable();
            i = j;
        }
    }

    /// Backward Brandes accumulation (the pre-rewrite edge-retesting scan).
    pub fn accumulate_dependencies(&self, g: &CsrGraph, delta: &mut Vec<f64>) {
        delta.clear();
        delta.resize(self.dist.len(), 0.0);
        for &w in self.order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / self.sigma[w as usize];
            let dw = self.dist[w as usize];
            for &u in g.neighbors(w) {
                if self.dist[u as usize] != UNREACHED && self.dist[u as usize] + 1 == dw {
                    delta[u as usize] += self.sigma[u as usize] * coeff;
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }

    /// Pre-rewrite Geisberger–Sanders–Schultes linear-scaling accumulation.
    pub fn accumulate_scaled_dependencies(&self, g: &CsrGraph, scaled: &mut Vec<f64>) {
        scaled.clear();
        scaled.resize(self.dist.len(), 0.0);
        for &w in self.order.iter().rev() {
            let dw = self.dist[w as usize];
            if dw == 0 {
                continue;
            }
            let coeff = (1.0 / dw as f64 + scaled[w as usize]) / self.sigma[w as usize];
            for &u in g.neighbors(w) {
                if self.dist[u as usize] != UNREACHED && self.dist[u as usize] + 1 == dw {
                    scaled[u as usize] += self.sigma[u as usize] * coeff;
                }
            }
        }
        for (v, s) in scaled.iter_mut().enumerate() {
            if self.dist[v] != UNREACHED && self.dist[v] > 0 {
                *s *= self.dist[v] as f64;
            } else {
                *s = 0.0;
            }
        }
        scaled[self.source as usize] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn legacy_kernel_still_correct_on_path() {
        let g = generators::path(5);
        let mut spd = LegacyBfsSpd::new(5);
        spd.compute(&g, 0);
        assert_eq!(spd.dist, vec![0, 1, 2, 3, 4]);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&g, &mut delta);
        assert_eq!(delta, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }
}
