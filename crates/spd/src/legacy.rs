//! The pre-rewrite `VecDeque` BFS kernel, kept as a reference baseline.
//!
//! [`LegacyBfsSpd`] is the queue-based kernel this crate shipped before the
//! frontier-swap rewrite of [`crate::BfsSpd`]: a `VecDeque` BFS with
//! per-pass workspace clearing and a backward accumulation that re-tests
//! `d(s, u) + 1 == d(s, w)` with two distance loads per edge. It is retained
//! for two purposes only:
//!
//! - the property tests assert the new kernel reproduces this one's
//!   `dist`/`sigma`/`delta` bit-for-bit on random graphs, and
//! - the `perf` bench subcommand measures the rewrite's speedup against it
//!   (the `BENCH_kernels.json` trajectory).
//!
//! Do not use it in samplers; [`crate::BfsSpd`] is strictly faster.

use crate::UNREACHED;
use mhbc_graph::{CsrGraph, Vertex};
use std::collections::VecDeque;

/// The original queue-based BFS shortest-path-DAG kernel (see module docs).
#[derive(Debug, Clone)]
pub struct LegacyBfsSpd {
    /// `dist[v]` = `d(s, v)`, or [`UNREACHED`].
    pub dist: Vec<u32>,
    /// `sigma[v]` = number of shortest `s`–`v` paths.
    pub sigma: Vec<f64>,
    /// Vertices in BFS settle order; only reached ones.
    pub order: Vec<Vertex>,
    queue: VecDeque<Vertex>,
    source: Vertex,
}

impl LegacyBfsSpd {
    /// Workspace for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        LegacyBfsSpd {
            dist: vec![UNREACHED; n],
            sigma: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: VecDeque::new(),
            source: 0,
        }
    }

    /// Computes the SPD rooted at `s` (the pre-rewrite loop, verbatim).
    pub fn compute(&mut self, g: &CsrGraph, s: Vertex) {
        let n = g.num_vertices();
        assert_eq!(self.dist.len(), n, "workspace sized for a different graph");
        assert!((s as usize) < n, "source {s} out of range");

        for &v in &self.order {
            self.dist[v as usize] = UNREACHED;
            self.sigma[v as usize] = 0.0;
        }
        self.order.clear();
        self.queue.clear();
        self.source = s;

        self.dist[s as usize] = 0;
        self.sigma[s as usize] = 1.0;
        self.queue.push_back(s);
        while let Some(u) = self.queue.pop_front() {
            self.order.push(u);
            let du = self.dist[u as usize];
            let su = self.sigma[u as usize];
            for &v in g.neighbors(u) {
                let dv = &mut self.dist[v as usize];
                if *dv == UNREACHED {
                    *dv = du + 1;
                    self.queue.push_back(v);
                }
                if self.dist[v as usize] == du + 1 {
                    self.sigma[v as usize] += su;
                }
            }
        }
    }

    /// Backward Brandes accumulation (the pre-rewrite edge-retesting scan).
    pub fn accumulate_dependencies(&self, g: &CsrGraph, delta: &mut Vec<f64>) {
        delta.clear();
        delta.resize(self.dist.len(), 0.0);
        for &w in self.order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / self.sigma[w as usize];
            let dw = self.dist[w as usize];
            for &u in g.neighbors(w) {
                if self.dist[u as usize] != UNREACHED && self.dist[u as usize] + 1 == dw {
                    delta[u as usize] += self.sigma[u as usize] * coeff;
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }

    /// Pre-rewrite Geisberger–Sanders–Schultes linear-scaling accumulation.
    pub fn accumulate_scaled_dependencies(&self, g: &CsrGraph, scaled: &mut Vec<f64>) {
        scaled.clear();
        scaled.resize(self.dist.len(), 0.0);
        for &w in self.order.iter().rev() {
            let dw = self.dist[w as usize];
            if dw == 0 {
                continue;
            }
            let coeff = (1.0 / dw as f64 + scaled[w as usize]) / self.sigma[w as usize];
            for &u in g.neighbors(w) {
                if self.dist[u as usize] != UNREACHED && self.dist[u as usize] + 1 == dw {
                    scaled[u as usize] += self.sigma[u as usize] * coeff;
                }
            }
        }
        for (v, s) in scaled.iter_mut().enumerate() {
            if self.dist[v] != UNREACHED && self.dist[v] > 0 {
                *s *= self.dist[v] as f64;
            } else {
                *s = 0.0;
            }
        }
        scaled[self.source as usize] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn legacy_kernel_still_correct_on_path() {
        let g = generators::path(5);
        let mut spd = LegacyBfsSpd::new(5);
        spd.compute(&g, 0);
        assert_eq!(spd.dist, vec![0, 1, 2, 3, 4]);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&g, &mut delta);
        assert_eq!(delta, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }
}
