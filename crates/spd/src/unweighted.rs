//! BFS shortest-path DAGs for unweighted graphs.

use mhbc_graph::{CsrGraph, Vertex};
use std::collections::VecDeque;

/// Sentinel for unreachable vertices in [`BfsSpd::dist`].
pub const UNREACHED: u32 = u32::MAX;

/// The shortest-path DAG (SPD, §2.1) rooted at a source vertex of an
/// unweighted graph: distances, shortest-path counts σ, and the BFS
/// settle order (sources first) used for backward dependency accumulation.
///
/// The struct doubles as a reusable workspace: allocate once with
/// [`BfsSpd::new`] and call [`BfsSpd::compute`] per source. Predecessors are
/// not materialised; parent tests use the distance criterion
/// `d(s, u) + 1 == d(s, w)` on demand (saves one `O(m)` array per pass and
/// keeps the kernel allocation-free, per the perf-book guidance on reusing
/// workhorse collections).
#[derive(Debug, Clone)]
pub struct BfsSpd {
    /// `dist[v]` = `d(s, v)`, or [`UNREACHED`].
    pub dist: Vec<u32>,
    /// `sigma[v]` = number of shortest `s`–`v` paths (`σ_{sv}`).
    pub sigma: Vec<f64>,
    /// Vertices in nondecreasing-distance (BFS) order; only reached ones.
    pub order: Vec<Vertex>,
    queue: VecDeque<Vertex>,
    source: Vertex,
}

impl BfsSpd {
    /// Workspace for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BfsSpd {
            dist: vec![UNREACHED; n],
            sigma: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: VecDeque::new(),
            source: 0,
        }
    }

    /// The source of the last `compute` call.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Computes the SPD rooted at `s` in `O(|V| + |E|)`.
    ///
    /// # Panics
    /// If the workspace size does not match `g` or if `s` is out of range.
    pub fn compute(&mut self, g: &CsrGraph, s: Vertex) {
        let n = g.num_vertices();
        assert_eq!(self.dist.len(), n, "workspace sized for a different graph");
        assert!((s as usize) < n, "source {s} out of range");

        // Reset only what the previous pass touched.
        for &v in &self.order {
            self.dist[v as usize] = UNREACHED;
            self.sigma[v as usize] = 0.0;
        }
        self.order.clear();
        self.queue.clear();
        self.source = s;

        self.dist[s as usize] = 0;
        self.sigma[s as usize] = 1.0;
        self.queue.push_back(s);
        while let Some(u) = self.queue.pop_front() {
            self.order.push(u);
            let du = self.dist[u as usize];
            let su = self.sigma[u as usize];
            for &v in g.neighbors(u) {
                let dv = &mut self.dist[v as usize];
                if *dv == UNREACHED {
                    *dv = du + 1;
                    self.queue.push_back(v);
                }
                if self.dist[v as usize] == du + 1 {
                    self.sigma[v as usize] += su;
                }
            }
        }
    }

    /// Whether `u` is a predecessor (parent) of `w` in this SPD, i.e.
    /// `u ∈ P_s(w)` in the paper's notation.
    #[inline]
    pub fn is_parent(&self, u: Vertex, w: Vertex) -> bool {
        let (du, dw) = (self.dist[u as usize], self.dist[w as usize]);
        du != UNREACHED && dw != UNREACHED && du + 1 == dw
    }

    /// Number of vertices reached (including the source).
    pub fn reached(&self) -> usize {
        self.order.len()
    }

    /// Accumulates Brandes dependency scores `δ_{s•}(v)` (Eq 2/4) into
    /// `delta`, which is cleared and resized to `n`.
    ///
    /// Runs in `O(|E|)` by scanning `order` backwards and applying
    /// `δ_{s•}(u) += σ_su / σ_sw · (1 + δ_{s•}(w))` over each SPD edge.
    pub fn accumulate_dependencies(&self, g: &CsrGraph, delta: &mut Vec<f64>) {
        delta.clear();
        delta.resize(self.dist.len(), 0.0);
        for &w in self.order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / self.sigma[w as usize];
            let dw = self.dist[w as usize];
            for &u in g.neighbors(w) {
                if self.dist[u as usize] != UNREACHED && self.dist[u as usize] + 1 == dw {
                    delta[u as usize] += self.sigma[u as usize] * coeff;
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }

    /// Geisberger–Sanders–Schultes *linear-scaling* accumulation \[17\]:
    /// computes `g_s(v) = Σ_t δ_st(v) / d(s, t)` via the same backward scan
    /// with the per-target seed `1` replaced by `1 / d(s, w)`. The
    /// length-scaled dependency is then `d(s, v) · g_s(v)`, which prevents
    /// vertices from profiting merely by sitting next to a sampled source.
    pub fn accumulate_scaled_dependencies(&self, g: &CsrGraph, scaled: &mut Vec<f64>) {
        scaled.clear();
        scaled.resize(self.dist.len(), 0.0);
        for &w in self.order.iter().rev() {
            let dw = self.dist[w as usize];
            if dw == 0 {
                continue; // the source itself seeds nothing
            }
            let coeff = (1.0 / dw as f64 + scaled[w as usize]) / self.sigma[w as usize];
            for &u in g.neighbors(w) {
                if self.dist[u as usize] != UNREACHED && self.dist[u as usize] + 1 == dw {
                    scaled[u as usize] += self.sigma[u as usize] * coeff;
                }
            }
        }
        // Convert g_s(v) to d(s, v) * g_s(v) in place.
        for (v, s) in scaled.iter_mut().enumerate() {
            if self.dist[v] != UNREACHED && self.dist[v] > 0 {
                *s *= self.dist[v] as f64;
            } else {
                *s = 0.0;
            }
        }
        scaled[self.source as usize] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn path_graph_sigma_and_dist() {
        let g = generators::path(5);
        let mut spd = BfsSpd::new(5);
        spd.compute(&g, 0);
        assert_eq!(spd.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(spd.sigma, vec![1.0; 5]);
        assert_eq!(spd.order.len(), 5);
    }

    #[test]
    fn diamond_counts_two_paths() {
        // 0 - 1, 0 - 2, 1 - 3, 2 - 3: two shortest paths 0 -> 3.
        let g = CsrGraphFixture::diamond();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        assert_eq!(spd.dist[3], 2);
        assert_eq!(spd.sigma[3], 2.0);
        assert!(spd.is_parent(1, 3));
        assert!(spd.is_parent(2, 3));
        assert!(!spd.is_parent(0, 3));
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = generators::star(6);
        let mut spd = BfsSpd::new(6);
        spd.compute(&g, 0);
        assert_eq!(spd.reached(), 6);
        spd.compute(&g, 1);
        assert_eq!(spd.dist[1], 0);
        assert_eq!(spd.dist[0], 1);
        assert_eq!(spd.dist[2], 2);
        assert_eq!(spd.sigma[2], 1.0);
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        assert_eq!(spd.dist[2], UNREACHED);
        assert_eq!(spd.reached(), 2);
    }

    #[test]
    fn dependencies_on_path_match_hand_computation() {
        // Path 0-1-2-3-4, source 0: delta_0(v) = number of targets beyond v.
        let g = generators::path(5);
        let mut spd = BfsSpd::new(5);
        spd.compute(&g, 0);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&g, &mut delta);
        assert_eq!(delta, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn dependencies_split_across_diamond() {
        let g = CsrGraphFixture::diamond();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&g, &mut delta);
        // Vertices 1 and 2 each carry half of the single dependent target 3.
        assert_eq!(delta[1], 0.5);
        assert_eq!(delta[2], 0.5);
        assert_eq!(delta[0], 0.0);
        assert_eq!(delta[3], 0.0);
    }

    struct CsrGraphFixture;
    impl CsrGraphFixture {
        fn diamond() -> mhbc_graph::CsrGraph {
            mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
        }
    }
}
