//! BFS shortest-path DAGs for unweighted graphs.
//!
//! This is the hot kernel of the whole suite: every Metropolis–Hastings
//! proposal costs one pass here (§4.1), so the implementation is tuned as a
//! frontier-swap BFS with epoch-stamped state. See [`BfsSpd`] for the
//! invariants.

use mhbc_graph::{CsrGraph, Vertex};

/// Sentinel for unreachable vertices in [`BfsSpd::dist`].
pub const UNREACHED: u32 = u32::MAX;

/// Bits of a packed distance entry that hold the BFS level.
const LEVEL_BITS: u32 = 24;
/// Mask extracting the level from a packed entry.
const LEVEL_MASK: u32 = (1 << LEVEL_BITS) - 1;
/// Number of epochs before the stamp space wraps and a full reset runs.
const EPOCH_PERIOD: u32 = 1 << (32 - LEVEL_BITS);

/// The shortest-path DAG (SPD, §2.1) rooted at a source vertex of an
/// unweighted graph: distances, shortest-path counts σ, and the BFS
/// settle order (sources first) used for backward dependency accumulation.
///
/// The struct doubles as a reusable workspace: allocate once with
/// [`BfsSpd::new`] and call [`BfsSpd::compute`] per source. Predecessors are
/// not materialised; parent tests use the distance criterion
/// `d(s, u) + 1 == d(s, w)` on demand (saves one `O(m)` array per pass and
/// keeps the kernel allocation-free).
///
/// # Kernel design and invariants
///
/// The forward pass is a *frontier-swap* BFS rather than a `VecDeque`: the
/// settle-order array itself stores the frontiers, and each level is the
/// slice `order[level_starts[l]..level_starts[l + 1]]`. Processing level `l`
/// appends level `l + 1` in place, so frontiers are never copied and the
/// produced order is identical to queue order.
///
/// Distances are *epoch-stamped*: each `u32` entry of the internal distance
/// array packs `(epoch << 24) | level`, and a pass begins by bumping the
/// epoch — every stale entry is implicitly "unreached" because its high
/// bits no longer match (the 8-bit epoch space wraps every 256 passes, at
/// which point one full reset runs; amortised `O(n / 256)` per pass). This
/// removes the per-pass clearing loop, keeps distance loads at 4 bytes
/// (random-access bandwidth is what bounds this kernel), and makes the two
/// hot tests single-load comparisons:
///
/// - forward discovery: `packed < epoch << 24` ⇔ not yet reached this pass;
/// - parent test: `packed == (epoch << 24) | (level - 1)` ⇔ `u` is one
///   level above `w`, with no possibility of a stale false positive.
///
/// σ needs no reset either: it is *assigned* on discovery and only
/// accumulated afterwards, and is read only for vertices proven reached via
/// the stamped distance.
///
/// The backward scans ([`BfsSpd::accumulate_dependencies`],
/// [`BfsSpd::accumulate_scaled_dependencies`]) walk the recorded level
/// boundaries deepest-first (reverse order within each level, i.e. exactly
/// the reverse of the settle order, so accumulation order — and therefore
/// every floating-point sum — is bit-identical to the queue-based kernel in
/// [`crate::legacy`]). The parent test against the packed key of
/// `level - 1` costs one distance load per edge, versus the legacy kernel's
/// two loads plus an add.
///
/// BFS levels are limited to `2^24 - 2` (graphs of diameter beyond ~16.7M
/// panic); vertex counts are unrestricted.
#[derive(Debug, Clone)]
pub struct BfsSpd {
    /// `(epoch << 24) | level` per vertex; stale epochs mean unreached.
    packed: Vec<u32>,
    /// `sigma[v]` = number of shortest `s`–`v` paths; valid only for
    /// vertices reached in the current epoch.
    sigma: Vec<f64>,
    /// Vertices in nondecreasing-distance (BFS) order; only reached ones.
    order: Vec<Vertex>,
    /// `level_starts[l]..level_starts[l + 1]` indexes level `l` in `order`;
    /// the last entry is `order.len()`.
    level_starts: Vec<usize>,
    epoch: u32,
    source: Vertex,
}

impl BfsSpd {
    /// Workspace for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BfsSpd {
            packed: vec![0; n],
            sigma: vec![0.0; n],
            order: Vec::with_capacity(n),
            level_starts: Vec::new(),
            // Epoch 1 with all-zero stamps (epoch field 0): a fresh
            // workspace reports every vertex unreached, matching the legacy
            // kernel's UNREACHED-initialised fields.
            epoch: 1,
            source: 0,
        }
    }

    /// The source of the last `compute` call.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Base stamp of the current epoch; entries below it are stale.
    #[inline(always)]
    fn base(&self) -> u32 {
        self.epoch << LEVEL_BITS
    }

    /// `dist[v]` = `d(s, v)`, or [`UNREACHED`] if `v` was not reached by the
    /// last [`BfsSpd::compute`] call.
    #[inline]
    pub fn dist(&self, v: Vertex) -> u32 {
        let p = self.packed[v as usize];
        if p >> LEVEL_BITS == self.epoch {
            p & LEVEL_MASK
        } else {
            UNREACHED
        }
    }

    /// `σ_{sv}`: number of shortest `s`–`v` paths (0 if unreached).
    #[inline]
    pub fn sigma(&self, v: Vertex) -> f64 {
        if self.packed[v as usize] >> LEVEL_BITS == self.epoch {
            self.sigma[v as usize]
        } else {
            0.0
        }
    }

    /// Vertices in BFS settle order (source first); only reached ones.
    #[inline]
    pub fn order(&self) -> &[Vertex] {
        &self.order
    }

    /// Level boundaries into [`BfsSpd::order`]: level `l` is
    /// `order[level_starts()[l]..level_starts()[l + 1]]`, and the number of
    /// BFS levels is `level_starts().len() - 1`.
    #[inline]
    pub fn level_starts(&self) -> &[usize] {
        &self.level_starts
    }

    /// Computes the SPD rooted at `s` in `O(|V| + |E|)`.
    ///
    /// # Panics
    /// If the workspace size does not match `g`, if `s` is out of range, or
    /// if the BFS exceeds `2^24 - 2` levels.
    pub fn compute(&mut self, g: &CsrGraph, s: Vertex) {
        let n = g.num_vertices();
        assert_eq!(self.packed.len(), n, "workspace sized for a different graph");
        assert!((s as usize) < n, "source {s} out of range");

        // Epoch bump replaces the per-pass clearing loop. On the wrap —
        // once every EPOCH_PERIOD passes — one full reset runs so stale
        // stamps from a reused epoch value cannot alias.
        self.epoch += 1;
        if self.epoch == EPOCH_PERIOD {
            self.packed.iter_mut().for_each(|p| *p = 0);
            self.epoch = 1;
        }
        let base = self.base();
        let mut order = std::mem::take(&mut self.order);
        let mut level_starts = std::mem::take(&mut self.level_starts);
        order.clear();
        level_starts.clear();
        self.source = s;

        let packed = &mut self.packed[..];
        let sigma = &mut self.sigma[..];
        packed[s as usize] = base;
        sigma[s as usize] = 1.0;
        order.push(s);
        level_starts.push(0);
        level_starts.push(1);

        let (offsets, targets) = g.csr();
        let mut level: u32 = 0;
        let mut lo = 0usize;
        while lo < order.len() {
            let hi = order.len();
            assert!(level < LEVEL_MASK - 1, "BFS level overflow (diameter > 2^24 - 2)");
            let child_key = base | (level + 1);
            for i in lo..hi {
                // SAFETY: `i < hi <= order.len()`, every vertex id in
                // `order`/`targets` is validated `< n` at graph
                // construction, `offsets` has length `n + 1` with
                // `offsets[u] <= offsets[u + 1] <= targets.len()`, and
                // `packed`/`sigma` have length `n` (asserted on entry).
                // Eliding the per-edge bounds checks is part of this
                // kernel's speedup budget.
                unsafe {
                    let u = *order.get_unchecked(i) as usize;
                    let su = *sigma.get_unchecked(u);
                    let (a, b) = (*offsets.get_unchecked(u), *offsets.get_unchecked(u + 1));
                    for &v in targets.get_unchecked(a..b) {
                        let v = v as usize;
                        // One distance load classifies the edge. Relative
                        // to the epoch base: `rel <= level` means already
                        // settled at this or an earlier level (the common
                        // no-op — one compare), `rel == level + 1` is
                        // another shortest path, and anything larger is a
                        // stale stamp from a previous pass (discovery) —
                        // stale stamps wrap to `>= 2^24 > level + 1`.
                        let rel = (*packed.get_unchecked(v)).wrapping_sub(base);
                        if rel <= level {
                            continue;
                        }
                        if rel == level + 1 {
                            *sigma.get_unchecked_mut(v) += su;
                        } else {
                            *packed.get_unchecked_mut(v) = child_key;
                            *sigma.get_unchecked_mut(v) = su;
                            order.push(v as Vertex);
                        }
                    }
                }
            }
            lo = hi;
            level += 1;
            if order.len() > hi {
                level_starts.push(order.len());
            }
            // Once every vertex is discovered, the remaining (deepest)
            // frontier's scan is provably all no-ops: it can discover
            // nothing, and a σ-contribution would need a neighbour one
            // level deeper, which cannot exist. Skipping it drops a large
            // share of edge visits on small-diameter graphs — a structural
            // saving the queue-based kernel cannot express, because it
            // only learns a level is deepest by scanning it.
            if order.len() == n {
                break;
            }
        }
        self.order = order;
        self.level_starts = level_starts;
    }

    /// Multiplicity-aware SPD for *collapsed* graphs (see
    /// `mhbc_graph::reduce`): vertex `z` stands for `mult[z]` interchangeable
    /// twins of the underlying (pruned) graph, and σ counts shortest paths
    /// between **single members** of the source and target classes.
    ///
    /// The recurrence is the standard one with every traversal *through* an
    /// intermediate class multiplied by its member count:
    ///
    /// ```text
    /// σ̃(src) = 1,     σ̃(v) = Σ_{u ∈ parents(v)} m(u) · σ̃(u)
    /// ```
    ///
    /// where `m(u) = mult[u]` except `m(src) = 1` — of the source class,
    /// only the one member acting as the source lies on any shortest path
    /// (its twins sit at distance 1 or 2 and can never be interior, since
    /// they share the source's distances to everything else). Levels,
    /// order, and `dist` are exactly as in [`BfsSpd::compute`]; with all
    /// multiplicities 1 the pass degenerates to it bit for bit.
    ///
    /// # Panics
    /// As [`BfsSpd::compute`], plus if `mult.len()` mismatches the graph.
    pub fn compute_collapsed(&mut self, g: &CsrGraph, s: Vertex, mult: &[f64]) {
        let n = g.num_vertices();
        assert_eq!(self.packed.len(), n, "workspace sized for a different graph");
        assert_eq!(mult.len(), n, "multiplicities sized for a different graph");
        assert!((s as usize) < n, "source {s} out of range");

        self.epoch += 1;
        if self.epoch == EPOCH_PERIOD {
            self.packed.iter_mut().for_each(|p| *p = 0);
            self.epoch = 1;
        }
        let base = self.base();
        let mut order = std::mem::take(&mut self.order);
        let mut level_starts = std::mem::take(&mut self.level_starts);
        order.clear();
        level_starts.clear();
        self.source = s;

        let packed = &mut self.packed[..];
        let sigma = &mut self.sigma[..];
        packed[s as usize] = base;
        sigma[s as usize] = 1.0;
        order.push(s);
        level_starts.push(0);
        level_starts.push(1);

        let (offsets, targets) = g.csr();
        let s_usize = s as usize;
        let mut level: u32 = 0;
        let mut lo = 0usize;
        while lo < order.len() {
            let hi = order.len();
            assert!(level < LEVEL_MASK - 1, "BFS level overflow (diameter > 2^24 - 2)");
            let child_key = base | (level + 1);
            for i in lo..hi {
                // SAFETY: as in `compute`; `mult` has length `n` (asserted).
                unsafe {
                    let u = *order.get_unchecked(i) as usize;
                    // Paths continue through all `mult[u]` members of an
                    // interior class, but only through the source member
                    // itself at the root.
                    let su = if u == s_usize {
                        *sigma.get_unchecked(u)
                    } else {
                        *sigma.get_unchecked(u) * *mult.get_unchecked(u)
                    };
                    let (a, b) = (*offsets.get_unchecked(u), *offsets.get_unchecked(u + 1));
                    for &v in targets.get_unchecked(a..b) {
                        let v = v as usize;
                        let rel = (*packed.get_unchecked(v)).wrapping_sub(base);
                        if rel <= level {
                            continue;
                        }
                        if rel == level + 1 {
                            *sigma.get_unchecked_mut(v) += su;
                        } else {
                            *packed.get_unchecked_mut(v) = child_key;
                            *sigma.get_unchecked_mut(v) = su;
                            order.push(v as Vertex);
                        }
                    }
                }
            }
            lo = hi;
            level += 1;
            if order.len() > hi {
                level_starts.push(order.len());
            }
            if order.len() == n {
                break;
            }
        }
        self.order = order;
        self.level_starts = level_starts;
    }

    /// Backward accumulation matching [`BfsSpd::compute_collapsed`]: the
    /// class-level Brandes recurrence with per-class target seeds.
    ///
    /// Grouping the vertex-weighted Brandes recurrence
    /// `δ(x) = Σ_{w ∈ children(x)} σ(x)/σ(w) · (ω(w) + δ(w))` over twin
    /// classes (all `mult[w]` members of a child class share `σ̃`, `δ`, and
    /// a total seed `seeds[w] = Σ_members ω`) gives
    ///
    /// ```text
    /// δ(x) = Σ_{w ∈ child classes} σ̃(x)/σ̃(w) · (seeds[w] + mult[w] · δ(w))
    /// ```
    ///
    /// where `δ(z)` is the accumulated dependency of **one member** of
    /// class `z` over all single-member targets, each weighted by its seed.
    /// With unit seeds and multiplicities this is exactly
    /// [`BfsSpd::accumulate_dependencies`].
    ///
    /// # Panics
    /// If `g`, `mult`, or `seeds` mismatch the workspace size.
    pub fn accumulate_dependencies_collapsed(
        &self,
        g: &CsrGraph,
        mult: &[f64],
        seeds: &[f64],
        delta: &mut Vec<f64>,
    ) {
        let n = self.packed.len();
        assert_eq!(g.num_vertices(), n, "graph does not match workspace");
        assert_eq!(mult.len(), n, "multiplicities do not match workspace");
        assert_eq!(seeds.len(), n, "seeds do not match workspace");
        delta.clear();
        delta.resize(n, 0.0);
        let delta = &mut delta[..];
        let (packed, sigma) = (&self.packed[..], &self.sigma[..]);
        let base = self.base();
        let (offsets, targets) = g.csr();
        let levels = self.level_starts.len().saturating_sub(1);
        // Level 1 feeds only the (zeroed) source entry; skipped as in the
        // unit-seed kernel.
        for lvl in (2..levels).rev() {
            let parent_key = base | (lvl as u32 - 1);
            let (start, end) = (self.level_starts[lvl], self.level_starts[lvl + 1]);
            for &w in self.order[start..end].iter().rev() {
                let w = w as usize;
                // SAFETY: as in `accumulate_dependencies`; `mult`/`seeds`
                // have length `n` (asserted).
                unsafe {
                    let coeff = (*seeds.get_unchecked(w)
                        + *mult.get_unchecked(w) * *delta.get_unchecked(w))
                        / *sigma.get_unchecked(w);
                    let (a, b) = (*offsets.get_unchecked(w), *offsets.get_unchecked(w + 1));
                    for &u in targets.get_unchecked(a..b) {
                        let u = u as usize;
                        if *packed.get_unchecked(u) == parent_key {
                            *delta.get_unchecked_mut(u) += *sigma.get_unchecked(u) * coeff;
                        }
                    }
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }

    /// Whether `u` is a predecessor (parent) of `w` in this SPD, i.e.
    /// `u ∈ P_s(w)` in the paper's notation.
    #[inline]
    pub fn is_parent(&self, u: Vertex, w: Vertex) -> bool {
        let (pu, pw) = (self.packed[u as usize], self.packed[w as usize]);
        let base = self.base();
        // Reached entries of the current epoch are exactly those >= base
        // (no larger epoch exists), and levels never saturate the low bits,
        // so pu + 1 cannot carry into the epoch field.
        pu >= base && pw >= base && pu + 1 == pw
    }

    /// Number of vertices reached (including the source).
    pub fn reached(&self) -> usize {
        self.order.len()
    }

    /// Accumulates Brandes dependency scores `δ_{s•}(v)` (Eq 2/4) into
    /// `delta`, which is cleared and resized to `n`.
    ///
    /// Runs in `O(|E|)` by scanning the recorded levels deepest-first and
    /// applying `δ_{s•}(u) += σ_su / σ_sw · (1 + δ_{s•}(w))` over each SPD
    /// edge; the parent test is one packed-distance comparison per edge.
    ///
    /// # Panics
    /// If `g` does not match the workspace size (the graph-match assertion
    /// also guards the unchecked indexing below).
    pub fn accumulate_dependencies(&self, g: &CsrGraph, delta: &mut Vec<f64>) {
        assert_eq!(g.num_vertices(), self.packed.len(), "graph does not match workspace");
        delta.clear();
        delta.resize(self.packed.len(), 0.0);
        let delta = &mut delta[..];
        let (packed, sigma) = (&self.packed[..], &self.sigma[..]);
        let base = self.base();
        let (offsets, targets) = g.csr();
        // 0 before the first compute call: accumulate nothing (all zeros).
        let levels = self.level_starts.len().saturating_sub(1);
        // Level 1 is skipped: its vertices' only parent is the source, so
        // its whole scan would accumulate into `delta[source]`, which is
        // zeroed below anyway (the legacy kernel pays for that scan).
        for lvl in (2..levels).rev() {
            let parent_key = base | (lvl as u32 - 1);
            let (start, end) = (self.level_starts[lvl], self.level_starts[lvl + 1]);
            for &w in self.order[start..end].iter().rev() {
                let w = w as usize;
                // SAFETY: as in `compute` — all vertex ids are < n and the
                // arrays have length n / n + 1.
                unsafe {
                    let coeff = (1.0 + *delta.get_unchecked(w)) / *sigma.get_unchecked(w);
                    let (a, b) = (*offsets.get_unchecked(w), *offsets.get_unchecked(w + 1));
                    for &u in targets.get_unchecked(a..b) {
                        let u = u as usize;
                        if *packed.get_unchecked(u) == parent_key {
                            *delta.get_unchecked_mut(u) += *sigma.get_unchecked(u) * coeff;
                        }
                    }
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }

    /// Geisberger–Sanders–Schultes *linear-scaling* accumulation \[17\]:
    /// computes `g_s(v) = Σ_t δ_st(v) / d(s, t)` via the same backward scan
    /// with the per-target seed `1` replaced by `1 / d(s, w)`. The
    /// length-scaled dependency is then `d(s, v) · g_s(v)`, which prevents
    /// vertices from profiting merely by sitting next to a sampled source.
    pub fn accumulate_scaled_dependencies(&self, g: &CsrGraph, scaled: &mut Vec<f64>) {
        assert_eq!(g.num_vertices(), self.packed.len(), "graph does not match workspace");
        scaled.clear();
        scaled.resize(self.packed.len(), 0.0);
        let scaled = &mut scaled[..];
        let (packed, sigma) = (&self.packed[..], &self.sigma[..]);
        let base = self.base();
        let (offsets, targets) = g.csr();
        // 0 before the first compute call: accumulate nothing (all zeros).
        let levels = self.level_starts.len().saturating_sub(1);
        // As in `accumulate_dependencies`, level 1 feeds only the source's
        // (discarded) entry and is skipped.
        for lvl in (2..levels).rev() {
            let parent_key = base | (lvl as u32 - 1);
            let inv_dw = 1.0 / lvl as f64;
            let (start, end) = (self.level_starts[lvl], self.level_starts[lvl + 1]);
            for &w in self.order[start..end].iter().rev() {
                let w = w as usize;
                let coeff = (inv_dw + scaled[w]) / sigma[w];
                for &u in &targets[offsets[w]..offsets[w + 1]] {
                    let u = u as usize;
                    if packed[u] == parent_key {
                        scaled[u] += sigma[u] * coeff;
                    }
                }
            }
        }
        // Convert g_s(v) to d(s, v) * g_s(v) in place.
        for lvl in 1..levels {
            let (start, end) = (self.level_starts[lvl], self.level_starts[lvl + 1]);
            for &v in &self.order[start..end] {
                scaled[v as usize] *= lvl as f64;
            }
        }
        scaled[self.source as usize] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn path_graph_sigma_and_dist() {
        let g = generators::path(5);
        let mut spd = BfsSpd::new(5);
        spd.compute(&g, 0);
        for v in 0..5 {
            assert_eq!(spd.dist(v), v);
            assert_eq!(spd.sigma(v), 1.0);
        }
        assert_eq!(spd.order().len(), 5);
        assert_eq!(spd.level_starts(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn diamond_counts_two_paths() {
        // 0 - 1, 0 - 2, 1 - 3, 2 - 3: two shortest paths 0 -> 3.
        let g = CsrGraphFixture::diamond();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        assert_eq!(spd.dist(3), 2);
        assert_eq!(spd.sigma(3), 2.0);
        assert!(spd.is_parent(1, 3));
        assert!(spd.is_parent(2, 3));
        assert!(!spd.is_parent(0, 3));
        assert_eq!(spd.level_starts(), &[0, 1, 3, 4]);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = generators::star(6);
        let mut spd = BfsSpd::new(6);
        spd.compute(&g, 0);
        assert_eq!(spd.reached(), 6);
        spd.compute(&g, 1);
        assert_eq!(spd.dist(1), 0);
        assert_eq!(spd.dist(0), 1);
        assert_eq!(spd.dist(2), 2);
        assert_eq!(spd.sigma(2), 1.0);
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        assert_eq!(spd.dist(2), UNREACHED);
        assert_eq!(spd.sigma(2), 0.0);
        assert_eq!(spd.reached(), 2);
    }

    #[test]
    fn stale_epochs_never_alias_parent_tests() {
        // Pass 1 reaches {2, 3}; pass 2 reaches {0, 1}. Stale stamps for
        // 2 and 3 (dist 0 and 1 in the old epoch) must not satisfy the
        // parent test or report as reached.
        let g = mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 2);
        assert_eq!(spd.dist(3), 1);
        spd.compute(&g, 0);
        assert_eq!(spd.dist(2), UNREACHED);
        assert_eq!(spd.dist(3), UNREACHED);
        assert!(!spd.is_parent(2, 3));
        assert!(!spd.is_parent(2, 1));
        assert!(spd.is_parent(0, 1));
    }

    #[test]
    fn fresh_workspace_reports_nothing_reached() {
        let g = generators::path(4);
        let spd = BfsSpd::new(4);
        assert_eq!(spd.reached(), 0);
        for v in 0..4 {
            assert_eq!(spd.dist(v), UNREACHED, "vertex {v}");
            assert_eq!(spd.sigma(v), 0.0, "vertex {v}");
            assert!(!spd.is_parent(v, (v + 1) % 4));
        }
        // Accumulating before any compute yields all zeros, like the legacy
        // kernel did.
        let mut delta = vec![9.9];
        spd.accumulate_dependencies(&g, &mut delta);
        assert_eq!(delta, vec![0.0; 4]);
        spd.accumulate_scaled_dependencies(&g, &mut delta);
        assert_eq!(delta, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "graph does not match workspace")]
    fn accumulate_rejects_mismatched_graph() {
        let big = generators::path(8);
        let small = generators::path(3);
        let mut spd = BfsSpd::new(8);
        spd.compute(&big, 0);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&small, &mut delta);
    }

    #[test]
    fn epoch_wraparound_resets_cleanly() {
        // Drive the 8-bit epoch space through several wraps and check
        // results stay correct throughout.
        let g = mhbc_graph::CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut spd = BfsSpd::new(5);
        for pass in 0..(3 * super::EPOCH_PERIOD as usize + 7) {
            let (s, expect_reached) = if pass % 2 == 0 { (0u32, 3) } else { (3u32, 2) };
            spd.compute(&g, s);
            assert_eq!(spd.reached(), expect_reached, "pass {pass}");
            assert_eq!(spd.dist(s), 0, "pass {pass}");
            if pass % 2 == 0 {
                assert_eq!(spd.dist(2), 2);
                assert_eq!(spd.dist(4), UNREACHED);
            } else {
                assert_eq!(spd.dist(4), 1);
                assert_eq!(spd.dist(0), UNREACHED);
            }
        }
    }

    #[test]
    fn dependencies_on_path_match_hand_computation() {
        // Path 0-1-2-3-4, source 0: delta_0(v) = number of targets beyond v.
        let g = generators::path(5);
        let mut spd = BfsSpd::new(5);
        spd.compute(&g, 0);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&g, &mut delta);
        assert_eq!(delta, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn dependencies_split_across_diamond() {
        let g = CsrGraphFixture::diamond();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&g, &mut delta);
        // Vertices 1 and 2 each carry half of the single dependent target 3.
        assert_eq!(delta[1], 0.5);
        assert_eq!(delta[2], 0.5);
        assert_eq!(delta[0], 0.0);
        assert_eq!(delta[3], 0.0);
    }

    #[test]
    fn matches_legacy_kernel_bitwise_on_generators() {
        use crate::legacy::LegacyBfsSpd;
        for g in [
            generators::barbell(6, 3),
            generators::grid(7, 5, false),
            generators::lollipop(5, 4),
            generators::star(12),
        ] {
            let n = g.num_vertices();
            let mut new = BfsSpd::new(n);
            let mut old = LegacyBfsSpd::new(n);
            for s in 0..n as Vertex {
                new.compute(&g, s);
                old.compute(&g, s);
                assert_eq!(new.order(), &old.order[..], "order, source {s}");
                for v in 0..n as Vertex {
                    assert_eq!(new.dist(v), old.dist[v as usize], "dist {v}, source {s}");
                    assert_eq!(
                        new.sigma(v).to_bits(),
                        old.sigma[v as usize].to_bits(),
                        "sigma {v}, source {s}"
                    );
                }
                let (mut d1, mut d2) = (Vec::new(), Vec::new());
                new.accumulate_dependencies(&g, &mut d1);
                old.accumulate_dependencies(&g, &mut d2);
                for v in 0..n {
                    assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "delta {v}, source {s}");
                }
                new.accumulate_scaled_dependencies(&g, &mut d1);
                old.accumulate_scaled_dependencies(&g, &mut d2);
                for v in 0..n {
                    assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "scaled {v}, source {s}");
                }
            }
        }
    }

    struct CsrGraphFixture;
    impl CsrGraphFixture {
        fn diamond() -> mhbc_graph::CsrGraph {
            mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
        }
    }
}
