//! BFS shortest-path DAGs for unweighted graphs.
//!
//! This is the hot kernel of the whole suite: every Metropolis–Hastings
//! proposal costs one pass here (§4.1), so the implementation is tuned as a
//! direction-optimizing (top-down/bottom-up hybrid) frontier BFS with
//! epoch-stamped state over the compact `u32` CSR. See [`BfsSpd`] for the
//! invariants and [`KernelMode`] for the strategy knob.

use mhbc_graph::{CsrGraph, Vertex, VisitBitset};

/// Sentinel for unreachable vertices in [`BfsSpd::dist`].
pub const UNREACHED: u32 = u32::MAX;

/// Bits of a packed distance entry that hold the BFS level.
const LEVEL_BITS: u32 = 24;
/// Mask extracting the level from a packed entry.
const LEVEL_MASK: u32 = (1 << LEVEL_BITS) - 1;
/// Number of epochs before the stamp space wraps and a full reset runs.
const EPOCH_PERIOD: u32 = 1 << (32 - LEVEL_BITS);

/// Default α of the direction switch: a level runs bottom-up when
/// `frontier_edges · α > 8 · (unexplored_edges + n/β)` — α = 8 is the
/// break-even cost comparison (see [`BfsSpd::set_hybrid_params`] for why
/// σ-counting BFS needs a much later switch than plain BFS).
const DEFAULT_ALPHA: u32 = 8;
/// Default β of the direction switch: `n/β` is the charge for (re)building
/// the unsettled-candidates list when a bottom-up phase starts.
const DEFAULT_BETA: u32 = 8;

/// Forward-pass strategy of [`BfsSpd`].
///
/// Every mode produces **bit-identical** `dist`/σ/settle-order — and
/// therefore bit-identical dependency scores and downstream betweenness
/// sums — because the kernel canonicalises the within-level settle order
/// (ascending vertex id) and both directions visit each vertex's parents in
/// ascending id order (see [`BfsSpd`]'s kernel-design docs). The mode is
/// purely a performance choice, which is why `Auto` can pick per graph
/// without perturbing any sampler output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Classic top-down (push) BFS on every level.
    TopDown,
    /// Direction-optimizing BFS: per level, the α/β heuristics pick
    /// top-down (push) or bottom-up (pull) from the frontier's edge count —
    /// a deterministic, pure function of `(graph, source)`.
    Hybrid,
    /// Resolve per graph: `Hybrid` when the graph can profit from pull
    /// levels (average degree ≥ 4, i.e. `2m ≥ 4n`), `TopDown` otherwise —
    /// below that, traversals are deep and narrow (trees, paths, 2D
    /// grids), the switch condition never engages, and skipping the
    /// frontier-edge bookkeeping is free speed. The default.
    #[default]
    Auto,
}

impl KernelMode {
    /// Parses a CLI-style mode name (`auto`, `topdown`, `hybrid`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(KernelMode::Auto),
            "topdown" => Some(KernelMode::TopDown),
            "hybrid" => Some(KernelMode::Hybrid),
            _ => None,
        }
    }

    /// The CLI-style mode name.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelMode::TopDown => "topdown",
            KernelMode::Hybrid => "hybrid",
            KernelMode::Auto => "auto",
        }
    }
}

/// The shortest-path DAG (SPD, §2.1) rooted at a source vertex of an
/// unweighted graph: distances, shortest-path counts σ, and the BFS
/// settle order (sources first) used for backward dependency accumulation.
///
/// The struct doubles as a reusable workspace: allocate once with
/// [`BfsSpd::new`] and call [`BfsSpd::compute`] per source. Predecessors are
/// not materialised; parent tests use the distance criterion
/// `d(s, u) + 1 == d(s, w)` on demand (saves one `O(m)` array per pass and
/// keeps the kernel allocation-free).
///
/// # Kernel design and invariants
///
/// The forward pass is a *direction-optimizing* frontier BFS: the
/// settle-order array itself stores the frontiers (each level is the slice
/// `order[level_starts[l]..level_starts[l + 1]]`), and each level is built
/// either **top-down** ("push": every frontier vertex scans its adjacency,
/// discovering and σ-feeding the next level) or **bottom-up** ("pull":
/// every *undiscovered* vertex scans its own adjacency for parents in the
/// current frontier — tested against a one-bit-per-vertex frontier bitmap —
/// and sums σ over them). Pull wins on the large mid-BFS frontiers of
/// low-diameter graphs, where it reads each undiscovered vertex's edges
/// once instead of pushing every frontier edge; the α/β heuristics of
/// Beamer et al. choose the direction per level from exact frontier-edge
/// counts, so the whole decision sequence is a pure function of
/// `(graph, source)` and runs are reproducible.
///
/// ## Canonical settle order
///
/// Within each level, vertices settle in **ascending vertex id** — push
/// levels sort their freshly discovered slice, pull levels produce it
/// sorted for free. This canonicalisation is what makes every
/// [`KernelMode`] bit-identical, not merely equivalent:
///
/// - levels and distances are direction-independent by BFS correctness;
/// - σ sums accumulate **in ascending parent id** in both directions (push
///   scans an ascending frontier; pull scans a sorted adjacency list), so
///   every floating-point σ is the same rounded sum;
/// - the backward scans walk the recorded order, so δ accumulates in the
///   same order too.
///
/// The legacy queue kernel ([`crate::legacy`]) offers the same canonical
/// order through an explicit `canonicalize_order` step (kept out of its
/// timed loops), keeping the legacy-equivalence property tests bitwise.
///
/// ## Epoch-stamped distances
///
/// Distances are *epoch-stamped*: each `u32` entry of the internal distance
/// array packs `(epoch << 24) | level`, and a pass begins by bumping the
/// epoch — every stale entry is implicitly "unreached" because its high
/// bits no longer match (the 8-bit epoch space wraps every 256 passes, at
/// which point one full reset runs; amortised `O(n / 256)` per pass). This
/// removes the per-pass clearing loop, keeps distance loads at 4 bytes
/// (random-access bandwidth is what bounds this kernel — which is also why
/// the CSR offsets it streams are `u32`, see [`CsrGraph::csr`]), and makes
/// the two hot tests single-load comparisons:
///
/// - forward discovery: `packed < epoch << 24` ⇔ not yet reached this pass;
/// - parent test: `packed == (epoch << 24) | (level - 1)` ⇔ `u` is one
///   level above `w`, with no possibility of a stale false positive.
///
/// σ needs no reset either: it is *assigned* on discovery and only
/// accumulated afterwards, and is read only for vertices proven reached via
/// the stamped distance.
///
/// The backward scans ([`BfsSpd::accumulate_dependencies`],
/// [`BfsSpd::accumulate_scaled_dependencies`]) walk the recorded level
/// boundaries deepest-first (reverse order within each level, i.e. exactly
/// the reverse of the canonical settle order). The parent test against the
/// packed key of `level - 1` costs one distance load per edge.
///
/// BFS levels are limited to `2^24 - 2` (graphs of diameter beyond ~16.7M
/// panic); vertex counts are unrestricted.
#[derive(Debug, Clone)]
pub struct BfsSpd {
    /// `(epoch << 24) | level` per vertex; stale epochs mean unreached.
    packed: Vec<u32>,
    /// `sigma[v]` = number of shortest `s`–`v` paths; valid only for
    /// vertices reached in the current epoch.
    sigma: Vec<f64>,
    /// Vertices in nondecreasing-distance order, ascending id within each
    /// level (the canonical settle order); only reached ones.
    order: Vec<Vertex>,
    /// `level_starts[l]..level_starts[l + 1]` indexes level `l` in `order`;
    /// the last entry is `order.len()`.
    level_starts: Vec<usize>,
    /// Frontier membership bitmap for bottom-up levels (empty between
    /// passes).
    frontier: VisitBitset,
    /// Still-undiscovered vertices, ascending, maintained by in-place
    /// compaction across consecutive bottom-up levels (stale between
    /// passes; rebuilt when a bottom-up phase starts).
    candidates: Vec<Vertex>,
    epoch: u32,
    source: Vertex,
    mode: KernelMode,
    alpha: u32,
    beta: u32,
    /// How many levels of the last pass ran bottom-up.
    pull_levels: u32,
}

impl BfsSpd {
    /// Workspace for graphs with `n` vertices, in [`KernelMode::Auto`].
    pub fn new(n: usize) -> Self {
        Self::with_mode(n, KernelMode::Auto)
    }

    /// Workspace with an explicit forward-pass strategy.
    pub fn with_mode(n: usize, mode: KernelMode) -> Self {
        BfsSpd {
            packed: vec![0; n],
            sigma: vec![0.0; n],
            order: Vec::with_capacity(n),
            level_starts: Vec::new(),
            frontier: VisitBitset::new(n),
            candidates: Vec::new(),
            // Epoch 1 with all-zero stamps (epoch field 0): a fresh
            // workspace reports every vertex unreached, matching the legacy
            // kernel's UNREACHED-initialised fields.
            epoch: 1,
            source: 0,
            mode,
            alpha: DEFAULT_ALPHA,
            beta: DEFAULT_BETA,
            pull_levels: 0,
        }
    }

    /// The forward-pass strategy.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Switches the forward-pass strategy; results are bit-identical either
    /// way (see [`KernelMode`]), so this is safe mid-stream on a reused
    /// workspace — the epoch stamps carry across mode switches.
    pub fn set_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
    }

    /// Overrides the α/β direction-switch thresholds (defaults 8/8): a
    /// level runs bottom-up iff
    ///
    /// ```text
    /// frontier_edges · α > 8 · (unexplored_edges + n/β)
    /// ```
    ///
    /// i.e. at the defaults, iff the push cost (scanning every frontier
    /// edge) outweighs the pull cost (scanning every edge of every
    /// undiscovered vertex, plus `n/β` charged for building the
    /// candidates list). Unlike plain BFS — where Beamer's classical
    /// `α = 14` pays because bottom-up stops at the *first* parent — the
    /// σ-counting pull must visit **every** parent of each vertex, so its
    /// cost is the full unexplored edge count and the profitable switch
    /// point comes much later: essentially only the last big level(s) of a
    /// low-diameter traversal. Raising α makes pull more eager; `α =
    /// u32::MAX` forces bottom-up whenever `frontier_edges · u32::MAX`
    /// clears the right-hand side — from level 1 on every graph the test
    /// suite uses, though on graphs beyond ~2^28 edge endpoints a
    /// degree-1 source's first level can still push (the tests assert
    /// `pull_levels() > 0` rather than trusting this recipe); results
    /// stay bit-identical for every setting.
    pub fn set_hybrid_params(&mut self, alpha: u32, beta: u32) {
        self.alpha = alpha;
        self.beta = beta.max(1);
    }

    /// How many levels of the last pass ran bottom-up (0 in pure top-down).
    pub fn pull_levels(&self) -> u32 {
        self.pull_levels
    }

    /// The source of the last `compute` call.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Base stamp of the current epoch; entries below it are stale.
    #[inline(always)]
    fn base(&self) -> u32 {
        self.epoch << LEVEL_BITS
    }

    /// `dist[v]` = `d(s, v)`, or [`UNREACHED`] if `v` was not reached by the
    /// last [`BfsSpd::compute`] call.
    #[inline]
    pub fn dist(&self, v: Vertex) -> u32 {
        let p = self.packed[v as usize];
        if p >> LEVEL_BITS == self.epoch {
            p & LEVEL_MASK
        } else {
            UNREACHED
        }
    }

    /// `σ_{sv}`: number of shortest `s`–`v` paths (0 if unreached).
    #[inline]
    pub fn sigma(&self, v: Vertex) -> f64 {
        if self.packed[v as usize] >> LEVEL_BITS == self.epoch {
            self.sigma[v as usize]
        } else {
            0.0
        }
    }

    /// Vertices in the canonical settle order (source first, ascending id
    /// within each level); only reached ones.
    #[inline]
    pub fn order(&self) -> &[Vertex] {
        &self.order
    }

    /// Level boundaries into [`BfsSpd::order`]: level `l` is
    /// `order[level_starts()[l]..level_starts()[l + 1]]`, and the number of
    /// BFS levels is `level_starts().len() - 1`.
    #[inline]
    pub fn level_starts(&self) -> &[usize] {
        &self.level_starts
    }

    /// Computes the SPD rooted at `s` in `O(|V| + |E|)`.
    ///
    /// # Panics
    /// If the workspace size does not match `g`, if `s` is out of range, or
    /// if the BFS exceeds `2^24 - 2` levels.
    pub fn compute(&mut self, g: &CsrGraph, s: Vertex) {
        self.forward::<false>(g, s, &[]);
    }

    /// Multiplicity-aware SPD for *collapsed* graphs (see
    /// `mhbc_graph::reduce`): vertex `z` stands for `mult[z]` interchangeable
    /// twins of the underlying (pruned) graph, and σ counts shortest paths
    /// between **single members** of the source and target classes.
    ///
    /// The recurrence is the standard one with every traversal *through* an
    /// intermediate class multiplied by its member count:
    ///
    /// ```text
    /// σ̃(src) = 1,     σ̃(v) = Σ_{u ∈ parents(v)} m(u) · σ̃(u)
    /// ```
    ///
    /// where `m(u) = mult[u]` except `m(src) = 1` — of the source class,
    /// only the one member acting as the source lies on any shortest path
    /// (its twins sit at distance 1 or 2 and can never be interior, since
    /// they share the source's distances to everything else). Levels,
    /// order, and `dist` are exactly as in [`BfsSpd::compute`], the
    /// direction-optimizing machinery (including bottom-up levels) applies
    /// identically, and with all multiplicities 1 the pass degenerates to
    /// the plain kernel bit for bit.
    ///
    /// # Panics
    /// As [`BfsSpd::compute`], plus if `mult.len()` mismatches the graph.
    pub fn compute_collapsed(&mut self, g: &CsrGraph, s: Vertex, mult: &[f64]) {
        assert_eq!(mult.len(), g.num_vertices(), "multiplicities sized for a different graph");
        self.forward::<true>(g, s, mult);
    }

    /// The one forward pass behind [`BfsSpd::compute`] (`COLLAPSED = false`,
    /// `mult` ignored) and [`BfsSpd::compute_collapsed`] (`COLLAPSED =
    /// true`). Monomorphised per variant so the plain hot loop carries no
    /// multiplicity arithmetic.
    fn forward<const COLLAPSED: bool>(&mut self, g: &CsrGraph, s: Vertex, mult: &[f64]) {
        let n = g.num_vertices();
        assert_eq!(self.packed.len(), n, "workspace sized for a different graph");
        assert!((s as usize) < n, "source {s} out of range");

        // Epoch bump replaces the per-pass clearing loop. On the wrap —
        // once every EPOCH_PERIOD passes — one full reset runs so stale
        // stamps from a reused epoch value cannot alias.
        self.epoch += 1;
        if self.epoch == EPOCH_PERIOD {
            self.packed.iter_mut().for_each(|p| *p = 0);
            self.epoch = 1;
        }
        let base = self.base();
        let mut order = std::mem::take(&mut self.order);
        let mut level_starts = std::mem::take(&mut self.level_starts);
        order.clear();
        level_starts.clear();
        self.source = s;
        self.pull_levels = 0;

        let packed = &mut self.packed[..];
        let sigma = &mut self.sigma[..];
        let frontier = &mut self.frontier;
        let candidates = &mut self.candidates;
        packed[s as usize] = base;
        sigma[s as usize] = 1.0;
        order.push(s);
        level_starts.push(0);
        level_starts.push(1);

        let (offsets, targets) = g.csr();
        let degrees = g.degrees();
        let hybrid = match self.mode {
            KernelMode::TopDown => false,
            KernelMode::Hybrid => true,
            KernelMode::Auto => g.degree_sum() >= 4 * n,
        };
        let alpha = self.alpha as u128;
        // The candidates-rebuild charge of the switch condition (see
        // `set_hybrid_params`).
        let rebuild_term = (n / self.beta.max(1) as usize) as u64;
        // Frontier-edge bookkeeping for the direction switch (hybrid mode
        // only): degree sums of the current frontier and of all
        // still-undiscovered vertices, maintained exactly — the switch must
        // be a pure function of (graph, source).
        let mut frontier_deg = degrees[s as usize] as u64;
        let mut unexplored_deg = g.degree_sum() as u64 - frontier_deg;
        // Whether `candidates` lists exactly the vertices undiscovered at
        // the current level (true across consecutive bottom-up levels).
        let mut candidates_synced = false;
        let mut pull_levels = 0u32;

        let s_usize = s as usize;
        let mut level: u32 = 0;
        let mut lo = 0usize;
        while lo < order.len() {
            let hi = order.len();
            assert!(level < LEVEL_MASK - 1, "BFS level overflow (diameter > 2^24 - 2)");
            let child_key = base | (level + 1);
            // Direction choice: bottom-up iff pushing this frontier's edges
            // costs more than scanning every undiscovered vertex's edges
            // (plus the candidates-rebuild charge) — evaluated per level
            // from exact counts, so the whole decision sequence is
            // deterministic for (graph, source).
            let in_pull = hybrid
                && frontier_deg as u128 * alpha
                    > 8 * (unexplored_deg as u128 + rebuild_term as u128);
            // Whether this push level should canonicalise via the frontier
            // bitmap (mark on discovery, drain ascending) instead of a
            // sort: worthwhile only when the discovered set will be large,
            // predicted from the scanned frontier's size so deep
            // small-frontier traversals (grids, paths) never pay for
            // bitmap upkeep. Deterministic — a pure function of the level
            // sizes.
            let track_bits = hybrid && (hi - lo) * 16 >= n;
            let mut new_deg = 0u64;
            if in_pull {
                pull_levels += 1;
                // Bottom-up: each undiscovered vertex scans its adjacency
                // for parents in the current frontier (bitmap test) and
                // sums σ over them in ascending parent id — the same
                // summation order the push direction produces against the
                // ascending frontier, hence bit-identical σ. Iterating the
                // ascending candidates list yields the canonical settle
                // order for free, and compacting it in place means
                // consecutive bottom-up levels never rescan settled
                // vertices.
                if !candidates_synced {
                    candidates.clear();
                    for v in 0..n as Vertex {
                        if packed[v as usize].wrapping_sub(base) > level {
                            candidates.push(v);
                        }
                    }
                    candidates_synced = true;
                }
                for &u in &order[lo..hi] {
                    frontier.insert(u);
                }
                let mut write = 0usize;
                for read in 0..candidates.len() {
                    // SAFETY: `read`/`write` stay below `candidates.len()`,
                    // every vertex id in `candidates`/`targets` is
                    // validated `< n` at graph construction, `offsets` has
                    // length `n + 1` with `offsets[v] <= offsets[v + 1] <=
                    // targets.len()`, `packed`/`sigma`/`degrees` have
                    // length `n` (asserted on entry / by CSR invariant),
                    // and the bitset capacity covers `0..n`. Eliding the
                    // per-edge bounds checks is part of this kernel's
                    // speedup budget.
                    unsafe {
                        let v = *candidates.get_unchecked(read);
                        let (a, b) = (
                            *offsets.get_unchecked(v as usize) as usize,
                            *offsets.get_unchecked(v as usize + 1) as usize,
                        );
                        let mut sum = 0.0f64;
                        let mut found = false;
                        for &u in targets.get_unchecked(a..b) {
                            if frontier.contains_unchecked(u) {
                                let su = *sigma.get_unchecked(u as usize);
                                sum += if COLLAPSED && u as usize != s_usize {
                                    su * *mult.get_unchecked(u as usize)
                                } else {
                                    su
                                };
                                found = true;
                            }
                        }
                        if found {
                            *packed.get_unchecked_mut(v as usize) = child_key;
                            *sigma.get_unchecked_mut(v as usize) = sum;
                            order.push(v);
                            new_deg += *degrees.get_unchecked(v as usize) as u64;
                        } else {
                            *candidates.get_unchecked_mut(write) = v;
                            write += 1;
                        }
                    }
                }
                candidates.truncate(write);
                for &u in &order[lo..hi] {
                    frontier.remove(u);
                }
            } else {
                candidates_synced = false;
                for i in lo..hi {
                    // SAFETY: `i < hi <= order.len()`, and the slice-length
                    // argument of the pull branch applies verbatim.
                    unsafe {
                        let u = *order.get_unchecked(i) as usize;
                        // Paths continue through all `mult[u]` members of an
                        // interior class, but only through the source member
                        // itself at the root.
                        let su = if COLLAPSED && u != s_usize {
                            *sigma.get_unchecked(u) * *mult.get_unchecked(u)
                        } else {
                            *sigma.get_unchecked(u)
                        };
                        let (a, b) = (
                            *offsets.get_unchecked(u) as usize,
                            *offsets.get_unchecked(u + 1) as usize,
                        );
                        for &v in targets.get_unchecked(a..b) {
                            let v = v as usize;
                            // One distance load classifies the edge. Relative
                            // to the epoch base: `rel <= level` means already
                            // settled at this or an earlier level (the common
                            // no-op — one compare), `rel == level + 1` is
                            // another shortest path, and anything larger is a
                            // stale stamp from a previous pass (discovery) —
                            // stale stamps wrap to `>= 2^24 > level + 1`.
                            let rel = (*packed.get_unchecked(v)).wrapping_sub(base);
                            if rel <= level {
                                continue;
                            }
                            if rel == level + 1 {
                                *sigma.get_unchecked_mut(v) += su;
                            } else {
                                *packed.get_unchecked_mut(v) = child_key;
                                *sigma.get_unchecked_mut(v) = su;
                                order.push(v as Vertex);
                                if hybrid {
                                    new_deg += *degrees.get_unchecked(v) as u64;
                                    if track_bits {
                                        frontier.insert(v as Vertex);
                                    }
                                }
                            }
                        }
                    }
                }
                // Canonicalise the freshly discovered level: push appends in
                // parent-scan order, which is not ascending in general. σ is
                // already complete for the level (all its parents were just
                // scanned), so reordering only permutes the settle order.
                // When the (otherwise idle) frontier bitmap tracked the
                // discoveries, large levels are rewritten by an ascending
                // bitmap drain — `O(n/64 + f)` beats the `O(f log f)` sort
                // for large f; otherwise un-mark (if tracked) and sort.
                let f = order.len() - hi;
                if track_bits && f * 16 >= n {
                    let mut w = hi;
                    frontier.drain_ascending(|v| {
                        order[w] = v;
                        w += 1;
                    });
                } else {
                    if track_bits {
                        for &v in &order[hi..] {
                            frontier.remove(v);
                        }
                    }
                    order[hi..].sort_unstable();
                }
            }
            lo = hi;
            level += 1;
            if order.len() > hi {
                level_starts.push(order.len());
            }
            if hybrid {
                frontier_deg = new_deg;
                unexplored_deg -= new_deg;
            }
            // Once every vertex is discovered, the remaining (deepest)
            // frontier's scan is provably all no-ops: it can discover
            // nothing, and a σ-contribution would need a neighbour one
            // level deeper, which cannot exist. Skipping it drops a large
            // share of edge visits on small-diameter graphs.
            if order.len() == n {
                break;
            }
        }
        self.order = order;
        self.level_starts = level_starts;
        self.pull_levels = pull_levels;
    }

    /// Backward accumulation matching [`BfsSpd::compute_collapsed`]: the
    /// class-level Brandes recurrence with per-class target seeds.
    ///
    /// Grouping the vertex-weighted Brandes recurrence
    /// `δ(x) = Σ_{w ∈ children(x)} σ(x)/σ(w) · (ω(w) + δ(w))` over twin
    /// classes (all `mult[w]` members of a child class share `σ̃`, `δ`, and
    /// a total seed `seeds[w] = Σ_members ω`) gives
    ///
    /// ```text
    /// δ(x) = Σ_{w ∈ child classes} σ̃(x)/σ̃(w) · (seeds[w] + mult[w] · δ(w))
    /// ```
    ///
    /// where `δ(z)` is the accumulated dependency of **one member** of
    /// class `z` over all single-member targets, each weighted by its seed.
    /// With unit seeds and multiplicities this is exactly
    /// [`BfsSpd::accumulate_dependencies`].
    ///
    /// # Panics
    /// If `g`, `mult`, or `seeds` mismatch the workspace size.
    pub fn accumulate_dependencies_collapsed(
        &self,
        g: &CsrGraph,
        mult: &[f64],
        seeds: &[f64],
        delta: &mut Vec<f64>,
    ) {
        let n = self.packed.len();
        assert_eq!(g.num_vertices(), n, "graph does not match workspace");
        assert_eq!(mult.len(), n, "multiplicities do not match workspace");
        assert_eq!(seeds.len(), n, "seeds do not match workspace");
        delta.clear();
        delta.resize(n, 0.0);
        let delta = &mut delta[..];
        let (packed, sigma) = (&self.packed[..], &self.sigma[..]);
        let base = self.base();
        let (offsets, targets) = g.csr();
        let levels = self.level_starts.len().saturating_sub(1);
        // Level 1 feeds only the (zeroed) source entry; skipped as in the
        // unit-seed kernel.
        for lvl in (2..levels).rev() {
            let parent_key = base | (lvl as u32 - 1);
            let (start, end) = (self.level_starts[lvl], self.level_starts[lvl + 1]);
            for &w in self.order[start..end].iter().rev() {
                let w = w as usize;
                // SAFETY: as in `accumulate_dependencies`; `mult`/`seeds`
                // have length `n` (asserted).
                unsafe {
                    let coeff = (*seeds.get_unchecked(w)
                        + *mult.get_unchecked(w) * *delta.get_unchecked(w))
                        / *sigma.get_unchecked(w);
                    let (a, b) = (
                        *offsets.get_unchecked(w) as usize,
                        *offsets.get_unchecked(w + 1) as usize,
                    );
                    for &u in targets.get_unchecked(a..b) {
                        let u = u as usize;
                        if *packed.get_unchecked(u) == parent_key {
                            *delta.get_unchecked_mut(u) += *sigma.get_unchecked(u) * coeff;
                        }
                    }
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }

    /// Whether `u` is a predecessor (parent) of `w` in this SPD, i.e.
    /// `u ∈ P_s(w)` in the paper's notation.
    #[inline]
    pub fn is_parent(&self, u: Vertex, w: Vertex) -> bool {
        let (pu, pw) = (self.packed[u as usize], self.packed[w as usize]);
        let base = self.base();
        // Reached entries of the current epoch are exactly those >= base
        // (no larger epoch exists), and levels never saturate the low bits,
        // so pu + 1 cannot carry into the epoch field.
        pu >= base && pw >= base && pu + 1 == pw
    }

    /// Number of vertices reached (including the source).
    pub fn reached(&self) -> usize {
        self.order.len()
    }

    /// Accumulates Brandes dependency scores `δ_{s•}(v)` (Eq 2/4) into
    /// `delta`, which is cleared and resized to `n`.
    ///
    /// Runs in `O(|E|)` by scanning the recorded levels deepest-first and
    /// applying `δ_{s•}(u) += σ_su / σ_sw · (1 + δ_{s•}(w))` over each SPD
    /// edge; the parent test is one packed-distance comparison per edge.
    /// The scan order is the reverse of the canonical settle order, so the
    /// accumulated floating-point sums are identical whichever
    /// [`KernelMode`] produced the forward pass.
    ///
    /// # Panics
    /// If `g` does not match the workspace size (the graph-match assertion
    /// also guards the unchecked indexing below).
    pub fn accumulate_dependencies(&self, g: &CsrGraph, delta: &mut Vec<f64>) {
        assert_eq!(g.num_vertices(), self.packed.len(), "graph does not match workspace");
        delta.clear();
        delta.resize(self.packed.len(), 0.0);
        let delta = &mut delta[..];
        let (packed, sigma) = (&self.packed[..], &self.sigma[..]);
        let base = self.base();
        let (offsets, targets) = g.csr();
        // 0 before the first compute call: accumulate nothing (all zeros).
        let levels = self.level_starts.len().saturating_sub(1);
        // Level 1 is skipped: its vertices' only parent is the source, so
        // its whole scan would accumulate into `delta[source]`, which is
        // zeroed below anyway (the legacy kernel pays for that scan).
        for lvl in (2..levels).rev() {
            let parent_key = base | (lvl as u32 - 1);
            let (start, end) = (self.level_starts[lvl], self.level_starts[lvl + 1]);
            for &w in self.order[start..end].iter().rev() {
                let w = w as usize;
                // SAFETY: as in `forward` — all vertex ids are < n and the
                // arrays have length n / n + 1.
                unsafe {
                    let coeff = (1.0 + *delta.get_unchecked(w)) / *sigma.get_unchecked(w);
                    let (a, b) = (
                        *offsets.get_unchecked(w) as usize,
                        *offsets.get_unchecked(w + 1) as usize,
                    );
                    for &u in targets.get_unchecked(a..b) {
                        let u = u as usize;
                        if *packed.get_unchecked(u) == parent_key {
                            *delta.get_unchecked_mut(u) += *sigma.get_unchecked(u) * coeff;
                        }
                    }
                }
            }
        }
        delta[self.source as usize] = 0.0;
    }

    /// Geisberger–Sanders–Schultes *linear-scaling* accumulation \[17\]:
    /// computes `g_s(v) = Σ_t δ_st(v) / d(s, t)` via the same backward scan
    /// with the per-target seed `1` replaced by `1 / d(s, w)`. The
    /// length-scaled dependency is then `d(s, v) · g_s(v)`, which prevents
    /// vertices from profiting merely by sitting next to a sampled source.
    pub fn accumulate_scaled_dependencies(&self, g: &CsrGraph, scaled: &mut Vec<f64>) {
        assert_eq!(g.num_vertices(), self.packed.len(), "graph does not match workspace");
        scaled.clear();
        scaled.resize(self.packed.len(), 0.0);
        let scaled = &mut scaled[..];
        let (packed, sigma) = (&self.packed[..], &self.sigma[..]);
        let base = self.base();
        let (offsets, targets) = g.csr();
        // 0 before the first compute call: accumulate nothing (all zeros).
        let levels = self.level_starts.len().saturating_sub(1);
        // As in `accumulate_dependencies`, level 1 feeds only the source's
        // (discarded) entry and is skipped.
        for lvl in (2..levels).rev() {
            let parent_key = base | (lvl as u32 - 1);
            let inv_dw = 1.0 / lvl as f64;
            let (start, end) = (self.level_starts[lvl], self.level_starts[lvl + 1]);
            for &w in self.order[start..end].iter().rev() {
                let w = w as usize;
                let coeff = (inv_dw + scaled[w]) / sigma[w];
                for &u in &targets[offsets[w] as usize..offsets[w + 1] as usize] {
                    let u = u as usize;
                    if packed[u] == parent_key {
                        scaled[u] += sigma[u] * coeff;
                    }
                }
            }
        }
        // Convert g_s(v) to d(s, v) * g_s(v) in place.
        for lvl in 1..levels {
            let (start, end) = (self.level_starts[lvl], self.level_starts[lvl + 1]);
            for &v in &self.order[start..end] {
                scaled[v as usize] *= lvl as f64;
            }
        }
        scaled[self.source as usize] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhbc_graph::generators;

    #[test]
    fn kernel_mode_parse_roundtrip() {
        for mode in [KernelMode::Auto, KernelMode::TopDown, KernelMode::Hybrid] {
            assert_eq!(KernelMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(KernelMode::parse("bottomup"), None);
        assert_eq!(KernelMode::default(), KernelMode::Auto);
    }

    #[test]
    fn path_graph_sigma_and_dist() {
        let g = generators::path(5);
        let mut spd = BfsSpd::new(5);
        spd.compute(&g, 0);
        for v in 0..5 {
            assert_eq!(spd.dist(v), v);
            assert_eq!(spd.sigma(v), 1.0);
        }
        assert_eq!(spd.order().len(), 5);
        assert_eq!(spd.level_starts(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn diamond_counts_two_paths() {
        // 0 - 1, 0 - 2, 1 - 3, 2 - 3: two shortest paths 0 -> 3.
        let g = CsrGraphFixture::diamond();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        assert_eq!(spd.dist(3), 2);
        assert_eq!(spd.sigma(3), 2.0);
        assert!(spd.is_parent(1, 3));
        assert!(spd.is_parent(2, 3));
        assert!(!spd.is_parent(0, 3));
        assert_eq!(spd.level_starts(), &[0, 1, 3, 4]);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = generators::star(6);
        let mut spd = BfsSpd::new(6);
        spd.compute(&g, 0);
        assert_eq!(spd.reached(), 6);
        spd.compute(&g, 1);
        assert_eq!(spd.dist(1), 0);
        assert_eq!(spd.dist(0), 1);
        assert_eq!(spd.dist(2), 2);
        assert_eq!(spd.sigma(2), 1.0);
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        assert_eq!(spd.dist(2), UNREACHED);
        assert_eq!(spd.sigma(2), 0.0);
        assert_eq!(spd.reached(), 2);
    }

    #[test]
    fn stale_epochs_never_alias_parent_tests() {
        // Pass 1 reaches {2, 3}; pass 2 reaches {0, 1}. Stale stamps for
        // 2 and 3 (dist 0 and 1 in the old epoch) must not satisfy the
        // parent test or report as reached.
        let g = mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 2);
        assert_eq!(spd.dist(3), 1);
        spd.compute(&g, 0);
        assert_eq!(spd.dist(2), UNREACHED);
        assert_eq!(spd.dist(3), UNREACHED);
        assert!(!spd.is_parent(2, 3));
        assert!(!spd.is_parent(2, 1));
        assert!(spd.is_parent(0, 1));
    }

    #[test]
    fn fresh_workspace_reports_nothing_reached() {
        let g = generators::path(4);
        let spd = BfsSpd::new(4);
        assert_eq!(spd.reached(), 0);
        for v in 0..4 {
            assert_eq!(spd.dist(v), UNREACHED, "vertex {v}");
            assert_eq!(spd.sigma(v), 0.0, "vertex {v}");
            assert!(!spd.is_parent(v, (v + 1) % 4));
        }
        // Accumulating before any compute yields all zeros, like the legacy
        // kernel did.
        let mut delta = vec![9.9];
        spd.accumulate_dependencies(&g, &mut delta);
        assert_eq!(delta, vec![0.0; 4]);
        spd.accumulate_scaled_dependencies(&g, &mut delta);
        assert_eq!(delta, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "graph does not match workspace")]
    fn accumulate_rejects_mismatched_graph() {
        let big = generators::path(8);
        let small = generators::path(3);
        let mut spd = BfsSpd::new(8);
        spd.compute(&big, 0);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&small, &mut delta);
    }

    #[test]
    fn epoch_wraparound_resets_cleanly() {
        // Drive the 8-bit epoch space through several wraps and check
        // results stay correct throughout.
        let g = mhbc_graph::CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut spd = BfsSpd::new(5);
        for pass in 0..(3 * super::EPOCH_PERIOD as usize + 7) {
            let (s, expect_reached) = if pass % 2 == 0 { (0u32, 3) } else { (3u32, 2) };
            spd.compute(&g, s);
            assert_eq!(spd.reached(), expect_reached, "pass {pass}");
            assert_eq!(spd.dist(s), 0, "pass {pass}");
            if pass % 2 == 0 {
                assert_eq!(spd.dist(2), 2);
                assert_eq!(spd.dist(4), UNREACHED);
            } else {
                assert_eq!(spd.dist(4), 1);
                assert_eq!(spd.dist(0), UNREACHED);
            }
        }
    }

    #[test]
    fn dependencies_on_path_match_hand_computation() {
        // Path 0-1-2-3-4, source 0: delta_0(v) = number of targets beyond v.
        let g = generators::path(5);
        let mut spd = BfsSpd::new(5);
        spd.compute(&g, 0);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&g, &mut delta);
        assert_eq!(delta, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn dependencies_split_across_diamond() {
        let g = CsrGraphFixture::diamond();
        let mut spd = BfsSpd::new(4);
        spd.compute(&g, 0);
        let mut delta = Vec::new();
        spd.accumulate_dependencies(&g, &mut delta);
        // Vertices 1 and 2 each carry half of the single dependent target 3.
        assert_eq!(delta[1], 0.5);
        assert_eq!(delta[2], 0.5);
        assert_eq!(delta[0], 0.0);
        assert_eq!(delta[3], 0.0);
    }

    #[test]
    fn matches_legacy_kernel_bitwise_on_generators() {
        use crate::legacy::LegacyBfsSpd;
        for g in [
            generators::barbell(6, 3),
            generators::grid(7, 5, false),
            generators::lollipop(5, 4),
            generators::star(12),
        ] {
            let n = g.num_vertices();
            let mut new = BfsSpd::new(n);
            let mut old = LegacyBfsSpd::new(n);
            for s in 0..n as Vertex {
                new.compute(&g, s);
                old.compute(&g, s);
                old.canonicalize_order();
                assert_eq!(new.order(), &old.order[..], "order, source {s}");
                for v in 0..n as Vertex {
                    assert_eq!(new.dist(v), old.dist[v as usize], "dist {v}, source {s}");
                    assert_eq!(
                        new.sigma(v).to_bits(),
                        old.sigma[v as usize].to_bits(),
                        "sigma {v}, source {s}"
                    );
                }
                let (mut d1, mut d2) = (Vec::new(), Vec::new());
                new.accumulate_dependencies(&g, &mut d1);
                old.accumulate_dependencies(&g, &mut d2);
                for v in 0..n {
                    assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "delta {v}, source {s}");
                }
                new.accumulate_scaled_dependencies(&g, &mut d1);
                old.accumulate_scaled_dependencies(&g, &mut d2);
                for v in 0..n {
                    assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "scaled {v}, source {s}");
                }
            }
        }
    }

    /// Forced bottom-up levels reproduce top-down bit for bit, including
    /// settle order and level boundaries.
    #[test]
    fn forced_pull_matches_topdown_bitwise() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        for g in [
            generators::barabasi_albert(200, 3, &mut rng),
            generators::grid(9, 7, true),
            generators::wheel(17),
            mhbc_graph::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap(),
        ] {
            let n = g.num_vertices();
            let mut push = BfsSpd::with_mode(n, KernelMode::TopDown);
            let mut pull = BfsSpd::with_mode(n, KernelMode::Hybrid);
            pull.set_hybrid_params(u32::MAX, u32::MAX); // pull from level 1 on
            let (mut d1, mut d2) = (Vec::new(), Vec::new());
            for s in 0..n as Vertex {
                push.compute(&g, s);
                pull.compute(&g, s);
                assert!(pull.pull_levels() > 0 || pull.reached() <= 1, "source {s}");
                assert_eq!(push.order(), pull.order(), "order, source {s}");
                assert_eq!(push.level_starts(), pull.level_starts(), "levels, source {s}");
                for v in 0..n as Vertex {
                    assert_eq!(push.dist(v), pull.dist(v), "dist {v}, source {s}");
                    assert_eq!(
                        push.sigma(v).to_bits(),
                        pull.sigma(v).to_bits(),
                        "sigma {v}, source {s}"
                    );
                }
                push.accumulate_dependencies(&g, &mut d1);
                pull.accumulate_dependencies(&g, &mut d2);
                for v in 0..n {
                    assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "delta {v}, source {s}");
                }
            }
        }
    }

    /// The collapsed kernel agrees across directions with non-trivial
    /// multiplicities.
    #[test]
    fn forced_pull_matches_topdown_collapsed() {
        let g = generators::wheel(13);
        let n = g.num_vertices();
        let mult: Vec<f64> = (0..n).map(|v| 1.0 + (v % 3) as f64).collect();
        let seeds: Vec<f64> = (0..n).map(|v| 1.0 + (v % 2) as f64).collect();
        let mut push = BfsSpd::with_mode(n, KernelMode::TopDown);
        let mut pull = BfsSpd::with_mode(n, KernelMode::Hybrid);
        pull.set_hybrid_params(u32::MAX, u32::MAX);
        let (mut d1, mut d2) = (Vec::new(), Vec::new());
        for s in 0..n as Vertex {
            push.compute_collapsed(&g, s, &mult);
            pull.compute_collapsed(&g, s, &mult);
            assert!(pull.pull_levels() > 0, "source {s}");
            assert_eq!(push.order(), pull.order(), "order, source {s}");
            for v in 0..n as Vertex {
                assert_eq!(
                    push.sigma(v).to_bits(),
                    pull.sigma(v).to_bits(),
                    "sigma {v}, source {s}"
                );
            }
            push.accumulate_dependencies_collapsed(&g, &mult, &seeds, &mut d1);
            pull.accumulate_dependencies_collapsed(&g, &mult, &seeds, &mut d2);
            for v in 0..n {
                assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "delta {v}, source {s}");
            }
        }
    }

    /// The default α/β heuristics actually enter pull mode on a
    /// low-diameter, edge-rich graph.
    #[test]
    fn heuristics_trigger_pull_on_dense_graphs() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::barabasi_albert(600, 4, &mut rng);
        let mut spd = BfsSpd::with_mode(g.num_vertices(), KernelMode::Hybrid);
        let mut saw_pull = false;
        for s in 0..20u32 {
            spd.compute(&g, s);
            saw_pull |= spd.pull_levels() > 0;
        }
        assert!(saw_pull, "default thresholds never engaged bottom-up on a BA graph");
    }

    /// Mode switches on one reused workspace never corrupt the epoch-stamped
    /// state: alternating modes equals a fresh workspace every pass.
    #[test]
    fn mode_switches_mid_workspace_stay_clean() {
        let g = generators::barbell(7, 2);
        let n = g.num_vertices();
        let modes = [KernelMode::TopDown, KernelMode::Hybrid, KernelMode::Auto];
        let mut reused = BfsSpd::new(n);
        let (mut d1, mut d2) = (Vec::new(), Vec::new());
        for pass in 0..60u32 {
            let s = (pass * 5) % n as u32;
            reused.set_mode(modes[pass as usize % 3]);
            if pass % 3 == 1 {
                reused.set_hybrid_params(u32::MAX, u32::MAX);
            } else {
                reused.set_hybrid_params(14, 24);
            }
            reused.compute(&g, s);
            reused.accumulate_dependencies(&g, &mut d1);
            let mut fresh = BfsSpd::new(n);
            fresh.compute(&g, s);
            fresh.accumulate_dependencies(&g, &mut d2);
            assert_eq!(reused.order(), fresh.order(), "pass {pass}");
            for v in 0..n {
                assert_eq!(d1[v].to_bits(), d2[v].to_bits(), "delta {v}, pass {pass}");
            }
        }
    }

    struct CsrGraphFixture;
    impl CsrGraphFixture {
        fn diamond() -> mhbc_graph::CsrGraph {
            mhbc_graph::CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
        }
    }
}
