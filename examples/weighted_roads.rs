//! Road-network scenario: weighted grid (edge weights = travel times),
//! estimating the betweenness of a central intersection with the Dijkstra
//! kernel (the paper's weighted-graph extension, section 2.1).
//!
//! Run with: `cargo run --release --example weighted_roads`

use mhbc_core::{SingleSpaceConfig, SingleSpaceSampler};
use mhbc_graph::generators;
use mhbc_spd::exact_betweenness_par;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let (rows, cols) = (40, 40);
    let mut rng = SmallRng::seed_from_u64(8);
    let grid = generators::grid(rows, cols, false);
    // Travel times in [1, 5) minutes per segment.
    let g = generators::assign_uniform_weights(&grid, 1.0, 5.0, &mut rng);
    println!("road network: {g} ({rows}x{cols} grid, U(1,5) travel times)");

    // Probe: the central intersection.
    let centre = ((rows / 2) * cols + cols / 2) as u32;
    println!("probe: intersection {centre} (row {}, col {})", rows / 2, cols / 2);

    let est = SingleSpaceSampler::new(&g, centre, SingleSpaceConfig::new(3_000, 4))
        .expect("valid configuration")
        .run();
    println!(
        "MH estimate: BC = {:.6} (corrected {:.6}), acceptance {:.3}, Dijkstra passes {}",
        est.bc, est.bc_corrected, est.acceptance_rate, est.spd_passes
    );

    let exact = exact_betweenness_par(&g, 0)[centre as usize];
    println!("exact (weighted Brandes): BC = {exact:.6}");
    println!(
        "absolute errors: Eq7 {:.6}, corrected {:.6}",
        (est.bc - exact).abs(),
        (est.bc_corrected - exact).abs()
    );

    // Contrast: the same grid with unit weights - weights reshuffle which
    // intersections matter.
    let est_unweighted = SingleSpaceSampler::new(&grid, centre, SingleSpaceConfig::new(3_000, 4))
        .expect("valid configuration")
        .run();
    println!("\nsame intersection on the unweighted grid: BC ~ {:.6}", est_unweighted.bc);
}
