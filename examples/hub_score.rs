//! Community-core scenario: score the hub of a balanced-separator network
//! with an (epsilon, delta) guarantee planned via Theorem 2.
//!
//! This is the paper's headline use case: when the probe vertex is a
//! balanced vertex separator, mu(r) is a constant, so the planned iteration
//! budget is *independent of the graph size*.
//!
//! Run with: `cargo run --release --example hub_score`

use mhbc_core::planner::{plan_single, MuSource};
use mhbc_core::{optimal, SingleSpaceConfig, SingleSpaceSampler};
use mhbc_graph::generators;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let (eps, delta) = (0.05, 0.05);
    println!("target guarantee: |error| <= {eps} with probability >= {}", 1.0 - delta);
    println!();

    for &cluster_size in &[200usize, 400, 800] {
        let mut rng = SmallRng::seed_from_u64(11);
        let hs = generators::hub_separator(4, cluster_size, 0.02, 3, &mut rng);
        let (g, hub) = (&hs.graph, hs.hub);

        // Cheap structural check (O(n + m)) gives the Theorem 2 bound.
        let report = optimal::theorem2_report(g, hub, 0.1);
        let plan = plan_single(g, hub, eps, delta, MuSource::TheoremTwo)
            .expect("hub is a balanced separator");
        println!(
            "n = {:5}: components {:?}, K = {:.2}, mu-bound = {:.2} -> T = {}",
            g.num_vertices(),
            report.component_sizes,
            report.k_constant.unwrap(),
            plan.mu,
            plan.iterations
        );

        let est = SingleSpaceSampler::new(g, hub, SingleSpaceConfig::new(plan.iterations, 3))
            .expect("valid configuration")
            .run();
        let exact = mhbc_spd::exact_betweenness_of(g, hub);
        println!(
            "          BC(hub) exact {:.5}, MH {:.5} (|err| {:.5}), passes {}",
            exact,
            est.bc,
            (est.bc - exact).abs(),
            est.spd_passes
        );
    }
    println!();
    println!("note: T stays constant as n grows - the paper's Theorem 2 claim.");
}
