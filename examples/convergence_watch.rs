//! Streaming API + diagnostics: watch the estimate converge, then inspect
//! mixing statistics (acceptance, autocorrelation time, effective sample
//! size, Geweke stationarity z-score).
//!
//! Run with: `cargo run --release --example convergence_watch`

use mhbc_core::{SingleSpaceConfig, SingleSpaceSampler};
use mhbc_graph::generators;
use mhbc_mcmc::diagnostics;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(77);
    let g = generators::barabasi_albert(2_000, 3, &mut rng);
    let hub = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).expect("non-empty graph");
    println!("graph {g}, probe {hub}");

    let t = 20_000;
    let mut sampler = SingleSpaceSampler::new(&g, hub, SingleSpaceConfig::new(t, 1).with_trace())
        .expect("valid configuration");

    // Streaming: print the running estimate at geometric checkpoints.
    let mut next = 100u64;
    println!("\n iterations | running estimate");
    for _ in 0..t {
        let info = sampler.step();
        if info.iteration == next {
            println!(" {:>10} | {:.6}", info.iteration, info.estimate);
            next *= 2;
        }
    }
    let est = sampler.finish();
    println!(" {:>10} | {:.6}  <- final", est.iterations, est.bc);

    // Mixing diagnostics over the per-step dependency series.
    let series = est.density_series.as_deref().expect("trace was enabled");
    let tau = diagnostics::integrated_autocorrelation_time(series);
    let ess = diagnostics::effective_sample_size(series);
    let z = diagnostics::geweke_z(series, 0.1, 0.5);
    let se = diagnostics::batch_means_stderr(series, 32);
    println!("\nmixing diagnostics:");
    println!("  acceptance rate              {:.3}", est.acceptance_rate);
    println!("  integrated autocorr. time    {tau:.2}");
    println!("  effective sample size        {ess:.0} of {}", series.len());
    println!("  Geweke z (|z| < 2 is good)   {z:.2}");
    println!("  batch-means SE of mean delta {se:.4}");
    println!(
        "  SPD passes                   {} (cache hit rate {:.2})",
        est.spd_passes,
        est.oracle_stats.hit_rate()
    );
}
