//! Quickstart: estimate the betweenness of one vertex with the paper's
//! single-space Metropolis-Hastings sampler and sanity-check it against
//! exact Brandes.
//!
//! Run with: `cargo run --release --example quickstart`

use mhbc_core::{SingleSpaceConfig, SingleSpaceSampler};
use mhbc_graph::generators;
use mhbc_spd::exact_betweenness_par;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    // 1. A scale-free graph standing in for a social network.
    let mut rng = SmallRng::seed_from_u64(2019);
    let g = generators::barabasi_albert(5_000, 4, &mut rng);
    println!("graph: {g}");

    // 2. Probe vertex: the highest-degree hub (the "core vertex" use case
    //    from the paper's introduction).
    let hub = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).expect("non-empty graph");
    println!("probe: vertex {hub} (degree {})", g.degree(hub));

    // 3. Run the MH sampler for 4000 iterations (~4000 BFS passes worst
    //    case, far fewer with the memoising oracle).
    let t = 4_000;
    let est = SingleSpaceSampler::new(&g, hub, SingleSpaceConfig::new(t, 7))
        .expect("valid configuration")
        .run();
    println!(
        "MH estimate after T = {t}: BC(r) ~ {:.6}  (corrected: {:.6})",
        est.bc, est.bc_corrected
    );
    println!(
        "  acceptance rate {:.3}, SPD passes {} (cache hit rate {:.2})",
        est.acceptance_rate,
        est.spd_passes,
        est.oracle_stats.hit_rate()
    );

    // 4. Ground truth from parallel exact Brandes (O(nm) - fine at n = 5k).
    let exact = exact_betweenness_par(&g, 0)[hub as usize];
    println!("exact Brandes:      BC(r) = {exact:.6}");
    println!(
        "absolute errors: Eq7 {:.6}, corrected {:.6}",
        (est.bc - exact).abs(),
        (est.bc_corrected - exact).abs()
    );
}
