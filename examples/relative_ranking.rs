//! Routing scenario (Daly & Haahr, MANETs): rank candidate relay nodes by
//! betweenness *ratios* using the joint-space sampler - no exact scores
//! needed, and the ratio estimator (Eq 22 / Theorem 3) is exact in the
//! limit.
//!
//! Run with: `cargo run --release --example relative_ranking`

use mhbc_core::{JointSpaceConfig, JointSpaceSampler};
use mhbc_graph::generators;
use mhbc_spd::exact_betweenness_par;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    // A small-world network standing in for an ad-hoc wireless topology.
    let mut rng = SmallRng::seed_from_u64(33);
    let g = generators::ensure_connected(
        generators::watts_strogatz(3_000, 8, 0.08, &mut rng),
        &mut rng,
    );
    println!("graph: {g}");

    // Candidate relays R: a few spread-out vertices.
    let probes: Vec<u32> = vec![17, 512, 1024, 2048, 2999];
    println!("candidate relays R = {probes:?}");

    let est = JointSpaceSampler::new(&g, &probes, JointSpaceConfig::new(30_000, 5))
        .expect("valid probe set")
        .run();

    // Rank relays by their estimated ratio against the first candidate.
    let mut ranked: Vec<(u32, f64)> =
        probes.iter().enumerate().map(|(i, &p)| (p, est.ratio(i, 0))).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ratios"));

    println!("\nestimated ranking (ratio vs relay {}):", probes[0]);
    for (p, ratio) in &ranked {
        println!("  relay {p:5}: BC ratio {ratio:8.3}");
    }
    println!("visit counts per relay: {:?}", est.counts);
    println!("acceptance rate {:.3}, SPD passes {}", est.acceptance_rate, est.spd_passes);

    // Cross-check the ranking against exact Brandes.
    let exact = exact_betweenness_par(&g, 0);
    let mut exact_ranked: Vec<(u32, f64)> =
        probes.iter().map(|&p| (p, exact[p as usize])).collect();
    exact_ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    println!("\nexact ranking:");
    for (p, bc) in &exact_ranked {
        println!("  relay {p:5}: BC = {bc:.6}");
    }
    let agree = ranked.iter().map(|(p, _)| *p).eq(exact_ranked.iter().map(|(p, _)| *p));
    println!("\nranking agreement with exact: {}", if agree { "FULL" } else { "partial" });
}
