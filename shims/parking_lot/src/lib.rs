//! Offline stand-in for the parts of the `parking_lot` crate used by the
//! `mhbc` workspace (see `shims/README.md`): non-poisoning [`Mutex`] and
//! [`RwLock`] with guard-returning `lock`/`read`/`write` (no `Result`),
//! layered over `std::sync`.
//!
//! ```
//! use parking_lot::{Mutex, RwLock};
//!
//! let m = Mutex::new(1);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 2);
//!
//! let rw = RwLock::new(vec![1, 2]);
//! rw.write().push(3);
//! assert_eq!(rw.read().len(), 3);
//! ```

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
/// Poisoning is ignored: a panic while holding the lock does not prevent
/// later acquisitions (matching `parking_lot` semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read`/`write` return guards directly,
/// ignoring poisoning (matching `parking_lot` semantics).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(Vec::<u32>::new());
        m.lock().push(7);
        assert_eq!(m.into_inner(), vec![7]);
    }

    #[test]
    fn rwlock_concurrent_reads() {
        let rw = RwLock::new(5u32);
        let a = rw.read();
        let b = rw.read();
        assert_eq!(*a + *b, 10);
    }
}
