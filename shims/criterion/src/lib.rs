//! Offline stand-in for the parts of the `criterion` crate used by the
//! `mhbc` workspace (see `shims/README.md`).
//!
//! A plain wall-clock micro-benchmark harness: warm-up, then timed batches
//! until a target measurement window is filled, reporting mean ns/iter to
//! stdout. Statistical analysis, plotting, and baselines are out of scope.
//!
//! Measurements only run when the binary receives a `--bench` argument
//! (which `cargo bench` passes). Under `cargo test` (or any other
//! invocation) the registered benchmarks are skipped so test runs stay
//! fast; the targets still compile, which is what the test gate needs.
//!
//! ```
//! use criterion::{criterion_group, criterion_main, Criterion};
//!
//! fn bench_add(c: &mut Criterion) {
//!     c.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 2)));
//! }
//!
//! criterion_group!(benches, bench_add);
//! // criterion_main!(benches); — expands to fn main()
//! # fn main() { benches(&mut Criterion::default()); }
//! ```

use std::time::{Duration, Instant};

/// Target length of the timed measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Length of the warm-up phase per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Work-rate annotation for a benchmark group (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying both a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured routine.
pub struct Bencher {
    measure: bool,
    last_ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `routine` (warm-up, then timed batches) in bench mode; in
    /// test mode this is a no-op so `cargo test` stays fast.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            return;
        }
        // Warm-up, and discover a batch size that lasts ~1ms.
        let warm_start = Instant::now();
        let mut iters_in_warmup: u64 = 0;
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(routine());
            iters_in_warmup += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_in_warmup as f64;
        let batch = ((0.001 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < MEASURE_WINDOW {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            iters += batch;
        }
        self.last_ns_per_iter = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

/// The harness entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    /// Bench mode is enabled by a `--bench` CLI argument (as passed by
    /// `cargo bench`); otherwise registered benchmarks are skipped.
    fn default() -> Self {
        Criterion { bench_mode: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    /// Registers (and in bench mode, measures) a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.bench_mode, id, None, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let bench_mode = self.bench_mode;
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None, bench_mode }
    }
}

/// A named collection of benchmarks sharing throughput/config annotations.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    bench_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.bench_mode, id, Some(&self.name), self.throughput, f);
        self
    }

    /// Registers a parameterised benchmark taking a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.bench_mode, &id.id, Some(&self.name), self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    bench_mode: bool,
    id: &str,
    group: Option<&str>,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if !bench_mode {
        return;
    }
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut bencher = Bencher { measure: true, last_ns_per_iter: None };
    f(&mut bencher);
    match bencher.last_ns_per_iter {
        Some(ns) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.1} MB/s)", n as f64 / ns * 1e3)
                }
                None => String::new(),
            };
            println!("{full:<50} {ns:>14.1} ns/iter{rate}");
        }
        None => println!("{full:<50} (no measurement: routine never called iter)"),
    }
}

/// Declares a target function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_skips_measurement() {
        // No `--bench` in the test harness args, so routines must not run.
        let mut c = Criterion::default();
        assert!(!c.bench_mode);
        let mut ran = false;
        c.bench_function("skipped", |b| b.iter(|| ()));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, _| {
            ran = true;
            b.iter(|| ());
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn bencher_measures_when_enabled() {
        let mut b = Bencher { measure: true, last_ns_per_iter: None };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(5)));
        assert!(b.last_ns_per_iter.unwrap() > 0.0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("ba-5k").id, "ba-5k");
    }
}
