//! End-to-end behaviour of the `proptest!` macro: case counts, rejection
//! via `prop_assume!`, failure via `prop_assert!`, and input reporting.

use proptest::prelude::*;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

thread_local! {
    static EXECUTIONS: Cell<u32> = const { Cell::new(0) };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn runs_exactly_the_configured_number_of_cases(x in 0u32..100) {
        EXECUTIONS.with(|c| c.set(c.get() + 1));
        prop_assert!(x < 100);
        if EXECUTIONS.with(|c| c.get()) > 64 {
            prop_assert!(false, "ran more cases than configured");
        }
    }

    #[test]
    fn assumed_out_cases_do_not_count_as_failures(x in 0u32..10) {
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
    }

    #[test]
    fn dependent_strategies_respect_their_bounds(
        (n, i) in (1usize..50).prop_flat_map(|n| (Just(n), 0usize..n)),
        xs in proptest::collection::vec(any::<u64>(), 3..6),
    ) {
        prop_assert!(i < n);
        prop_assert!((3..6).contains(&xs.len()));
    }
}

// The `proptest!` fns above are plain `#[test]`s; the ones below exercise
// the failure paths, which must panic, so they are driven manually.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    fn always_fails(x in 10u32..20) {
        prop_assert!(x < 5, "x was {}", x);
    }

    fn rejects_everything(x in 0u32..10) {
        prop_assume!(x > 100);
        let _ = x;
    }
}

#[test]
fn failing_case_panics_with_inputs() {
    let err = catch_unwind(AssertUnwindSafe(always_fails)).unwrap_err();
    let msg = err.downcast_ref::<String>().expect("panic carries a String");
    assert!(msg.contains("x was 1"), "unexpected message: {msg}");
    assert!(msg.contains("inputs:"), "inputs missing from: {msg}");
}

#[test]
fn exhausted_assumptions_panic_as_too_many_rejects() {
    let err = catch_unwind(AssertUnwindSafe(rejects_everything)).unwrap_err();
    let msg = err.downcast_ref::<String>().expect("panic carries a String");
    assert!(msg.contains("too many rejected cases"), "unexpected message: {msg}");
}

#[test]
fn case_generation_is_deterministic_per_test() {
    let sample = |label: &str| {
        let rng = &mut proptest::test_runner::rng_for_test(label);
        (0u64..1_000_000).sample(rng).unwrap()
    };
    assert_eq!(sample("a"), sample("a"));
    assert_ne!(sample("a"), sample("b"));
}
