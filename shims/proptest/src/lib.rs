//! Offline stand-in for the parts of the `proptest` crate used by the
//! `mhbc` workspace (see `shims/README.md`).
//!
//! Implements the [`proptest!`] test macro, the assertion macros
//! (`prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`),
//! and a [`strategy::Strategy`] trait with the combinators the workspace's
//! property tests use: numeric ranges, tuples, [`strategy::Just`],
//! [`strategy::any`], [`collection::vec`], `prop_map`, `prop_flat_map`,
//! and `prop_filter`.
//!
//! Differences from upstream: failing cases are **not shrunk** — the runner
//! panics with the sampled inputs of the first failing case — and case
//! generation is deterministic, seeded from the test's name, so a failure
//! reproduces on every run.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // In a real test module this would carry `#[test]`, exactly as
//!     // with upstream proptest.
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # addition_commutes();
//! ```

pub mod strategy;

pub mod collection {
    //! Strategies for collections.
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

pub mod test_runner {
    //! Case execution: configuration, rejection bookkeeping, failure
    //! reporting.

    use rand::{rngs::SmallRng, SeedableRng};

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was discarded (`prop_assume!` failed or a strategy
        /// filter kept rejecting); it does not count toward the case total.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration. Only `cases` is honoured by this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
        /// Maximum number of rejected cases tolerated across the run.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration demanding `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Self::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's identifying
    /// string so every run (and every CI machine) generates the same cases.
    pub fn rng_for_test(test_path: &str) -> SmallRng {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }

    /// Drives `case` until `config.cases` successes, panicking on the first
    /// [`TestCaseError::Fail`] and after `max_global_rejects` rejections.
    /// The closure receives the shared RNG and must return the case result.
    pub fn run_cases<F>(config: &ProptestConfig, test_path: &str, mut case: F)
    where
        F: FnMut(&mut SmallRng) -> TestCaseResult,
    {
        let mut rng = rng_for_test(test_path);
        let mut successes = 0u32;
        let mut rejects = 0u32;
        while successes < config.cases {
            match case(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest [{test_path}]: too many rejected cases \
                             ({rejects}) before reaching {} successes",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest [{test_path}] failed after {successes} passing cases\n{msg}");
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds. With extra arguments, they
/// format the failure message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right` ({})\n  both: `{:?}`",
            ::std::format!($($fmt)+),
            left
        );
    }};
}

/// Discards the current case (without failing the test) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// upstream proptest) running [`test_runner::run_cases`] over freshly
/// sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run_cases(
                    &config,
                    concat!(file!(), "::", stringify!($name)),
                    |rng| {
                        let mut inputs = ::std::string::String::new();
                        $(
                            let value = match $crate::strategy::Strategy::sample(&($strategy), rng) {
                                ::std::option::Option::Some(v) => v,
                                ::std::option::Option::None => {
                                    return ::std::result::Result::Err(
                                        $crate::test_runner::TestCaseError::Reject(
                                            "strategy rejected input".to_string(),
                                        ),
                                    )
                                }
                            };
                            {
                                use ::std::fmt::Write as _;
                                let _ = ::std::write!(
                                    inputs,
                                    "  {} = {:?}\n",
                                    stringify!($pat),
                                    &value
                                );
                            }
                            let $pat = value;
                        )+
                        // Wrap the user body so `prop_assert!`'s early
                        // `return Err(…)` can carry the sampled inputs.
                        let outcome: $crate::test_runner::TestCaseResult = (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        match outcome {
                            ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                                    ::std::format!("{msg}\ninputs:\n{inputs}"),
                                ))
                            }
                            other => other,
                        }
                    },
                );
            }
        )*
    };
}
