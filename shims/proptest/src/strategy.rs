//! Value-generation strategies: the [`Strategy`] trait, primitive sources
//! (ranges, [`any`], [`Just`]), combinators (`prop_map`, `prop_flat_map`,
//! `prop_filter`), tuples, and [`vec()`](vec()).

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SampleRange, SampleUniform};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many times a filtering strategy retries locally before giving up and
/// reporting a rejection to the runner.
const LOCAL_REJECT_RETRIES: u32 = 256;

/// A recipe for generating values of `Self::Value`.
///
/// `sample` returns `None` when the strategy could not produce a value (a
/// `prop_filter` predicate kept failing); the runner counts that as a
/// rejected case. There is no shrinking in this shim.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on (repeated) filter rejection.
    fn sample(&self, rng: &mut SmallRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it
    /// (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; `reason` labels the rejection.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, _reason: reason.into(), pred }
    }
}

/// Strategies are usable behind references (the runner samples via `&S`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut SmallRng) -> Option<T::Value> {
        let outer = self.inner.sample(rng)?;
        (self.f)(outer).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> Option<S::Value> {
        for _ in 0..LOCAL_REJECT_RETRIES {
            if let Some(v) = self.inner.sample(rng) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Types with a canonical whole-domain strategy (upstream's `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Draws from the full domain of the type.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.random::<f64>()
    }
}

/// Whole-domain strategy for `T`, e.g. `any::<u64>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform,
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> Option<T> {
        Some(rng.random_range(self.clone()))
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform,
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> Option<T> {
        Some(rng.random_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Length bounds for [`vec()`](vec()), convertible from ranges and plain sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Strategy for `Vec<E::Value>` with a length drawn from `size`.
pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`](vec()).
#[derive(Debug, Clone)]
pub struct VecStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;
    fn sample(&self, rng: &mut SmallRng) -> Option<Vec<E::Value>> {
        let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.sample(rng)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn ranges_tuples_and_vecs_stay_in_bounds() {
        let rng = &mut rng_for_test("strategy::smoke");
        let strat = (1usize..=5, vec(0u32..10, 2..4));
        for _ in 0..200 {
            let (n, xs) = strat.sample(rng).unwrap();
            assert!((1..=5).contains(&n));
            assert!(xs.len() == 2 || xs.len() == 3);
            assert!(xs.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_makes_dependent_values() {
        let rng = &mut rng_for_test("strategy::flat_map");
        let strat = (2usize..10).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..200 {
            let (n, i) = strat.sample(rng).unwrap();
            assert!(i < n);
        }
    }

    #[test]
    fn filter_rejects_locally_then_globally() {
        let rng = &mut rng_for_test("strategy::filter");
        let ok = (0u32..10).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(ok.sample(rng).unwrap() % 2, 0);
        }
        let never = (0u32..10).prop_filter("impossible", |_| false);
        assert!(never.sample(rng).is_none());
    }

    #[test]
    fn map_transforms() {
        let rng = &mut rng_for_test("strategy::map");
        let strat = (0u32..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(strat.sample(rng).unwrap() % 2, 0);
        }
    }
}
