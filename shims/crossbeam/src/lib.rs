//! Offline stand-in for the parts of the `crossbeam` crate used by the
//! `mhbc` workspace (see `shims/README.md`): scoped threads, implemented on
//! top of `std::thread::scope` (stable since Rust 1.63).
//!
//! ```
//! let totals = crossbeam::thread::scope(|scope| {
//!     let handles: Vec<_> = (0..4u64)
//!         .map(|t| scope.spawn(move |_| t * 10))
//!         .collect();
//!     handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
//! })
//! .unwrap();
//! assert_eq!(totals, 60);
//! ```

pub mod thread {
    //! Scoped threads borrowing from the enclosing stack frame.

    /// A handle to a spawned scoped thread; joining yields the closure's
    /// return value (or the panic payload as `Err`).
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawn surface handed to the closure passed to [`scope`].
    ///
    /// Upstream `crossbeam` passes the scope itself to every spawned
    /// closure so threads can spawn siblings; the `mhbc` workspace never
    /// uses that (every closure is `|_| …`), so the argument is plain `()`
    /// here — nested spawning goes through the scope captured by reference.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to the enclosing [`scope`] call.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.inner.spawn(move || f(())))
        }
    }

    /// Runs `f` with a [`Scope`]; all spawned threads are joined before
    /// this returns. Always `Ok` (a panicking un-joined child propagates
    /// its panic instead, via `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let sum = crate::thread::scope(|scope| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| scope.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
