//! Offline stand-in for the parts of the `rand` crate used by the `mhbc`
//! workspace (see `shims/README.md`).
//!
//! Provides the [`Rng`] core trait, the [`RngExt`] convenience extension
//! (`random`, `random_range`, `random_bool`), the [`SeedableRng`]
//! constructor trait, and [`rngs::SmallRng`] — a xoshiro256++ generator
//! seeded via SplitMix64.
//!
//! ```
//! use rand::{rngs::SmallRng, RngExt, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let x = rng.random_range(0..10u32);
//! assert!(x < 10);
//! let p: f64 = rng.random();
//! assert!((0.0..1.0).contains(&p));
//! ```

use std::ops::{Range, RangeInclusive};

/// A source of randomness: everything derives from [`Rng::next_u64`].
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of
    /// [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full bit pattern space
/// (integers) or the unit interval (floats).
pub trait UniformRandom: Sized {
    /// Draws one value from `rng`.
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRandom for $t {
            fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRandom for bool {
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformRandom for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn uniform_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a notion of uniform sampling from a half-open or inclusive
/// range. Integer sampling uses rejection-free modulo reduction (the bias is
/// at most `width / 2^64`, irrelevant at the widths this workspace draws).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
                let width = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % width) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full u64 span: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
        lo + f64::uniform_random(rng) * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
        // The endpoint has measure zero; reuse the half-open transform.
        lo + f64::uniform_random(rng) * (hi - lo)
    }
}

/// Range-like arguments accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw of a primitive: full bit-space for integers and bools,
    /// `[0, 1)` for floats.
    fn random<T: UniformRandom>(&mut self) -> T {
        T::uniform_random(self)
    }

    /// Uniform draw from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range. Panics on empty ranges.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::uniform_random(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ with
    /// SplitMix64 seeding. Deterministic per seed; not reproducible against
    /// the upstream `rand` crate's `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The generator's full internal state (four xoshiro256++ words).
        ///
        /// Together with [`SmallRng::from_state`] this makes the stream
        /// checkpointable: a generator rebuilt from a saved state continues
        /// the exact draw sequence. Shim-only API (the upstream crate keeps
        /// its state private); the `mhbc` checkpoint layer is the only
        /// consumer, via `mhbc_mcmc::RngSnapshot`.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`SmallRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(5..17u32);
            assert!((5..17).contains(&x));
            let y = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
            let f = rng.random_range(2.0f64..=4.0);
            assert!((2.0..=4.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            if rng.random_bool(0.25) {
                trues += 1;
            }
        }
        // 4-sigma band around 2500.
        assert!((2000..3000).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn full_u64_inclusive_range_is_reachable() {
        let mut rng = SmallRng::seed_from_u64(5);
        // Must not panic or divide by a zero width.
        let _ = rng.random_range(0u64..=u64::MAX);
    }
}
