//! Library half of the `mhbc` command-line tool: argument parsing and
//! command execution, kept binary-free so the logic is unit-testable.

use mhbc_core::planner::{plan_single, MuSource};
use mhbc_core::{pipeline, JointSpaceConfig, PrefetchConfig, SingleSpaceConfig};
use mhbc_graph::{algo, io, CsrGraph, Vertex};
use std::io::BufRead;

/// Parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Estimate BC of one vertex: `estimate <edge-list> <vertex>`.
    Estimate {
        path: String,
        vertex: Vertex,
        iterations: u64,
        seed: u64,
        exact: bool,
        threads: usize,
        prefetch_depth: u64,
    },
    /// Relative ranking of several vertices: `rank <edge-list> <v1,v2,...>`.
    Rank {
        path: String,
        vertices: Vec<Vertex>,
        iterations: u64,
        seed: u64,
        threads: usize,
        prefetch_depth: u64,
    },
    /// Plan an (epsilon, delta) budget: `plan <edge-list> <vertex> <eps> <delta>`.
    Plan { path: String, vertex: Vertex, epsilon: f64, delta: f64 },
}

/// CLI usage string.
pub const USAGE: &str = "usage:
  mhbc estimate <edge-list> <vertex> [--iters N] [--seed S] [--exact] [--threads T] [--prefetch K]
  mhbc rank     <edge-list> <v1,v2,...> [--iters N] [--seed S] [--threads T] [--prefetch K]
  mhbc plan     <edge-list> <vertex> <epsilon> <delta>

Edge lists are whitespace-separated `u v [w]` lines; `#`/`%` comments allowed.
--threads T   total density-evaluation threads (default 1 = sequential;
              T >= 2 enables the speculative prefetch pipeline — results are
              bit-identical to --threads 1).
--prefetch K  speculation window: how many proposals ahead the prefetch
              workers may evaluate (default 1024).";

/// Parses `args` (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut pos: Vec<&str> = Vec::new();
    let mut iterations = 10_000u64;
    let mut seed = 42u64;
    let mut exact = false;
    let mut threads = 1usize;
    let mut prefetch_depth = PrefetchConfig::DEFAULT_DEPTH;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                i += 1;
                iterations = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "missing/invalid value for --iters".to_string())?;
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "missing/invalid value for --seed".to_string())?;
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "missing/invalid value for --threads".to_string())?;
            }
            "--prefetch" => {
                i += 1;
                prefetch_depth = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k > 0)
                    .ok_or_else(|| "missing/invalid value for --prefetch".to_string())?;
            }
            "--exact" => exact = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => pos.push(other),
        }
        i += 1;
    }
    let parse_vertex = |s: &str| -> Result<Vertex, String> {
        s.parse().map_err(|_| format!("invalid vertex id `{s}`"))
    };
    match pos.as_slice() {
        ["estimate", path, vertex] => Ok(Command::Estimate {
            path: path.to_string(),
            vertex: parse_vertex(vertex)?,
            iterations,
            seed,
            exact,
            threads,
            prefetch_depth,
        }),
        ["rank", path, list] => {
            let vertices = list.split(',').map(parse_vertex).collect::<Result<Vec<_>, _>>()?;
            if vertices.len() < 2 {
                return Err("rank needs at least two comma-separated vertices".into());
            }
            Ok(Command::Rank {
                path: path.to_string(),
                vertices,
                iterations,
                seed,
                threads,
                prefetch_depth,
            })
        }
        ["plan", path, vertex, eps, delta] => Ok(Command::Plan {
            path: path.to_string(),
            vertex: parse_vertex(vertex)?,
            epsilon: eps.parse().map_err(|_| format!("invalid epsilon `{eps}`"))?,
            delta: delta.parse().map_err(|_| format!("invalid delta `{delta}`"))?,
        }),
        _ => Err(USAGE.to_string()),
    }
}

/// Loads a graph and reduces it to its largest connected component
/// (reporting the reduction), returning the graph and the old-id map.
pub fn load_graph<R: BufRead>(reader: R) -> Result<(CsrGraph, Vec<Vertex>), String> {
    let g = io::read_edge_list(reader).map_err(|e| e.to_string())?;
    let n_before = g.num_vertices();
    let (lcc, map) = algo::largest_component(&g);
    if lcc.num_vertices() < n_before {
        eprintln!(
            "note: using the largest connected component ({} of {} vertices)",
            lcc.num_vertices(),
            n_before
        );
    }
    Ok((lcc, map))
}

/// Executes a command against an already-loaded graph; returns printable
/// output lines. `map` translates internal ids back to input ids.
pub fn execute(cmd: &Command, g: &CsrGraph, map: &[Vertex]) -> Result<Vec<String>, String> {
    // Translate an input vertex id to the internal (LCC-relabelled) id.
    let internal = |input: Vertex| -> Result<Vertex, String> {
        map.iter()
            .position(|&old| old == input)
            .map(|i| i as Vertex)
            .ok_or_else(|| format!("vertex {input} is not in the largest component"))
    };
    match cmd {
        Command::Estimate { vertex, iterations, seed, exact, threads, prefetch_depth, .. } => {
            let r = internal(*vertex)?;
            let prefetch = PrefetchConfig::with_threads(*threads).with_depth(*prefetch_depth);
            let est =
                pipeline::run_single(g, r, &SingleSpaceConfig::new(*iterations, *seed), &prefetch)
                    .map_err(|e| e.to_string())?;
            let mut out = vec![
                format!("graph: {g}"),
                format!(
                    "BC({vertex}) ~ {:.6} (Eq 7) | {:.6} (corrected, recommended)",
                    est.bc, est.bc_corrected
                ),
                format!(
                    "iterations {} | acceptance {:.3} | SPD passes {} | threads {}",
                    est.iterations,
                    est.acceptance_rate,
                    est.spd_passes,
                    (*threads).max(1)
                ),
            ];
            if *exact {
                let truth = mhbc_spd::exact_betweenness_of(g, r);
                out.push(format!("exact (Brandes): {truth:.6}"));
            }
            Ok(out)
        }
        Command::Rank { vertices, iterations, seed, threads, prefetch_depth, .. } => {
            let probes = vertices.iter().map(|&v| internal(v)).collect::<Result<Vec<_>, _>>()?;
            let prefetch = PrefetchConfig::with_threads(*threads).with_depth(*prefetch_depth);
            let est = pipeline::run_joint(
                g,
                &probes,
                &JointSpaceConfig::new(*iterations, *seed),
                &prefetch,
            )
            .map_err(|e| e.to_string())?;
            let mut ranked: Vec<(Vertex, f64)> =
                vertices.iter().enumerate().map(|(i, &v)| (v, est.ratio(i, 0))).collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let mut out = vec![format!(
                "ranking by betweenness ratio vs vertex {} ({} iterations):",
                vertices[0], est.iterations
            )];
            for (v, ratio) in ranked {
                out.push(format!("  {v:>8}  ratio {ratio:.4}"));
            }
            Ok(out)
        }
        Command::Plan { vertex, epsilon, delta, .. } => {
            let r = internal(*vertex)?;
            let plan = plan_single(g, r, *epsilon, *delta, MuSource::Exact { threads: 0 })
                .map_err(|e| e.to_string())?;
            Ok(vec![
                format!("mu({vertex}) = {:.3}", plan.mu),
                format!(
                    "iterations for |err| <= {} with prob >= {}: {}",
                    plan.epsilon,
                    1.0 - plan.delta,
                    plan.iterations
                ),
            ])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_estimate_with_flags() {
        let cmd = parse(&strs(&["estimate", "g.txt", "5", "--iters", "99", "--exact"])).unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                path: "g.txt".into(),
                vertex: 5,
                iterations: 99,
                seed: 42,
                exact: true,
                threads: 1,
                prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            }
        );
    }

    #[test]
    fn parses_threads_and_prefetch_flags() {
        let cmd = parse(&strs(&["estimate", "g.txt", "5", "--threads", "4", "--prefetch", "64"]))
            .unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                path: "g.txt".into(),
                vertex: 5,
                iterations: 10_000,
                seed: 42,
                exact: false,
                threads: 4,
                prefetch_depth: 64,
            }
        );
        assert!(parse(&strs(&["estimate", "g.txt", "5", "--threads"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "5", "--prefetch", "0"])).is_err());
    }

    #[test]
    fn parses_rank_and_plan() {
        let cmd = parse(&strs(&["rank", "g.txt", "1,2,3", "--seed", "7"])).unwrap();
        assert_eq!(
            cmd,
            Command::Rank {
                path: "g.txt".into(),
                vertices: vec![1, 2, 3],
                iterations: 10_000,
                seed: 7,
                threads: 1,
                prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            }
        );
        let cmd = parse(&strs(&["plan", "g.txt", "4", "0.05", "0.1"])).unwrap();
        assert_eq!(
            cmd,
            Command::Plan { path: "g.txt".into(), vertex: 4, epsilon: 0.05, delta: 0.1 }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&strs(&["estimate", "g.txt"])).is_err());
        assert!(parse(&strs(&["rank", "g.txt", "1"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "x"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--bogus"])).is_err());
        assert!(parse(&strs(&["plan", "g.txt", "1", "abc", "0.1"])).is_err());
    }

    #[test]
    fn load_reduces_to_largest_component() {
        let text = "0 1\n1 2\n2 0\n3 4\n";
        let (g, map) = load_graph(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn estimate_command_end_to_end() {
        // Barbell written as an edge list; estimate the bridge vertex.
        let mut text = String::new();
        let g = mhbc_graph::generators::barbell(5, 1);
        for (u, v, _) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let (lcc, map) = load_graph(Cursor::new(text)).unwrap();
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 5,
            iterations: 5_000,
            seed: 1,
            exact: true,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("BC(5)")));
        assert!(out.iter().any(|l| l.contains("exact")));
    }

    #[test]
    fn threaded_estimate_matches_sequential_output() {
        let g = mhbc_graph::generators::barbell(5, 1);
        let mut text = String::new();
        for (u, v, _) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let (lcc, map) = load_graph(Cursor::new(text)).unwrap();
        let mk = |threads| Command::Estimate {
            path: String::new(),
            vertex: 5,
            iterations: 2_000,
            seed: 9,
            exact: false,
            threads,
            prefetch_depth: 32,
        };
        let seq = execute(&mk(1), &lcc, &map).unwrap();
        let par = execute(&mk(3), &lcc, &map).unwrap();
        // Identical estimate line; the stats line differs only in the
        // reported thread count.
        assert_eq!(seq[1], par[1]);
        assert!(par[2].contains("threads 3"));
    }

    #[test]
    fn rank_command_orders_by_ratio() {
        let g = mhbc_graph::generators::barbell(6, 3);
        let mut text = String::new();
        for (u, v, _) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let (lcc, map) = load_graph(Cursor::new(text)).unwrap();
        let cmd = Command::Rank {
            path: String::new(),
            vertices: vec![6, 7],
            iterations: 20_000,
            seed: 3,
            threads: 2,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        // The middle path vertex 7 carries more pairs than 6.
        let pos7 = out.iter().position(|l| l.trim_start().starts_with('7')).unwrap();
        let pos6 = out.iter().position(|l| l.trim_start().starts_with('6')).unwrap();
        assert!(pos7 < pos6, "vertex 7 should rank above 6: {out:?}");
    }

    #[test]
    fn missing_vertex_reported() {
        let (g, map) = load_graph(Cursor::new("0 1\n1 2\n")).unwrap();
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 99,
            iterations: 10,
            seed: 0,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
        };
        assert!(execute(&cmd, &g, &map).unwrap_err().contains("99"));
    }
}
